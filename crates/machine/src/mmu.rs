//! The memory-management unit: per-context page tables with protection.
//!
//! Protection domains in Paramecium are MMU contexts. "Objects can be
//! placed in separate MMU contexts. This is useful for isolating faults …"
//! (paper, section 3). The nucleus's memory service builds on the
//! operations here: map/unmap/protect pages, translate accesses, take
//! faults.

use std::collections::BTreeMap;

use crate::{phys::FrameId, tlb::Tlb, MachineError, MachineResult};

/// Page size in bytes (SPARC Reference MMU used 4 KiB pages).
pub const PAGE_SIZE: usize = 4096;

/// An MMU context number — the unit of protection in Paramecium.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContextId(pub u16);

/// The kernel's own context, created at boot.
pub const KERNEL_CONTEXT: ContextId = ContextId(0);

/// Page permissions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Perms(u8);

impl Perms {
    /// No access (a guard page / fault-on-access page).
    pub const NONE: Perms = Perms(0);
    /// Read only.
    pub const R: Perms = Perms(1);
    /// Write only (unusual, but expressible).
    pub const W: Perms = Perms(2);
    /// Read + write.
    pub const RW: Perms = Perms(3);
    /// Execute only.
    pub const X: Perms = Perms(4);
    /// Read + execute (text pages).
    pub const RX: Perms = Perms(5);
    /// Read + write + execute.
    pub const RWX: Perms = Perms(7);

    /// True if `access` is allowed under these permissions.
    pub fn allows(self, access: Access) -> bool {
        let bit = match access {
            Access::Read => 1,
            Access::Write => 2,
            Access::Exec => 4,
        };
        self.0 & bit != 0
    }

    /// Union of two permission sets.
    pub fn union(self, other: Perms) -> Perms {
        Perms(self.0 | other.0)
    }
}

/// The kind of memory access being performed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Access {
    /// Data read.
    Read,
    /// Data write.
    Write,
    /// Instruction fetch.
    Exec,
}

/// Why a translation failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// No mapping for the page.
    NotMapped,
    /// Mapped, but the permissions forbid this access.
    Protection,
}

/// A page fault: the information delivered to the event service.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Fault {
    /// Context in which the fault occurred.
    pub ctx: ContextId,
    /// Faulting virtual address.
    pub vaddr: u64,
    /// The attempted access.
    pub access: Access,
    /// Why it faulted.
    pub kind: FaultKind,
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:?} fault at {:#x} in context {} ({:?})",
            self.access, self.vaddr, self.ctx.0, self.kind
        )
    }
}

/// One page-table entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PageEntry {
    /// Backing physical frame.
    pub frame: FrameId,
    /// Access permissions.
    pub perms: Perms,
}

/// Result of a translation, including whether the TLB helped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Translation {
    /// The physical address.
    pub paddr: u64,
    /// True if this lookup hit the TLB.
    pub tlb_hit: bool,
}

/// The MMU: a set of numbered contexts, each with its own page table.
pub struct Mmu {
    contexts: BTreeMap<u16, BTreeMap<u64, PageEntry>>,
    next_ctx: u16,
    current: ContextId,
    /// The translation cache (public for stats/ablation access).
    pub tlb: Tlb,
    /// Context switches performed.
    switches: u64,
}

impl Mmu {
    /// Creates an MMU with only the kernel context.
    pub fn new(tlb_entries: usize) -> Self {
        let mut contexts = BTreeMap::new();
        contexts.insert(KERNEL_CONTEXT.0, BTreeMap::new());
        Mmu {
            contexts,
            next_ctx: 1,
            current: KERNEL_CONTEXT,
            tlb: Tlb::new(tlb_entries),
            switches: 0,
        }
    }

    /// Allocates a fresh context.
    pub fn create_context(&mut self) -> ContextId {
        let id = self.next_ctx;
        self.next_ctx = self.next_ctx.checked_add(1).expect("context ids exhausted");
        self.contexts.insert(id, BTreeMap::new());
        ContextId(id)
    }

    /// Destroys a context, returning the frames that were mapped in it
    /// (the caller decides which to free — pages may be shared).
    pub fn destroy_context(&mut self, ctx: ContextId) -> MachineResult<Vec<FrameId>> {
        assert_ne!(ctx, KERNEL_CONTEXT, "cannot destroy the kernel context");
        let table = self
            .contexts
            .remove(&ctx.0)
            .ok_or(MachineError::NoSuchContext(ctx.0))?;
        self.tlb.flush_context(ctx);
        Ok(table.values().map(|e| e.frame).collect())
    }

    /// True if the context exists.
    pub fn has_context(&self, ctx: ContextId) -> bool {
        self.contexts.contains_key(&ctx.0)
    }

    /// The context the processor is currently running in.
    pub fn current_context(&self) -> ContextId {
        self.current
    }

    /// Switches to another context. Returns true if it actually changed
    /// (the caller charges the cost only then).
    pub fn switch_context(&mut self, ctx: ContextId) -> MachineResult<bool> {
        if !self.has_context(ctx) {
            return Err(MachineError::NoSuchContext(ctx.0));
        }
        if self.current == ctx {
            return Ok(false);
        }
        self.current = ctx;
        self.switches += 1;
        Ok(true)
    }

    /// Total context switches performed.
    pub fn switch_count(&self) -> u64 {
        self.switches
    }

    /// Maps `vaddr`'s page to `frame` with `perms` in `ctx`.
    ///
    /// Remapping an already-mapped page is allowed (the common idiom for
    /// changing the backing frame); the TLB entry is invalidated.
    pub fn map(
        &mut self,
        ctx: ContextId,
        vaddr: u64,
        frame: FrameId,
        perms: Perms,
    ) -> MachineResult<()> {
        let table = self
            .contexts
            .get_mut(&ctx.0)
            .ok_or(MachineError::NoSuchContext(ctx.0))?;
        let vpn = vaddr / PAGE_SIZE as u64;
        table.insert(vpn, PageEntry { frame, perms });
        self.tlb.invalidate(ctx, vpn);
        Ok(())
    }

    /// Unmaps the page containing `vaddr`, returning its entry if mapped.
    pub fn unmap(&mut self, ctx: ContextId, vaddr: u64) -> MachineResult<Option<PageEntry>> {
        let table = self
            .contexts
            .get_mut(&ctx.0)
            .ok_or(MachineError::NoSuchContext(ctx.0))?;
        let vpn = vaddr / PAGE_SIZE as u64;
        let old = table.remove(&vpn);
        self.tlb.invalidate(ctx, vpn);
        Ok(old)
    }

    /// Changes the permissions of a mapped page.
    pub fn protect(&mut self, ctx: ContextId, vaddr: u64, perms: Perms) -> MachineResult<()> {
        let vpn = vaddr / PAGE_SIZE as u64;
        let table = self
            .contexts
            .get_mut(&ctx.0)
            .ok_or(MachineError::NoSuchContext(ctx.0))?;
        let entry = table.get_mut(&vpn).ok_or(MachineError::Fault(Fault {
            ctx,
            vaddr,
            access: Access::Read,
            kind: FaultKind::NotMapped,
        }))?;
        entry.perms = perms;
        self.tlb.invalidate(ctx, vpn);
        Ok(())
    }

    /// Looks up the page-table entry for `vaddr` without touching the TLB.
    pub fn entry(&self, ctx: ContextId, vaddr: u64) -> Option<PageEntry> {
        self.contexts
            .get(&ctx.0)?
            .get(&(vaddr / PAGE_SIZE as u64))
            .copied()
    }

    /// Translates a virtual access in `ctx`, going through the TLB.
    ///
    /// On success returns the physical address and whether the TLB hit; on
    /// failure returns the [`Fault`] to deliver.
    pub fn translate(
        &mut self,
        ctx: ContextId,
        vaddr: u64,
        access: Access,
    ) -> Result<Translation, Fault> {
        let vpn = vaddr / PAGE_SIZE as u64;
        let offset = vaddr % PAGE_SIZE as u64;
        let fault = |kind| Fault {
            ctx,
            vaddr,
            access,
            kind,
        };

        if let Some((frame, perms)) = self.tlb.lookup(ctx, vpn) {
            if !perms.allows(access) {
                return Err(fault(FaultKind::Protection));
            }
            return Ok(Translation {
                paddr: u64::from(frame.0) * PAGE_SIZE as u64 + offset,
                tlb_hit: true,
            });
        }
        // Page-table walk.
        let entry = self
            .contexts
            .get(&ctx.0)
            .and_then(|t| t.get(&vpn))
            .copied()
            .ok_or(fault(FaultKind::NotMapped))?;
        if !entry.perms.allows(access) {
            return Err(fault(FaultKind::Protection));
        }
        self.tlb.insert(ctx, vpn, entry.frame, entry.perms);
        Ok(Translation {
            paddr: u64::from(entry.frame.0) * PAGE_SIZE as u64 + offset,
            tlb_hit: false,
        })
    }

    /// Number of pages mapped in `ctx`.
    pub fn mapped_pages(&self, ctx: ContextId) -> usize {
        self.contexts.get(&ctx.0).map_or(0, BTreeMap::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mmu() -> Mmu {
        Mmu::new(16)
    }

    #[test]
    fn kernel_context_exists_at_boot() {
        let m = mmu();
        assert!(m.has_context(KERNEL_CONTEXT));
        assert_eq!(m.current_context(), KERNEL_CONTEXT);
    }

    #[test]
    fn create_contexts_are_distinct() {
        let mut m = mmu();
        let a = m.create_context();
        let b = m.create_context();
        assert_ne!(a, b);
        assert!(m.has_context(a) && m.has_context(b));
    }

    #[test]
    fn translate_mapped_page() {
        let mut m = mmu();
        let ctx = m.create_context();
        m.map(ctx, 0x4000, FrameId(2), Perms::RW).unwrap();
        let t = m.translate(ctx, 0x4123, Access::Read).unwrap();
        assert_eq!(t.paddr, 2 * PAGE_SIZE as u64 + 0x123);
        assert!(!t.tlb_hit);
        // Second access hits the TLB.
        let t = m.translate(ctx, 0x4FFF, Access::Write).unwrap();
        assert!(t.tlb_hit);
    }

    #[test]
    fn unmapped_access_faults() {
        let mut m = mmu();
        let ctx = m.create_context();
        let f = m.translate(ctx, 0x9000, Access::Read).unwrap_err();
        assert_eq!(f.kind, FaultKind::NotMapped);
        assert_eq!(f.vaddr, 0x9000);
        assert_eq!(f.ctx, ctx);
    }

    #[test]
    fn protection_fault_on_bad_access() {
        let mut m = mmu();
        let ctx = m.create_context();
        m.map(ctx, 0x4000, FrameId(0), Perms::R).unwrap();
        assert!(m.translate(ctx, 0x4000, Access::Read).is_ok());
        let f = m.translate(ctx, 0x4000, Access::Write).unwrap_err();
        assert_eq!(f.kind, FaultKind::Protection);
        let f = m.translate(ctx, 0x4000, Access::Exec).unwrap_err();
        assert_eq!(f.kind, FaultKind::Protection);
    }

    #[test]
    fn protection_fault_even_on_tlb_hit() {
        let mut m = mmu();
        let ctx = m.create_context();
        m.map(ctx, 0x4000, FrameId(0), Perms::R).unwrap();
        // Prime the TLB.
        m.translate(ctx, 0x4000, Access::Read).unwrap();
        let f = m.translate(ctx, 0x4000, Access::Write).unwrap_err();
        assert_eq!(f.kind, FaultKind::Protection);
    }

    #[test]
    fn contexts_are_isolated() {
        let mut m = mmu();
        let a = m.create_context();
        let b = m.create_context();
        m.map(a, 0x4000, FrameId(1), Perms::RW).unwrap();
        assert!(m.translate(a, 0x4000, Access::Read).is_ok());
        assert!(m.translate(b, 0x4000, Access::Read).is_err());
    }

    #[test]
    fn protect_invalidates_tlb() {
        let mut m = mmu();
        let ctx = m.create_context();
        m.map(ctx, 0x4000, FrameId(1), Perms::RW).unwrap();
        m.translate(ctx, 0x4000, Access::Write).unwrap(); // Prime TLB.
        m.protect(ctx, 0x4000, Perms::R).unwrap();
        assert!(m.translate(ctx, 0x4000, Access::Write).is_err());
    }

    #[test]
    fn unmap_invalidates_tlb() {
        let mut m = mmu();
        let ctx = m.create_context();
        m.map(ctx, 0x4000, FrameId(1), Perms::RW).unwrap();
        m.translate(ctx, 0x4000, Access::Read).unwrap();
        let old = m.unmap(ctx, 0x4000).unwrap();
        assert_eq!(
            old,
            Some(PageEntry {
                frame: FrameId(1),
                perms: Perms::RW
            })
        );
        assert!(m.translate(ctx, 0x4000, Access::Read).is_err());
        assert_eq!(m.unmap(ctx, 0x4000).unwrap(), None);
    }

    #[test]
    fn destroy_context_returns_frames_and_flushes() {
        let mut m = mmu();
        let ctx = m.create_context();
        m.map(ctx, 0x1000, FrameId(1), Perms::R).unwrap();
        m.map(ctx, 0x2000, FrameId(2), Perms::R).unwrap();
        let mut frames = m.destroy_context(ctx).unwrap();
        frames.sort();
        assert_eq!(frames, vec![FrameId(1), FrameId(2)]);
        assert!(!m.has_context(ctx));
        assert!(m.translate(ctx, 0x1000, Access::Read).is_err());
    }

    #[test]
    fn switch_context_counts_real_switches() {
        let mut m = mmu();
        let a = m.create_context();
        assert!(m.switch_context(a).unwrap());
        assert!(!m.switch_context(a).unwrap());
        assert!(m.switch_context(KERNEL_CONTEXT).unwrap());
        assert_eq!(m.switch_count(), 2);
        assert!(m.switch_context(ContextId(999)).is_err());
    }

    #[test]
    fn shared_frame_mappable_in_two_contexts() {
        let mut m = mmu();
        let a = m.create_context();
        let b = m.create_context();
        m.map(a, 0x4000, FrameId(5), Perms::RW).unwrap();
        m.map(b, 0x8000, FrameId(5), Perms::R).unwrap();
        let ta = m.translate(a, 0x4010, Access::Write).unwrap();
        let tb = m.translate(b, 0x8010, Access::Read).unwrap();
        assert_eq!(ta.paddr, tb.paddr);
    }

    #[test]
    fn perms_allow_logic() {
        assert!(Perms::RW.allows(Access::Read));
        assert!(Perms::RW.allows(Access::Write));
        assert!(!Perms::RW.allows(Access::Exec));
        assert!(Perms::RX.allows(Access::Exec));
        assert!(!Perms::NONE.allows(Access::Read));
        assert_eq!(Perms::R.union(Perms::W), Perms::RW);
    }
}
