//! A simple sector-addressed disk.
//!
//! Synchronous (polled) on purpose: the interesting costs for the
//! shared-cache experiments are the per-sector transfer latencies, which
//! drivers charge through the cost model when they issue operations.

use crate::{cost::Cycles, irq::IrqController, MachineError, MachineResult};

use super::Device;

/// Sector size in bytes.
pub const SECTOR_SIZE: usize = 512;

/// Simulated cost of one sector transfer (seek amortised away; early-90s
/// SCSI moved ~1 sector per ~10⁴ cycles).
pub const SECTOR_TRANSFER_COST: Cycles = 10_000;

/// Simulated cost of each *additional* sector in one batched request. A
/// batch pays the full request setup once ([`SECTOR_TRANSFER_COST`]) and
/// then streams: the controller overlaps seek/rotation with transfer, so
/// follow-on sectors cost only the media rate.
pub const SECTOR_STREAM_COST: Cycles = 2_000;

/// Cost of transferring `sectors` sectors in one batched request:
/// full setup for the first sector, streaming rate for the rest.
pub fn batch_transfer_cost(sectors: usize) -> Cycles {
    match sectors {
        0 => 0,
        n => SECTOR_TRANSFER_COST + (n as Cycles - 1) * SECTOR_STREAM_COST,
    }
}

/// Register offsets.
pub mod regs {
    /// R: total sectors.
    pub const SECTOR_COUNT: u64 = 0x0;
    /// R: completed reads.
    pub const READS: u64 = 0x4;
    /// R: completed writes.
    pub const WRITES: u64 = 0x8;
}

/// The disk device.
pub struct Disk {
    data: Vec<u8>,
    reads: u64,
    writes: u64,
    /// Injected fault window: the next N sector transfers fail with a
    /// *transient* error (the retryable class — a recoverable media or
    /// bus hiccup, not a power loss or a bad address).
    transient_errors: u64,
    /// Injected latency spike: extra cycles per sector transfer...
    latency_extra: Cycles,
    /// ...for this many more transfers.
    latency_ops: u64,
    transient_fired: u64,
}

impl Disk {
    /// Creates a zeroed disk with `sectors` sectors.
    pub fn new(sectors: usize) -> Self {
        Disk {
            data: vec![0; sectors * SECTOR_SIZE],
            reads: 0,
            writes: 0,
            transient_errors: 0,
            latency_extra: 0,
            latency_ops: 0,
            transient_fired: 0,
        }
    }

    /// Arms a transient-fault window: the next `n` sector reads/writes
    /// fail with an error whose message contains `"transient"` (the class
    /// `store::retry` retries). Torn crash writes are unaffected — a
    /// power failure is not a transient condition.
    pub fn inject_transient_errors(&mut self, n: u64) {
        self.transient_errors = n;
    }

    /// Arms a latency spike: the next `ops` sector transfers each take
    /// `extra` additional cycles (charged by the driver issuing them).
    pub fn inject_latency(&mut self, extra: Cycles, ops: u64) {
        self.latency_extra = extra;
        self.latency_ops = ops;
    }

    /// Clears any armed fault windows — what a power cycle does to a
    /// transient condition. [`crate::Machine::reboot`] does not know
    /// about devices, so supervisors call this explicitly.
    pub fn clear_faults(&mut self) {
        self.transient_errors = 0;
        self.latency_extra = 0;
        self.latency_ops = 0;
    }

    /// Driver side: extra cycles the next sector transfer costs under the
    /// armed latency spike (0 once the window is exhausted). Consumes one
    /// op from the window.
    pub fn take_op_latency(&mut self) -> Cycles {
        if self.latency_ops == 0 {
            return 0;
        }
        self.latency_ops -= 1;
        self.latency_extra
    }

    /// Transient errors injected so far (fired, not armed).
    pub fn transient_fired(&self) -> u64 {
        self.transient_fired
    }

    /// Consumes one armed transient fault, if any.
    fn fault_check(&mut self) -> MachineResult<()> {
        if self.transient_errors > 0 {
            self.transient_errors -= 1;
            self.transient_fired += 1;
            return Err(MachineError::Device(
                "disk: transient I/O error (injected)".into(),
            ));
        }
        Ok(())
    }

    /// Number of sectors.
    pub fn sectors(&self) -> usize {
        self.data.len() / SECTOR_SIZE
    }

    /// Reads one sector (driver side; the driver charges transfer cost).
    pub fn read_sector(&mut self, idx: u64) -> MachineResult<[u8; SECTOR_SIZE]> {
        self.fault_check()?;
        let start = (idx as usize)
            .checked_mul(SECTOR_SIZE)
            .filter(|s| s + SECTOR_SIZE <= self.data.len())
            .ok_or_else(|| MachineError::Device(format!("disk: sector {idx} out of range")))?;
        self.reads += 1;
        let mut out = [0u8; SECTOR_SIZE];
        out.copy_from_slice(&self.data[start..start + SECTOR_SIZE]);
        Ok(out)
    }

    /// Writes one sector.
    pub fn write_sector(&mut self, idx: u64, buf: &[u8; SECTOR_SIZE]) -> MachineResult<()> {
        self.fault_check()?;
        let start = (idx as usize)
            .checked_mul(SECTOR_SIZE)
            .filter(|s| s + SECTOR_SIZE <= self.data.len())
            .ok_or_else(|| MachineError::Device(format!("disk: sector {idx} out of range")))?;
        self.writes += 1;
        self.data[start..start + SECTOR_SIZE].copy_from_slice(buf);
        Ok(())
    }

    /// Writes only the first `prefix` bytes of a sector, leaving the rest
    /// as it was — the *torn write* a power failure leaves behind when it
    /// interrupts a sector transfer mid-stream. Only crash injection uses
    /// this; a torn sector is exactly what journal checksums exist to
    /// detect and reject at recovery.
    pub fn write_sector_prefix(
        &mut self,
        idx: u64,
        buf: &[u8; SECTOR_SIZE],
        prefix: usize,
    ) -> MachineResult<()> {
        let prefix = prefix.min(SECTOR_SIZE);
        let start = (idx as usize)
            .checked_mul(SECTOR_SIZE)
            .filter(|s| s + SECTOR_SIZE <= self.data.len())
            .ok_or_else(|| MachineError::Device(format!("disk: sector {idx} out of range")))?;
        self.data[start..start + prefix].copy_from_slice(&buf[..prefix]);
        Ok(())
    }

    /// Reads a batch of sectors in one request (driver side; the driver
    /// charges the amortised [`batch_transfer_cost`]). The whole batch is
    /// validated before any sector is read, so a bad index fails the
    /// request without partial effects.
    pub fn read_sectors(&mut self, idxs: &[u64]) -> MachineResult<Vec<[u8; SECTOR_SIZE]>> {
        let sectors = self.sectors() as u64;
        if let Some(bad) = idxs.iter().find(|&&i| i >= sectors) {
            return Err(MachineError::Device(format!(
                "disk: sector {bad} out of range"
            )));
        }
        idxs.iter().map(|&i| self.read_sector(i)).collect()
    }

    /// Writes a batch of `(sector, data)` pairs in one request. Validated
    /// up front like [`Disk::read_sectors`]: a bad index writes nothing.
    pub fn write_sectors(&mut self, batch: &[(u64, [u8; SECTOR_SIZE])]) -> MachineResult<()> {
        let sectors = self.sectors() as u64;
        if let Some((bad, _)) = batch.iter().find(|&&(i, _)| i >= sectors) {
            return Err(MachineError::Device(format!(
                "disk: sector {bad} out of range"
            )));
        }
        for (i, buf) in batch {
            self.write_sector(*i, buf)?;
        }
        Ok(())
    }

    /// Completed read count.
    pub fn read_count(&self) -> u64 {
        self.reads
    }

    /// Completed write count.
    pub fn write_count(&self) -> u64 {
        self.writes
    }
}

impl Device for Disk {
    fn name(&self) -> &str {
        "disk"
    }

    fn read_reg(&mut self, offset: u64) -> MachineResult<u32> {
        match offset {
            regs::SECTOR_COUNT => Ok(self.sectors() as u32),
            regs::READS => Ok(self.reads as u32),
            regs::WRITES => Ok(self.writes as u32),
            _ => Err(MachineError::Device(format!(
                "disk: bad register {offset:#x}"
            ))),
        }
    }

    fn write_reg(&mut self, offset: u64, _value: u32) -> MachineResult<()> {
        Err(MachineError::Device(format!(
            "disk: register {offset:#x} is read-only"
        )))
    }

    fn tick(&mut self, _now: Cycles, _irq: &mut IrqController) {}

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sector_roundtrip() {
        let mut d = Disk::new(8);
        let mut buf = [0u8; SECTOR_SIZE];
        buf[0] = 0xAA;
        buf[511] = 0x55;
        d.write_sector(3, &buf).unwrap();
        assert_eq!(d.read_sector(3).unwrap(), buf);
        assert_eq!(d.read_sector(2).unwrap(), [0u8; SECTOR_SIZE]);
        assert_eq!((d.read_count(), d.write_count()), (2, 1));
    }

    #[test]
    fn out_of_range_rejected() {
        let mut d = Disk::new(4);
        assert!(d.read_sector(4).is_err());
        assert!(d.write_sector(u64::MAX, &[0u8; SECTOR_SIZE]).is_err());
    }

    #[test]
    fn batched_ops_roundtrip_and_validate_up_front() {
        let mut d = Disk::new(8);
        let mk = |b: u8| {
            let mut s = [0u8; SECTOR_SIZE];
            s[0] = b;
            s
        };
        d.write_sectors(&[(1, mk(0x11)), (5, mk(0x55))]).unwrap();
        let out = d.read_sectors(&[5, 1]).unwrap();
        assert_eq!(out[0][0], 0x55);
        assert_eq!(out[1][0], 0x11);
        // A bad index anywhere in the batch fails without partial effects.
        let writes_before = d.write_count();
        assert!(d.write_sectors(&[(0, mk(1)), (8, mk(2))]).is_err());
        assert_eq!(d.write_count(), writes_before);
        assert!(d.read_sectors(&[0, 99]).is_err());
        assert_eq!(d.read_sector(0).unwrap(), [0u8; SECTOR_SIZE]);
    }

    #[test]
    fn torn_write_leaves_a_mixed_sector() {
        let mut d = Disk::new(4);
        d.write_sector(2, &[0xAAu8; SECTOR_SIZE]).unwrap();
        d.write_sector_prefix(2, &[0xBBu8; SECTOR_SIZE], 100)
            .unwrap();
        let s = d.read_sector(2).unwrap();
        assert!(s[..100].iter().all(|&b| b == 0xBB));
        assert!(s[100..].iter().all(|&b| b == 0xAA));
        assert!(d.write_sector_prefix(4, &[0u8; SECTOR_SIZE], 1).is_err());
    }

    #[test]
    fn batch_cost_amortises_setup() {
        assert_eq!(batch_transfer_cost(0), 0);
        assert_eq!(batch_transfer_cost(1), SECTOR_TRANSFER_COST);
        assert!(batch_transfer_cost(256) < 256 * SECTOR_TRANSFER_COST);
        assert_eq!(
            batch_transfer_cost(4),
            SECTOR_TRANSFER_COST + 3 * SECTOR_STREAM_COST
        );
    }

    #[test]
    fn injected_faults_fire_then_clear() {
        let mut d = Disk::new(4);
        d.inject_transient_errors(2);
        let e = d.read_sector(0).unwrap_err();
        assert!(e.to_string().contains("transient"), "{e}");
        assert!(d.write_sector(0, &[0u8; SECTOR_SIZE]).is_err());
        // Window exhausted: back to normal.
        d.read_sector(0).unwrap();
        assert_eq!(d.transient_fired(), 2);
        // Torn crash writes bypass the transient window entirely.
        d.inject_transient_errors(1);
        d.write_sector_prefix(1, &[0xCC; SECTOR_SIZE], 8).unwrap();
        // Latency spikes decay per consumed op, and clear_faults drops
        // everything armed.
        d.inject_latency(5_000, 2);
        assert_eq!(d.take_op_latency(), 5_000);
        d.clear_faults();
        assert_eq!(d.take_op_latency(), 0);
        d.read_sector(2).unwrap();
    }

    #[test]
    fn registers_report_counts() {
        let mut d = Disk::new(16);
        d.read_sector(0).unwrap();
        assert_eq!(d.read_reg(regs::SECTOR_COUNT).unwrap(), 16);
        assert_eq!(d.read_reg(regs::READS).unwrap(), 1);
        assert!(d.write_reg(regs::READS, 9).is_err());
    }
}
