//! A periodic interval timer raising IRQ line [`TIMER_IRQ`].

use crate::{cost::Cycles, irq::IrqController, MachineError, MachineResult};

use super::Device;

/// IRQ line the timer raises.
pub const TIMER_IRQ: u32 = 0;

/// Register offsets.
pub mod regs {
    /// R/W: period in cycles (0 disables).
    pub const PERIOD: u64 = 0x0;
    /// R: number of times the timer has fired.
    pub const FIRE_COUNT: u64 = 0x4;
    /// R/W: 1 = running, 0 = stopped.
    pub const CTRL: u64 = 0x8;
}

/// A periodic interval timer.
pub struct Timer {
    period: Cycles,
    running: bool,
    next_fire: Cycles,
    fires: u64,
}

impl Default for Timer {
    fn default() -> Self {
        Self::new()
    }
}

impl Timer {
    /// Creates a stopped timer.
    pub fn new() -> Self {
        Timer {
            period: 0,
            running: false,
            next_fire: 0,
            fires: 0,
        }
    }

    /// Times the timer has fired.
    pub fn fire_count(&self) -> u64 {
        self.fires
    }
}

impl Device for Timer {
    fn name(&self) -> &str {
        "timer"
    }

    fn read_reg(&mut self, offset: u64) -> MachineResult<u32> {
        match offset {
            regs::PERIOD => Ok(self.period as u32),
            regs::FIRE_COUNT => Ok(self.fires as u32),
            regs::CTRL => Ok(u32::from(self.running)),
            _ => Err(MachineError::Device(format!(
                "timer: bad register {offset:#x}"
            ))),
        }
    }

    fn write_reg(&mut self, offset: u64, value: u32) -> MachineResult<()> {
        match offset {
            regs::PERIOD => {
                self.period = Cycles::from(value);
                Ok(())
            }
            regs::CTRL => {
                let was = self.running;
                self.running = value & 1 == 1;
                if self.running && !was {
                    // (Re)arm relative to "now" on the next tick.
                    self.next_fire = 0;
                }
                Ok(())
            }
            regs::FIRE_COUNT => Err(MachineError::Device(
                "timer: FIRE_COUNT is read-only".into(),
            )),
            _ => Err(MachineError::Device(format!(
                "timer: bad register {offset:#x}"
            ))),
        }
    }

    fn tick(&mut self, now: Cycles, irq: &mut IrqController) {
        if !self.running || self.period == 0 {
            return;
        }
        if self.next_fire == 0 {
            self.next_fire = now + self.period;
            return;
        }
        while now >= self.next_fire {
            irq.raise(TIMER_IRQ);
            self.fires += 1;
            self.next_fire += self.period;
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_periodically_once_started() {
        let mut t = Timer::new();
        let mut irq = IrqController::new();
        t.write_reg(regs::PERIOD, 100).unwrap();
        t.write_reg(regs::CTRL, 1).unwrap();
        t.tick(0, &mut irq); // Arms at 100.
        t.tick(50, &mut irq);
        assert!(!irq.has_pending());
        t.tick(100, &mut irq);
        assert_eq!(irq.acknowledge(), Some(TIMER_IRQ));
        t.tick(350, &mut irq); // Catches up: fires at 200 and 300.
        assert_eq!(t.fire_count(), 3);
    }

    #[test]
    fn stopped_timer_is_silent() {
        let mut t = Timer::new();
        let mut irq = IrqController::new();
        t.write_reg(regs::PERIOD, 10).unwrap();
        t.tick(0, &mut irq);
        t.tick(1000, &mut irq);
        assert!(!irq.has_pending());
        assert_eq!(t.fire_count(), 0);
    }

    #[test]
    fn registers_readback() {
        let mut t = Timer::new();
        t.write_reg(regs::PERIOD, 42).unwrap();
        assert_eq!(t.read_reg(regs::PERIOD).unwrap(), 42);
        assert_eq!(t.read_reg(regs::CTRL).unwrap(), 0);
        t.write_reg(regs::CTRL, 1).unwrap();
        assert_eq!(t.read_reg(regs::CTRL).unwrap(), 1);
        assert!(t.read_reg(0x999).is_err());
        assert!(t.write_reg(regs::FIRE_COUNT, 0).is_err());
    }
}
