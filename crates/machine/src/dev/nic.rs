//! A simulated network interface controller.
//!
//! The NIC is the paper's motivating shared device: "inserting application
//! components for fast protocol processing into a shared network device
//! driver" (section 1). Frames are *injected* host-side (standing in for
//! the wire), land in a bounded RX ring, and raise IRQ line [`NIC_IRQ`].
//! Transmitted frames are captured in a TX log that tests and workload
//! harnesses can drain.

use std::collections::VecDeque;

use bytes::Bytes;

use crate::{cost::Cycles, irq::IrqController, MachineError, MachineResult};

use super::Device;

/// IRQ line the NIC raises on frame reception.
pub const NIC_IRQ: u32 = 1;

/// Maximum frame size the NIC accepts (Ethernet MTU + header slack).
pub const MAX_FRAME: usize = 1536;

/// RX ring capacity in frames; the wire drops beyond this.
pub const RX_RING: usize = 64;

/// Register offsets.
pub mod regs {
    /// R: frames currently waiting in the RX ring.
    pub const RX_AVAIL: u64 = 0x0;
    /// R: length of the frame at the head of the RX ring (0 if empty).
    pub const RX_HEAD_LEN: u64 = 0x4;
    /// R: total frames received (including dropped).
    pub const RX_TOTAL: u64 = 0x8;
    /// R: frames dropped because the ring was full.
    pub const RX_DROPPED: u64 = 0xC;
    /// R: frames transmitted.
    pub const TX_TOTAL: u64 = 0x10;
    /// R/W: interrupt enable (1 = raise IRQ on receive).
    pub const IRQ_ENABLE: u64 = 0x14;
}

/// A simulated NIC.
pub struct Nic {
    name: String,
    rx: VecDeque<Bytes>,
    tx_log: VecDeque<Bytes>,
    rx_total: u64,
    rx_dropped: u64,
    tx_total: u64,
    irq_enable: bool,
    /// Set when a frame arrived since the last tick, so the interrupt is
    /// raised from `tick` (device time), not from the host injector.
    rx_event: bool,
    /// Carrier state. A downed link blackholes both directions — the
    /// cable-pulled fault chaos drills inject; dropped frames count.
    link_up: bool,
    tx_dropped: u64,
}

impl Default for Nic {
    fn default() -> Self {
        Self::new()
    }
}

impl Nic {
    /// Creates the machine's primary NIC (device name `"nic"`) with
    /// interrupts enabled.
    pub fn new() -> Self {
        Self::named("nic")
    }

    /// Creates an additional NIC under its own device name, so a machine
    /// can model a multi-homed host (e.g. a router spanning two wires).
    pub fn named(name: impl Into<String>) -> Self {
        Nic {
            name: name.into(),
            rx: VecDeque::new(),
            tx_log: VecDeque::new(),
            rx_total: 0,
            rx_dropped: 0,
            tx_total: 0,
            irq_enable: true,
            rx_event: false,
            link_up: true,
            tx_dropped: 0,
        }
    }

    /// Raises or drops the carrier. While down, transmitted and injected
    /// frames are silently blackholed (counted in the drop stats), exactly
    /// like a pulled cable: the driver sees no error, the wire sees no
    /// frame.
    pub fn set_link_up(&mut self, up: bool) {
        self.link_up = up;
    }

    /// Current carrier state.
    pub fn link_up(&self) -> bool {
        self.link_up
    }

    /// Frames blackholed on transmit while the link was down.
    pub fn tx_dropped(&self) -> u64 {
        self.tx_dropped
    }

    /// Host-side: a frame arrives from the wire.
    ///
    /// Returns `false` if the ring was full and the frame was dropped.
    pub fn inject_rx(&mut self, frame: impl Into<Bytes>) -> bool {
        let frame = frame.into();
        self.rx_total += 1;
        if !self.link_up || frame.len() > MAX_FRAME || self.rx.len() >= RX_RING {
            self.rx_dropped += 1;
            return false;
        }
        self.rx.push_back(frame);
        self.rx_event = true;
        true
    }

    /// Driver-side: takes the frame at the head of the RX ring. Frames are
    /// refcounted views, so this hands the buffer up without copying.
    pub fn rx_take(&mut self) -> Option<Bytes> {
        self.rx.pop_front()
    }

    /// Driver-side: transmits a frame.
    pub fn tx(&mut self, frame: impl Into<Bytes>) -> MachineResult<()> {
        let frame = frame.into();
        if frame.len() > MAX_FRAME {
            return Err(MachineError::Device(format!(
                "nic: frame of {} bytes exceeds MTU",
                frame.len()
            )));
        }
        self.tx_total += 1;
        if !self.link_up {
            self.tx_dropped += 1;
            return Ok(());
        }
        self.tx_log.push_back(frame);
        Ok(())
    }

    /// Host-side: drains one transmitted frame (the wire's view).
    pub fn tx_take(&mut self) -> Option<Bytes> {
        self.tx_log.pop_front()
    }

    /// Frames waiting in the RX ring.
    pub fn rx_pending(&self) -> usize {
        self.rx.len()
    }

    /// Total frames dropped due to ring overflow.
    pub fn dropped(&self) -> u64 {
        self.rx_dropped
    }
}

impl Device for Nic {
    fn name(&self) -> &str {
        &self.name
    }

    fn read_reg(&mut self, offset: u64) -> MachineResult<u32> {
        match offset {
            regs::RX_AVAIL => Ok(self.rx.len() as u32),
            regs::RX_HEAD_LEN => Ok(self.rx.front().map_or(0, |f| f.len() as u32)),
            regs::RX_TOTAL => Ok(self.rx_total as u32),
            regs::RX_DROPPED => Ok(self.rx_dropped as u32),
            regs::TX_TOTAL => Ok(self.tx_total as u32),
            regs::IRQ_ENABLE => Ok(u32::from(self.irq_enable)),
            _ => Err(MachineError::Device(format!(
                "nic: bad register {offset:#x}"
            ))),
        }
    }

    fn write_reg(&mut self, offset: u64, value: u32) -> MachineResult<()> {
        match offset {
            regs::IRQ_ENABLE => {
                self.irq_enable = value & 1 == 1;
                Ok(())
            }
            regs::RX_AVAIL
            | regs::RX_HEAD_LEN
            | regs::RX_TOTAL
            | regs::RX_DROPPED
            | regs::TX_TOTAL => Err(MachineError::Device("nic: register is read-only".into())),
            _ => Err(MachineError::Device(format!(
                "nic: bad register {offset:#x}"
            ))),
        }
    }

    fn tick(&mut self, _now: Cycles, irq: &mut IrqController) {
        if self.rx_event {
            self.rx_event = false;
            if self.irq_enable {
                irq.raise(NIC_IRQ);
            }
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rx_path_raises_irq() {
        let mut nic = Nic::new();
        let mut irq = IrqController::new();
        assert!(nic.inject_rx(vec![1, 2, 3]));
        nic.tick(0, &mut irq);
        assert_eq!(irq.acknowledge(), Some(NIC_IRQ));
        assert_eq!(nic.rx_take().unwrap(), vec![1, 2, 3]);
        assert_eq!(nic.rx_take(), None);
    }

    #[test]
    fn irq_disable_suppresses_interrupt() {
        let mut nic = Nic::new();
        let mut irq = IrqController::new();
        nic.write_reg(regs::IRQ_ENABLE, 0).unwrap();
        nic.inject_rx(vec![0u8; 10]);
        nic.tick(0, &mut irq);
        assert!(!irq.has_pending());
        // The frame is still there for a polling driver.
        assert_eq!(nic.rx_pending(), 1);
    }

    #[test]
    fn ring_overflow_drops() {
        let mut nic = Nic::new();
        for i in 0..(RX_RING + 5) {
            nic.inject_rx(vec![i as u8]);
        }
        assert_eq!(nic.rx_pending(), RX_RING);
        assert_eq!(nic.dropped(), 5);
        assert_eq!(nic.read_reg(regs::RX_DROPPED).unwrap(), 5);
    }

    #[test]
    fn downed_link_blackholes_both_directions() {
        let mut nic = Nic::new();
        nic.set_link_up(false);
        assert!(!nic.link_up());
        // Transmit succeeds from the driver's view but nothing hits the
        // wire; injected frames never reach the ring.
        nic.tx(vec![1u8; 8]).unwrap();
        assert_eq!(nic.tx_take(), None);
        assert_eq!(nic.tx_dropped(), 1);
        assert!(!nic.inject_rx(vec![2u8; 8]));
        assert_eq!(nic.rx_pending(), 0);
        // Carrier restored: traffic flows again.
        nic.set_link_up(true);
        nic.tx(vec![3u8; 8]).unwrap();
        assert_eq!(nic.tx_take().unwrap(), vec![3u8; 8]);
        assert!(nic.inject_rx(vec![4u8; 8]));
    }

    #[test]
    fn oversized_frames_rejected() {
        let mut nic = Nic::new();
        assert!(!nic.inject_rx(vec![0u8; MAX_FRAME + 1]));
        assert!(nic.tx(vec![0u8; MAX_FRAME + 1]).is_err());
        assert!(nic.tx(vec![0u8; MAX_FRAME]).is_ok());
    }

    #[test]
    fn tx_log_captures_frames_in_order() {
        let mut nic = Nic::new();
        nic.tx(vec![1]).unwrap();
        nic.tx(vec![2]).unwrap();
        assert_eq!(nic.tx_take().unwrap(), vec![1]);
        assert_eq!(nic.tx_take().unwrap(), vec![2]);
        assert_eq!(nic.tx_take(), None);
        assert_eq!(nic.read_reg(regs::TX_TOTAL).unwrap(), 2);
    }

    #[test]
    fn head_len_register_tracks_queue() {
        let mut nic = Nic::new();
        assert_eq!(nic.read_reg(regs::RX_HEAD_LEN).unwrap(), 0);
        nic.inject_rx(vec![0u8; 99]);
        assert_eq!(nic.read_reg(regs::RX_HEAD_LEN).unwrap(), 99);
        assert_eq!(nic.read_reg(regs::RX_AVAIL).unwrap(), 1);
    }
}
