//! A write-only console device (the kernel log).

use crate::{cost::Cycles, irq::IrqController, MachineError, MachineResult};

use super::Device;

/// Register offsets.
pub mod regs {
    /// W: write one byte (low 8 bits).
    pub const PUTC: u64 = 0x0;
    /// R: total bytes written.
    pub const COUNT: u64 = 0x4;
}

/// A console that accumulates output host-side.
#[derive(Default)]
pub struct Console {
    buf: Vec<u8>,
}

impl Console {
    /// Creates an empty console.
    pub fn new() -> Self {
        Console::default()
    }

    /// Host-side: everything written so far, lossily decoded.
    pub fn contents(&self) -> String {
        String::from_utf8_lossy(&self.buf).into_owned()
    }

    /// Host-side: clears the buffer.
    pub fn clear(&mut self) {
        self.buf.clear();
    }
}

impl Device for Console {
    fn name(&self) -> &str {
        "console"
    }

    fn read_reg(&mut self, offset: u64) -> MachineResult<u32> {
        match offset {
            regs::COUNT => Ok(self.buf.len() as u32),
            regs::PUTC => Err(MachineError::Device("console: PUTC is write-only".into())),
            _ => Err(MachineError::Device(format!(
                "console: bad register {offset:#x}"
            ))),
        }
    }

    fn write_reg(&mut self, offset: u64, value: u32) -> MachineResult<()> {
        match offset {
            regs::PUTC => {
                self.buf.push(value as u8);
                Ok(())
            }
            _ => Err(MachineError::Device(format!(
                "console: bad register {offset:#x}"
            ))),
        }
    }

    fn tick(&mut self, _now: Cycles, _irq: &mut IrqController) {}

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_accumulate() {
        let mut c = Console::new();
        for b in b"boot: ok\n" {
            c.write_reg(regs::PUTC, u32::from(*b)).unwrap();
        }
        assert_eq!(c.contents(), "boot: ok\n");
        assert_eq!(c.read_reg(regs::COUNT).unwrap(), 9);
        c.clear();
        assert_eq!(c.contents(), "");
    }

    #[test]
    fn bad_registers_rejected() {
        let mut c = Console::new();
        assert!(c.read_reg(regs::PUTC).is_err());
        assert!(c.write_reg(0x40, 0).is_err());
    }
}
