//! Simulated devices.
//!
//! Each device exposes a small register file (accessed through I/O space by
//! drivers) and may raise interrupt lines when ticked. Devices also expose
//! plain-Rust *host-side* methods (injecting packets, reading console
//! output) used by tests and workload generators — the simulation
//! equivalent of the wire or the keyboard.

pub mod console;
pub mod disk;
pub mod nic;
pub mod timer;

pub use console::Console;
pub use disk::Disk;
pub use nic::Nic;
pub use timer::Timer;

use crate::{cost::Cycles, irq::IrqController, MachineResult};

/// A simulated device with a register interface.
pub trait Device: Send {
    /// Stable device name, used for I/O-space bookkeeping.
    fn name(&self) -> &str;

    /// Reads a 32-bit device register at byte offset `offset`.
    fn read_reg(&mut self, offset: u64) -> MachineResult<u32>;

    /// Writes a 32-bit device register.
    fn write_reg(&mut self, offset: u64, value: u32) -> MachineResult<()>;

    /// Advances device time to `now`; the device may raise interrupts.
    fn tick(&mut self, now: Cycles, irq: &mut IrqController);

    /// Dynamic downcast support (host-side access to concrete devices).
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}
