//! Simulated hardware substrate for the Paramecium reproduction.
//!
//! The paper targets SPARCstations: a real MMU with numbered contexts,
//! traps that are "expensive on our target hardware", device interrupts and
//! memory-mapped I/O. We have none of that, so this crate provides a
//! deterministic software model of the same abstractions:
//!
//! - [`cost`] — a configurable cycle-cost model (the time base for every
//!   experiment; loosely calibrated to early-90s SPARC relative costs),
//! - [`phys`] — physical memory and frame allocation,
//! - [`mmu`] — per-context page tables with R/W/X protection,
//! - [`tlb`] — a small translation cache with hit/miss accounting,
//! - [`trap`] — trap kinds and vectors (page fault, syscall, interrupt…),
//! - [`irq`] — a prioritised interrupt controller,
//! - [`io`] — I/O-space regions for device registers and buffers,
//! - [`dev`] — devices: a timer, a network interface, a console,
//! - [`machine`] — the [`Machine`] tying it all together.
//!
//! The machine is *passive*: it never calls up into the kernel. The nucleus
//! (in `paramecium-core`) performs translations, observes faults, polls the
//! interrupt controller and charges cycle costs through this crate's
//! accounting. That keeps the dependency arrow pointing the right way and
//! makes every experiment deterministic and single-threaded by
//! construction.

pub mod cost;
pub mod dev;
pub mod io;
pub mod irq;
pub mod machine;
pub mod mmu;
pub mod phys;
pub mod tlb;
pub mod trap;

pub use cost::{CostModel, Cycles};
pub use io::{IoRegionId, IoSpace};
pub use machine::Machine;
pub use mmu::{Access, ContextId, Fault, FaultKind, Perms, PAGE_SIZE};
pub use phys::{FrameId, PhysMem};
pub use trap::{Trap, TrapKind};

/// Errors surfaced by the machine model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MachineError {
    /// Physical memory is exhausted.
    OutOfFrames,
    /// A physical address was out of range.
    BadPhysAddr(u64),
    /// The referenced MMU context does not exist.
    NoSuchContext(u16),
    /// A virtual access faulted (not mapped / protection).
    Fault(Fault),
    /// An I/O-space operation failed.
    Io(String),
    /// A device reported an error.
    Device(String),
    /// The simulated machine lost power (crash injection): the current
    /// operation did not complete and no further operation will until
    /// [`Machine::reboot`](machine::Machine::reboot).
    PowerFailure,
}

impl std::fmt::Display for MachineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MachineError::OutOfFrames => write!(f, "out of physical frames"),
            MachineError::BadPhysAddr(a) => write!(f, "bad physical address {a:#x}"),
            MachineError::NoSuchContext(c) => write!(f, "no MMU context {c}"),
            MachineError::Fault(fault) => write!(f, "memory fault: {fault}"),
            MachineError::Io(m) => write!(f, "I/O space error: {m}"),
            MachineError::Device(m) => write!(f, "device error: {m}"),
            MachineError::PowerFailure => write!(f, "simulated power failure"),
        }
    }
}

impl std::error::Error for MachineError {}

impl From<Fault> for MachineError {
    fn from(fault: Fault) -> Self {
        MachineError::Fault(fault)
    }
}

/// Convenient result alias.
pub type MachineResult<T> = Result<T, MachineError>;

#[cfg(test)]
mod send_audit {
    //! The world pool moves whole machines (devices included) across OS
    //! threads; these assertions pin the `Send` story at the type level
    //! so a non-`Send` device or cost-model field is a compile error
    //! here, not a mysterious trait bound failure three crates up.
    use super::*;

    fn assert_send<T: Send>() {}
    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn machines_and_devices_may_cross_os_threads() {
        assert_send::<Machine>();
        assert_send::<Box<dyn dev::Device>>();
        assert_send_sync::<CostModel>();
    }
}
