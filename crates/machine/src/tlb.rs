//! A small software-modelled TLB with hit/miss accounting.
//!
//! Entries are tagged with the MMU context (as on SPARC), so a context
//! switch does not flush the TLB; unmapping or reprotecting a page
//! invalidates the matching entries.

use crate::{
    mmu::{ContextId, Perms},
    phys::FrameId,
};

/// One cached translation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct TlbEntry {
    ctx: ContextId,
    vpn: u64,
    frame: FrameId,
    perms: Perms,
}

/// Hit/miss counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Lookups satisfied from the TLB.
    pub hits: u64,
    /// Lookups that required a page-table walk.
    pub misses: u64,
}

/// A fully associative FIFO-replacement TLB.
#[derive(Clone, Debug)]
pub struct Tlb {
    entries: Vec<Option<TlbEntry>>,
    next: usize,
    stats: TlbStats,
    enabled: bool,
}

impl Tlb {
    /// Creates a TLB with `capacity` entries (64 on our model SPARC).
    pub fn new(capacity: usize) -> Self {
        Tlb {
            entries: vec![None; capacity.max(1)],
            next: 0,
            stats: TlbStats::default(),
            enabled: true,
        }
    }

    /// Enables or disables the TLB (for the ablation experiment: every
    /// lookup becomes a miss when disabled).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
        if !enabled {
            self.flush_all();
        }
    }

    /// Looks up a translation. Counts a hit or miss.
    pub fn lookup(&mut self, ctx: ContextId, vpn: u64) -> Option<(FrameId, Perms)> {
        if self.enabled {
            for e in self.entries.iter().flatten() {
                if e.ctx == ctx && e.vpn == vpn {
                    self.stats.hits += 1;
                    return Some((e.frame, e.perms));
                }
            }
        }
        self.stats.misses += 1;
        None
    }

    /// Inserts a translation after a page-table walk.
    pub fn insert(&mut self, ctx: ContextId, vpn: u64, frame: FrameId, perms: Perms) {
        if !self.enabled {
            return;
        }
        // Replace an existing entry for the same (ctx, vpn) if present.
        for entry in self.entries.iter_mut().flatten() {
            if entry.ctx == ctx && entry.vpn == vpn {
                entry.frame = frame;
                entry.perms = perms;
                return;
            }
        }
        self.entries[self.next] = Some(TlbEntry {
            ctx,
            vpn,
            frame,
            perms,
        });
        self.next = (self.next + 1) % self.entries.len();
    }

    /// Invalidates the entry for one page of one context.
    pub fn invalidate(&mut self, ctx: ContextId, vpn: u64) {
        for e in self.entries.iter_mut() {
            if matches!(e, Some(entry) if entry.ctx == ctx && entry.vpn == vpn) {
                *e = None;
            }
        }
    }

    /// Invalidates every entry of one context (context teardown).
    pub fn flush_context(&mut self, ctx: ContextId) {
        for e in self.entries.iter_mut() {
            if matches!(e, Some(entry) if entry.ctx == ctx) {
                *e = None;
            }
        }
    }

    /// Invalidates everything.
    pub fn flush_all(&mut self) {
        self.entries.iter_mut().for_each(|e| *e = None);
    }

    /// Hit/miss counters so far.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Resets the counters (not the entries).
    pub fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(n: u16) -> ContextId {
        ContextId(n)
    }

    #[test]
    fn hit_after_insert() {
        let mut tlb = Tlb::new(4);
        assert_eq!(tlb.lookup(ctx(1), 7), None);
        tlb.insert(ctx(1), 7, FrameId(3), Perms::RW);
        assert_eq!(tlb.lookup(ctx(1), 7), Some((FrameId(3), Perms::RW)));
        assert_eq!(tlb.stats(), TlbStats { hits: 1, misses: 1 });
    }

    #[test]
    fn entries_are_context_tagged() {
        let mut tlb = Tlb::new(4);
        tlb.insert(ctx(1), 7, FrameId(3), Perms::RW);
        assert_eq!(tlb.lookup(ctx(2), 7), None);
    }

    #[test]
    fn fifo_replacement_evicts_oldest() {
        let mut tlb = Tlb::new(2);
        tlb.insert(ctx(0), 1, FrameId(1), Perms::R);
        tlb.insert(ctx(0), 2, FrameId(2), Perms::R);
        tlb.insert(ctx(0), 3, FrameId(3), Perms::R); // Evicts vpn 1.
        assert_eq!(tlb.lookup(ctx(0), 1), None);
        assert!(tlb.lookup(ctx(0), 2).is_some());
        assert!(tlb.lookup(ctx(0), 3).is_some());
    }

    #[test]
    fn reinsert_updates_in_place() {
        let mut tlb = Tlb::new(2);
        tlb.insert(ctx(0), 1, FrameId(1), Perms::R);
        tlb.insert(ctx(0), 1, FrameId(9), Perms::RW);
        assert_eq!(tlb.lookup(ctx(0), 1), Some((FrameId(9), Perms::RW)));
    }

    #[test]
    fn invalidate_and_flush() {
        let mut tlb = Tlb::new(4);
        tlb.insert(ctx(1), 1, FrameId(1), Perms::R);
        tlb.insert(ctx(1), 2, FrameId(2), Perms::R);
        tlb.insert(ctx(2), 1, FrameId(3), Perms::R);
        tlb.invalidate(ctx(1), 1);
        assert_eq!(tlb.lookup(ctx(1), 1), None);
        assert!(tlb.lookup(ctx(1), 2).is_some());
        tlb.flush_context(ctx(1));
        assert_eq!(tlb.lookup(ctx(1), 2), None);
        assert!(tlb.lookup(ctx(2), 1).is_some());
        tlb.flush_all();
        assert_eq!(tlb.lookup(ctx(2), 1), None);
    }

    #[test]
    fn disabled_tlb_always_misses() {
        let mut tlb = Tlb::new(4);
        tlb.set_enabled(false);
        tlb.insert(ctx(0), 1, FrameId(1), Perms::R);
        assert_eq!(tlb.lookup(ctx(0), 1), None);
        assert_eq!(tlb.stats().hits, 0);
        assert_eq!(tlb.stats().misses, 1);
    }
}
