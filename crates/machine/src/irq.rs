//! The interrupt controller.
//!
//! Devices raise lines; the controller latches them, applies per-line masks
//! and a fixed priority (lower line number = higher priority), and hands the
//! highest-priority pending line to whoever acknowledges it (the nucleus's
//! event service).

/// Number of IRQ lines the controller supports.
pub const NUM_IRQ_LINES: u32 = 16;

/// A prioritised, maskable interrupt controller.
#[derive(Clone, Debug)]
pub struct IrqController {
    pending: u32,
    masked: u32,
    /// Count of raises per line (telemetry).
    raised: [u64; NUM_IRQ_LINES as usize],
    /// Raises that were latched while already pending (coalesced).
    coalesced: u64,
}

impl Default for IrqController {
    fn default() -> Self {
        Self::new()
    }
}

impl IrqController {
    /// Creates a controller with all lines unmasked and idle.
    pub fn new() -> Self {
        IrqController {
            pending: 0,
            masked: 0,
            raised: [0; NUM_IRQ_LINES as usize],
            coalesced: 0,
        }
    }

    /// A device raises `line`. Raising an already-pending line coalesces
    /// (as on real level-triggered controllers).
    pub fn raise(&mut self, line: u32) {
        assert!(line < NUM_IRQ_LINES, "IRQ line {line} out of range");
        let bit = 1u32 << line;
        if self.pending & bit != 0 {
            self.coalesced += 1;
        }
        self.pending |= bit;
        self.raised[line as usize] += 1;
    }

    /// Masks a line: it stays latched but is not delivered.
    pub fn mask(&mut self, line: u32) {
        assert!(line < NUM_IRQ_LINES);
        self.masked |= 1 << line;
    }

    /// Unmasks a line.
    pub fn unmask(&mut self, line: u32) {
        assert!(line < NUM_IRQ_LINES);
        self.masked &= !(1 << line);
    }

    /// True if `line` is masked.
    pub fn is_masked(&self, line: u32) -> bool {
        self.masked & (1 << line) != 0
    }

    /// The highest-priority (lowest-numbered) deliverable line, if any,
    /// without acknowledging it.
    pub fn peek(&self) -> Option<u32> {
        let deliverable = self.pending & !self.masked;
        if deliverable == 0 {
            None
        } else {
            Some(deliverable.trailing_zeros())
        }
    }

    /// Acknowledges and clears the highest-priority deliverable line.
    pub fn acknowledge(&mut self) -> Option<u32> {
        let line = self.peek()?;
        self.pending &= !(1 << line);
        Some(line)
    }

    /// True if any unmasked interrupt is pending.
    pub fn has_pending(&self) -> bool {
        self.peek().is_some()
    }

    /// Number of times `line` has been raised.
    pub fn raise_count(&self, line: u32) -> u64 {
        self.raised[line as usize]
    }

    /// Number of raises that coalesced into an already-pending line.
    pub fn coalesced_count(&self) -> u64 {
        self.coalesced
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raise_and_acknowledge() {
        let mut c = IrqController::new();
        assert_eq!(c.acknowledge(), None);
        c.raise(3);
        assert!(c.has_pending());
        assert_eq!(c.acknowledge(), Some(3));
        assert!(!c.has_pending());
    }

    #[test]
    fn priority_is_lowest_line_first() {
        let mut c = IrqController::new();
        c.raise(5);
        c.raise(1);
        c.raise(9);
        assert_eq!(c.acknowledge(), Some(1));
        assert_eq!(c.acknowledge(), Some(5));
        assert_eq!(c.acknowledge(), Some(9));
        assert_eq!(c.acknowledge(), None);
    }

    #[test]
    fn masking_defers_delivery() {
        let mut c = IrqController::new();
        c.mask(2);
        c.raise(2);
        assert!(!c.has_pending());
        assert_eq!(c.peek(), None);
        c.unmask(2);
        assert_eq!(c.acknowledge(), Some(2));
    }

    #[test]
    fn coalescing_counts() {
        let mut c = IrqController::new();
        c.raise(4);
        c.raise(4);
        c.raise(4);
        assert_eq!(c.raise_count(4), 3);
        assert_eq!(c.coalesced_count(), 2);
        // Only one delivery results.
        assert_eq!(c.acknowledge(), Some(4));
        assert_eq!(c.acknowledge(), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_line_panics() {
        IrqController::new().raise(NUM_IRQ_LINES);
    }
}
