//! I/O-space allocation.
//!
//! "The memory management service also provides I/O space allocation.
//! Device drivers use this service to allocate I/O space and map in the
//! device registers into their protection domain. I/O spaces can be
//! allocated exclusively or shared, allowing device registers to be mapped
//! privately and on-device buffers to be shared by other contexts."
//! (paper, section 3).
//!
//! This module manages the address-space bookkeeping; the nucleus's memory
//! service decides which contexts may claim which regions.

use std::collections::BTreeMap;

use crate::{mmu::ContextId, MachineError, MachineResult};

/// Identifier of an allocated I/O region.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IoRegionId(pub u32);

/// Sharing mode of an I/O region.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoSharing {
    /// At most one context may claim the region (device registers).
    Exclusive,
    /// Any number of contexts may claim it (on-device buffers).
    Shared,
}

/// One allocated I/O region.
#[derive(Clone, Debug)]
pub struct IoRegion {
    /// Region identifier.
    pub id: IoRegionId,
    /// Name of the device the region belongs to.
    pub device: String,
    /// Base bus address of the region.
    pub base: u64,
    /// Length in bytes.
    pub len: usize,
    /// Sharing mode.
    pub sharing: IoSharing,
    /// Contexts that have claimed the region.
    pub claimants: Vec<ContextId>,
}

/// The I/O-space allocator.
pub struct IoSpace {
    regions: BTreeMap<IoRegionId, IoRegion>,
    next_id: u32,
    next_base: u64,
}

/// Bus address where I/O space starts (above simulated RAM).
const IO_BASE: u64 = 0x1_0000_0000;

impl Default for IoSpace {
    fn default() -> Self {
        Self::new()
    }
}

impl IoSpace {
    /// Creates an empty I/O space.
    pub fn new() -> Self {
        IoSpace {
            regions: BTreeMap::new(),
            next_id: 0,
            next_base: IO_BASE,
        }
    }

    /// Allocates a region of `len` bytes for `device`.
    pub fn allocate(
        &mut self,
        device: impl Into<String>,
        len: usize,
        sharing: IoSharing,
    ) -> MachineResult<IoRegionId> {
        if len == 0 {
            return Err(MachineError::Io("zero-length I/O region".into()));
        }
        let id = IoRegionId(self.next_id);
        self.next_id += 1;
        let base = self.next_base;
        // Keep regions page-aligned so they can be mapped like pages.
        let span = len.div_ceil(crate::mmu::PAGE_SIZE) * crate::mmu::PAGE_SIZE;
        self.next_base += span as u64;
        self.regions.insert(
            id,
            IoRegion {
                id,
                device: device.into(),
                base,
                len,
                sharing,
                claimants: Vec::new(),
            },
        );
        Ok(id)
    }

    /// A context claims access to a region. Exclusive regions admit one
    /// claimant only.
    pub fn claim(&mut self, id: IoRegionId, ctx: ContextId) -> MachineResult<()> {
        let region = self
            .regions
            .get_mut(&id)
            .ok_or_else(|| MachineError::Io(format!("no such I/O region {id:?}")))?;
        if region.claimants.contains(&ctx) {
            return Ok(());
        }
        if region.sharing == IoSharing::Exclusive && !region.claimants.is_empty() {
            return Err(MachineError::Io(format!(
                "I/O region {id:?} ({}) is exclusively claimed",
                region.device
            )));
        }
        region.claimants.push(ctx);
        Ok(())
    }

    /// A context releases its claim.
    pub fn release(&mut self, id: IoRegionId, ctx: ContextId) -> MachineResult<()> {
        let region = self
            .regions
            .get_mut(&id)
            .ok_or_else(|| MachineError::Io(format!("no such I/O region {id:?}")))?;
        let before = region.claimants.len();
        region.claimants.retain(|c| *c != ctx);
        if region.claimants.len() == before {
            return Err(MachineError::Io(format!(
                "context {} holds no claim on region {id:?}",
                ctx.0
            )));
        }
        Ok(())
    }

    /// True if `ctx` currently holds a claim on `id`.
    pub fn is_claimant(&self, id: IoRegionId, ctx: ContextId) -> bool {
        self.regions
            .get(&id)
            .is_some_and(|r| r.claimants.contains(&ctx))
    }

    /// Looks up a region by id.
    pub fn region(&self, id: IoRegionId) -> Option<&IoRegion> {
        self.regions.get(&id)
    }

    /// Finds the region containing bus address `addr`.
    pub fn region_at(&self, addr: u64) -> Option<&IoRegion> {
        self.regions
            .values()
            .find(|r| addr >= r.base && addr < r.base + r.len as u64)
    }

    /// All regions belonging to `device`.
    pub fn regions_of(&self, device: &str) -> Vec<&IoRegion> {
        self.regions
            .values()
            .filter(|r| r.device == device)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_is_disjoint_and_page_aligned() {
        let mut io = IoSpace::new();
        let a = io.allocate("nic", 100, IoSharing::Exclusive).unwrap();
        let b = io.allocate("nic", 5000, IoSharing::Shared).unwrap();
        let (ra, rb) = (io.region(a).unwrap().clone(), io.region(b).unwrap().clone());
        assert_eq!(ra.base % crate::mmu::PAGE_SIZE as u64, 0);
        assert_eq!(rb.base % crate::mmu::PAGE_SIZE as u64, 0);
        assert!(ra.base + ra.len as u64 <= rb.base);
    }

    #[test]
    fn exclusive_admits_one_claimant() {
        let mut io = IoSpace::new();
        let id = io.allocate("nic", 64, IoSharing::Exclusive).unwrap();
        io.claim(id, ContextId(1)).unwrap();
        // Idempotent for the same context.
        io.claim(id, ContextId(1)).unwrap();
        assert!(io.claim(id, ContextId(2)).is_err());
        io.release(id, ContextId(1)).unwrap();
        io.claim(id, ContextId(2)).unwrap();
    }

    #[test]
    fn shared_admits_many() {
        let mut io = IoSpace::new();
        let id = io.allocate("nic-buf", 4096, IoSharing::Shared).unwrap();
        io.claim(id, ContextId(1)).unwrap();
        io.claim(id, ContextId(2)).unwrap();
        io.claim(id, ContextId(3)).unwrap();
        assert!(io.is_claimant(id, ContextId(2)));
    }

    #[test]
    fn release_requires_claim() {
        let mut io = IoSpace::new();
        let id = io.allocate("dev", 8, IoSharing::Shared).unwrap();
        assert!(io.release(id, ContextId(9)).is_err());
    }

    #[test]
    fn region_at_finds_containing_region() {
        let mut io = IoSpace::new();
        let a = io.allocate("x", 64, IoSharing::Exclusive).unwrap();
        let base = io.region(a).unwrap().base;
        assert_eq!(io.region_at(base + 10).unwrap().id, a);
        assert!(io.region_at(base + 64).is_none());
        assert!(io.region_at(0).is_none());
    }

    #[test]
    fn zero_length_rejected() {
        let mut io = IoSpace::new();
        assert!(io.allocate("x", 0, IoSharing::Shared).is_err());
    }

    #[test]
    fn regions_of_filters_by_device() {
        let mut io = IoSpace::new();
        io.allocate("nic", 64, IoSharing::Exclusive).unwrap();
        io.allocate("nic", 4096, IoSharing::Shared).unwrap();
        io.allocate("timer", 16, IoSharing::Exclusive).unwrap();
        assert_eq!(io.regions_of("nic").len(), 2);
        assert_eq!(io.regions_of("timer").len(), 1);
        assert_eq!(io.regions_of("ghost").len(), 0);
    }
}
