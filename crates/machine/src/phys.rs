//! Physical memory: frames and a frame allocator.

use crate::{mmu::PAGE_SIZE, MachineError, MachineResult};

/// A physical page-frame number.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FrameId(pub u32);

/// Physical memory: a flat array of page frames plus a free list.
pub struct PhysMem {
    mem: Vec<u8>,
    /// Allocation state per frame.
    used: Vec<bool>,
    /// Number of allocated frames.
    allocated: usize,
    /// Low-water mark for the next-fit allocator.
    next: usize,
}

impl PhysMem {
    /// Creates physical memory with `frames` page frames.
    pub fn new(frames: usize) -> Self {
        PhysMem {
            mem: vec![0u8; frames * PAGE_SIZE],
            used: vec![false; frames],
            allocated: 0,
            next: 0,
        }
    }

    /// Total number of frames.
    pub fn total_frames(&self) -> usize {
        self.used.len()
    }

    /// Number of currently allocated frames.
    pub fn allocated_frames(&self) -> usize {
        self.allocated
    }

    /// Allocates one zeroed frame.
    pub fn alloc_frame(&mut self) -> MachineResult<FrameId> {
        let n = self.used.len();
        for probe in 0..n {
            let idx = (self.next + probe) % n;
            if !self.used[idx] {
                self.used[idx] = true;
                self.allocated += 1;
                self.next = (idx + 1) % n;
                let off = idx * PAGE_SIZE;
                self.mem[off..off + PAGE_SIZE].fill(0);
                return Ok(FrameId(idx as u32));
            }
        }
        Err(MachineError::OutOfFrames)
    }

    /// Frees a frame.
    ///
    /// # Panics
    ///
    /// Panics on double free or an out-of-range frame — both are kernel
    /// bugs, not recoverable conditions.
    pub fn free_frame(&mut self, frame: FrameId) {
        let idx = frame.0 as usize;
        assert!(idx < self.used.len(), "free of out-of-range frame {idx}");
        assert!(self.used[idx], "double free of frame {idx}");
        self.used[idx] = false;
        self.allocated -= 1;
    }

    /// True if `frame` is currently allocated.
    pub fn is_allocated(&self, frame: FrameId) -> bool {
        self.used.get(frame.0 as usize).copied().unwrap_or(false)
    }

    /// Reads `buf.len()` bytes starting at physical address `paddr`.
    pub fn read(&self, paddr: u64, buf: &mut [u8]) -> MachineResult<()> {
        let start = paddr as usize;
        let end = start
            .checked_add(buf.len())
            .ok_or(MachineError::BadPhysAddr(paddr))?;
        let src = self
            .mem
            .get(start..end)
            .ok_or(MachineError::BadPhysAddr(paddr))?;
        buf.copy_from_slice(src);
        Ok(())
    }

    /// Writes `buf` starting at physical address `paddr`.
    pub fn write(&mut self, paddr: u64, buf: &[u8]) -> MachineResult<()> {
        let start = paddr as usize;
        let end = start
            .checked_add(buf.len())
            .ok_or(MachineError::BadPhysAddr(paddr))?;
        let dst = self
            .mem
            .get_mut(start..end)
            .ok_or(MachineError::BadPhysAddr(paddr))?;
        dst.copy_from_slice(buf);
        Ok(())
    }

    /// Physical byte address of the start of `frame`.
    pub fn frame_base(&self, frame: FrameId) -> u64 {
        u64::from(frame.0) * PAGE_SIZE as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_cycle() {
        let mut pm = PhysMem::new(4);
        let a = pm.alloc_frame().unwrap();
        let b = pm.alloc_frame().unwrap();
        assert_ne!(a, b);
        assert_eq!(pm.allocated_frames(), 2);
        pm.free_frame(a);
        assert_eq!(pm.allocated_frames(), 1);
        assert!(!pm.is_allocated(a));
        assert!(pm.is_allocated(b));
    }

    #[test]
    fn exhaustion_is_reported() {
        let mut pm = PhysMem::new(2);
        pm.alloc_frame().unwrap();
        pm.alloc_frame().unwrap();
        assert_eq!(pm.alloc_frame(), Err(MachineError::OutOfFrames));
    }

    #[test]
    fn freed_frames_are_reusable() {
        let mut pm = PhysMem::new(1);
        let a = pm.alloc_frame().unwrap();
        pm.free_frame(a);
        let b = pm.alloc_frame().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn frames_are_zeroed_on_alloc() {
        let mut pm = PhysMem::new(1);
        let a = pm.alloc_frame().unwrap();
        pm.write(pm.frame_base(a), &[0xAB; 16]).unwrap();
        pm.free_frame(a);
        let b = pm.alloc_frame().unwrap();
        let mut buf = [0xFFu8; 16];
        pm.read(pm.frame_base(b), &mut buf).unwrap();
        assert_eq!(buf, [0u8; 16]);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut pm = PhysMem::new(1);
        let a = pm.alloc_frame().unwrap();
        pm.free_frame(a);
        pm.free_frame(a);
    }

    #[test]
    fn read_write_roundtrip() {
        let mut pm = PhysMem::new(2);
        let f = pm.alloc_frame().unwrap();
        let base = pm.frame_base(f);
        pm.write(base + 100, b"hello").unwrap();
        let mut buf = [0u8; 5];
        pm.read(base + 100, &mut buf).unwrap();
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn out_of_range_access_fails() {
        let mut pm = PhysMem::new(1);
        let mut buf = [0u8; 8];
        assert!(pm.read(PAGE_SIZE as u64 - 4, &mut buf).is_err());
        assert!(pm.write(u64::MAX - 2, &[1, 2, 3]).is_err());
        assert!(pm.read(PAGE_SIZE as u64, &mut []).is_ok());
    }
}
