//! The assembled machine.
//!
//! [`Machine`] ties together physical memory, the MMU, the interrupt
//! controller, the I/O space and the devices, and owns the cycle counter.
//! It is the *only* mutable root the nucleus needs.

use std::collections::BTreeMap;

use crate::{
    cost::{CostModel, CycleCounter, Cycles},
    dev::{Console, Device, Disk, Nic, Timer},
    io::IoSpace,
    irq::IrqController,
    mmu::{Access, ContextId, Mmu, PAGE_SIZE},
    phys::PhysMem,
    MachineError, MachineResult,
};

/// Default number of physical frames (16 MiB of simulated RAM).
pub const DEFAULT_FRAMES: usize = 4096;

/// Default TLB capacity.
pub const DEFAULT_TLB_ENTRIES: usize = 64;

/// Default disk size in sectors (4 MiB).
pub const DEFAULT_DISK_SECTORS: usize = 8192;

/// The simulated machine.
pub struct Machine {
    /// The cost model in force.
    pub cost: CostModel,
    counter: CycleCounter,
    /// Physical memory.
    pub phys: PhysMem,
    /// The MMU (contexts, page tables, TLB).
    pub mmu: Mmu,
    /// The interrupt controller.
    pub irq: IrqController,
    /// The I/O-space allocator.
    pub io: IoSpace,
    devices: BTreeMap<String, Box<dyn Device>>,
    /// Total cost-model charge events so far (crash-injection harnesses
    /// enumerate these to place a fault at every step of an op sequence).
    charge_events: u64,
    /// Remaining charge events before the injected power failure fires.
    crash_in: Option<u64>,
    /// Set once the injected power failure has fired; cleared by
    /// [`Machine::reboot`].
    crashed: bool,
}

impl Machine {
    /// Builds a machine with default sizing, the default cost model, and
    /// the standard devices (timer, NIC, console).
    pub fn new() -> Self {
        Self::with_config(CostModel::default(), DEFAULT_FRAMES, DEFAULT_TLB_ENTRIES)
    }

    /// Builds a machine with explicit cost model and sizing.
    pub fn with_config(cost: CostModel, frames: usize, tlb_entries: usize) -> Self {
        let mut m = Machine {
            cost,
            counter: CycleCounter::new(),
            phys: PhysMem::new(frames),
            mmu: Mmu::new(tlb_entries),
            irq: IrqController::new(),
            io: IoSpace::new(),
            devices: BTreeMap::new(),
            charge_events: 0,
            crash_in: None,
            crashed: false,
        };
        m.register_device(Box::new(Timer::new()));
        m.register_device(Box::new(Nic::new()));
        m.register_device(Box::new(Console::new()));
        m.register_device(Box::new(Disk::new(DEFAULT_DISK_SECTORS)));
        m
    }

    /// Current simulated time in cycles.
    pub fn now(&self) -> Cycles {
        self.counter.now()
    }

    /// Charges `cycles` of work.
    ///
    /// Every charge is one *cost-model step*: the granularity at which an
    /// armed crash ([`Machine::arm_crash_after`]) can fire. Drivers that
    /// perform multi-part operations (e.g. a batched disk write) charge
    /// each part separately and consult [`Machine::crashed`] between
    /// parts, so an injected power failure lands *inside* the operation
    /// with only a prefix of its effects applied.
    pub fn charge(&mut self, cycles: Cycles) {
        self.charge_events += 1;
        if let Some(n) = self.crash_in {
            if n <= 1 {
                self.crash_in = None;
                self.crashed = true;
            } else {
                self.crash_in = Some(n - 1);
            }
        }
        self.counter.charge(cycles);
    }

    /// Total cost-model charge events so far. Crash-injection harnesses
    /// run an op sequence once to count its steps, then re-run it with
    /// [`Machine::arm_crash_after`] at every step in `1..=charge_events`.
    pub fn charge_events(&self) -> u64 {
        self.charge_events
    }

    /// Arms a simulated power failure that fires on the `events`-th
    /// subsequent charge (1 = the very next charge event). Any previously
    /// armed crash is replaced.
    pub fn arm_crash_after(&mut self, events: u64) {
        assert!(events > 0, "crash must be armed at a future charge event");
        self.crash_in = Some(events);
        self.crashed = false;
    }

    /// Disarms a pending injected crash without clearing a crash that
    /// already fired.
    pub fn disarm_crash(&mut self) {
        self.crash_in = None;
    }

    /// Whether the injected power failure has fired. Once set, drivers
    /// refuse all further device work until [`Machine::reboot`].
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// Fails with [`MachineError::PowerFailure`] when the machine has
    /// crashed — the guard every driver entry point runs first.
    pub fn check_power(&self) -> MachineResult<()> {
        if self.crashed {
            Err(MachineError::PowerFailure)
        } else {
            Ok(())
        }
    }

    /// Clears a fired (or armed) crash, simulating a power cycle. Device
    /// state persists — that is the point: the disk keeps whatever
    /// sectors reached it, and remounting a journalled store over the
    /// rebooted machine must recover exactly the committed prefix.
    pub fn reboot(&mut self) {
        self.crashed = false;
        self.crash_in = None;
    }

    /// Advances time by `cycles` and lets every device observe the new
    /// time (raising interrupts as needed).
    pub fn tick(&mut self, cycles: Cycles) {
        self.counter.charge(cycles);
        let now = self.counter.now();
        for dev in self.devices.values_mut() {
            dev.tick(now, &mut self.irq);
        }
    }

    /// Registers an additional device.
    pub fn register_device(&mut self, dev: Box<dyn Device>) {
        self.devices.insert(dev.name().to_owned(), dev);
    }

    /// Host-side typed access to a device (e.g. to inject NIC frames).
    pub fn device_mut<T: 'static>(&mut self, name: &str) -> Option<&mut T> {
        self.devices.get_mut(name)?.as_any_mut().downcast_mut::<T>()
    }

    /// Reads a device register, charging the I/O access cost.
    pub fn io_read(&mut self, device: &str, offset: u64) -> MachineResult<u32> {
        self.charge(self.cost.io_access);
        self.devices
            .get_mut(device)
            .ok_or_else(|| MachineError::Device(format!("no device `{device}`")))?
            .read_reg(offset)
    }

    /// Writes a device register, charging the I/O access cost.
    pub fn io_write(&mut self, device: &str, offset: u64, value: u32) -> MachineResult<()> {
        self.charge(self.cost.io_access);
        self.devices
            .get_mut(device)
            .ok_or_else(|| MachineError::Device(format!("no device `{device}`")))?
            .write_reg(offset, value)
    }

    /// Translates one access, charging TLB hit/miss costs.
    pub fn translate(&mut self, ctx: ContextId, vaddr: u64, access: Access) -> MachineResult<u64> {
        match self.mmu.translate(ctx, vaddr, access) {
            Ok(t) => {
                let cost = if t.tlb_hit {
                    self.cost.tlb_hit
                } else {
                    self.cost.tlb_miss
                };
                self.charge(cost);
                Ok(t.paddr)
            }
            Err(fault) => {
                // The hardware walked the page table before faulting.
                self.charge(self.cost.tlb_miss);
                Err(MachineError::Fault(fault))
            }
        }
    }

    /// Reads virtual memory in `ctx`, handling page crossings. Charges
    /// translation and copy costs.
    pub fn read_virt(&mut self, ctx: ContextId, vaddr: u64, buf: &mut [u8]) -> MachineResult<()> {
        self.charge(self.cost.copy_cost(buf.len()));
        let mut done = 0usize;
        while done < buf.len() {
            let va = vaddr + done as u64;
            let paddr = self.translate(ctx, va, Access::Read)?;
            let in_page = PAGE_SIZE - (va as usize % PAGE_SIZE);
            let take = in_page.min(buf.len() - done);
            self.phys.read(paddr, &mut buf[done..done + take])?;
            done += take;
        }
        Ok(())
    }

    /// Writes virtual memory in `ctx`, handling page crossings. Charges
    /// translation and copy costs.
    pub fn write_virt(&mut self, ctx: ContextId, vaddr: u64, buf: &[u8]) -> MachineResult<()> {
        self.charge(self.cost.copy_cost(buf.len()));
        let mut done = 0usize;
        while done < buf.len() {
            let va = vaddr + done as u64;
            let paddr = self.translate(ctx, va, Access::Write)?;
            let in_page = PAGE_SIZE - (va as usize % PAGE_SIZE);
            let take = in_page.min(buf.len() - done);
            self.phys.write(paddr, &buf[done..done + take])?;
            done += take;
        }
        Ok(())
    }

    /// Performs a context switch, charging its cost only when the context
    /// actually changes.
    pub fn switch_context(&mut self, ctx: ContextId) -> MachineResult<()> {
        if self.mmu.switch_context(ctx)? {
            self.charge(self.cost.context_switch);
        }
        Ok(())
    }
}

impl Default for Machine {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        dev::nic::Nic,
        mmu::{Perms, KERNEL_CONTEXT},
    };

    #[test]
    fn time_advances_with_charges() {
        let mut m = Machine::new();
        assert_eq!(m.now(), 0);
        m.charge(100);
        m.tick(50);
        assert_eq!(m.now(), 150);
    }

    #[test]
    fn virtual_rw_roundtrip_with_page_crossing() {
        let mut m = Machine::new();
        let ctx = m.mmu.create_context();
        let f1 = m.phys.alloc_frame().unwrap();
        let f2 = m.phys.alloc_frame().unwrap();
        m.mmu.map(ctx, 0x10000, f1, Perms::RW).unwrap();
        m.mmu.map(ctx, 0x11000, f2, Perms::RW).unwrap();
        // Write straddling the page boundary.
        let data: Vec<u8> = (0..64).collect();
        m.write_virt(ctx, 0x10FE0, &data).unwrap();
        let mut out = vec![0u8; 64];
        m.read_virt(ctx, 0x10FE0, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn unmapped_write_faults_and_charges_nothing_extra() {
        let mut m = Machine::new();
        let ctx = m.mmu.create_context();
        let err = m.write_virt(ctx, 0x5000, &[1, 2, 3]).unwrap_err();
        assert!(matches!(err, MachineError::Fault(_)));
    }

    #[test]
    fn translation_charges_miss_then_hit() {
        let mut m = Machine::new();
        let f = m.phys.alloc_frame().unwrap();
        m.mmu.map(KERNEL_CONTEXT, 0x4000, f, Perms::RW).unwrap();
        let t0 = m.now();
        m.translate(KERNEL_CONTEXT, 0x4000, Access::Read).unwrap();
        let miss_cost = m.now() - t0;
        assert_eq!(miss_cost, m.cost.tlb_miss);
        let t1 = m.now();
        m.translate(KERNEL_CONTEXT, 0x4000, Access::Read).unwrap();
        assert_eq!(m.now() - t1, m.cost.tlb_hit);
    }

    #[test]
    fn context_switch_charges_only_on_change() {
        let mut m = Machine::new();
        let ctx = m.mmu.create_context();
        let t0 = m.now();
        m.switch_context(ctx).unwrap();
        assert_eq!(m.now() - t0, m.cost.context_switch);
        let t1 = m.now();
        m.switch_context(ctx).unwrap();
        assert_eq!(m.now() - t1, 0);
    }

    #[test]
    fn devices_reachable_by_io_and_host_side() {
        let mut m = Machine::new();
        // Host side: inject a frame.
        m.device_mut::<Nic>("nic").unwrap().inject_rx(vec![9, 9]);
        // Device tick raises the IRQ.
        m.tick(1);
        assert!(m.irq.has_pending());
        // Driver side: registers via I/O.
        assert_eq!(
            m.io_read("nic", crate::dev::nic::regs::RX_AVAIL).unwrap(),
            1
        );
        assert!(m.io_read("ghost", 0).is_err());
    }

    #[test]
    fn io_access_charges_cycles() {
        let mut m = Machine::new();
        let t0 = m.now();
        m.io_read("nic", crate::dev::nic::regs::RX_AVAIL).unwrap();
        assert_eq!(m.now() - t0, m.cost.io_access);
    }

    #[test]
    fn armed_crash_fires_on_the_exact_charge_event() {
        let mut m = Machine::new();
        m.arm_crash_after(3);
        m.charge(1);
        m.charge(1);
        assert!(!m.crashed());
        assert!(m.check_power().is_ok());
        m.charge(1);
        assert!(m.crashed());
        assert_eq!(m.check_power().unwrap_err(), MachineError::PowerFailure);
        assert_eq!(m.charge_events(), 3);
        // Reboot clears the failure; device state (the disk) persists.
        m.device_mut::<crate::dev::Disk>("disk")
            .unwrap()
            .write_sector(0, &[7u8; crate::dev::disk::SECTOR_SIZE])
            .unwrap();
        m.reboot();
        assert!(m.check_power().is_ok());
        assert_eq!(
            m.device_mut::<crate::dev::Disk>("disk")
                .unwrap()
                .read_sector(0)
                .unwrap()[0],
            7
        );
    }

    #[test]
    fn io_and_translation_charges_count_as_crash_steps() {
        let mut m = Machine::new();
        m.arm_crash_after(1);
        m.io_read("nic", crate::dev::nic::regs::RX_AVAIL).unwrap();
        assert!(m.crashed());
        let mut m = Machine::new();
        let f = m.phys.alloc_frame().unwrap();
        m.mmu.map(KERNEL_CONTEXT, 0x4000, f, Perms::RW).unwrap();
        m.arm_crash_after(1);
        m.translate(KERNEL_CONTEXT, 0x4000, Access::Read).unwrap();
        assert!(m.crashed());
    }

    #[test]
    fn timer_fires_through_machine_tick() {
        let mut m = Machine::new();
        m.io_write("timer", crate::dev::timer::regs::PERIOD, 100)
            .unwrap();
        m.io_write("timer", crate::dev::timer::regs::CTRL, 1)
            .unwrap();
        m.tick(10); // Arms.
        m.tick(300);
        assert!(m.irq.has_pending());
    }
}
