//! Processor traps: the events the nucleus's event service dispatches.
//!
//! "All processor events (traps and interrupts) are handled by this
//! service" (paper, section 3). The machine model produces [`Trap`]s; the
//! nucleus routes them to registered call-backs.

use crate::mmu::Fault;

/// The kind of processor event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TrapKind {
    /// A memory-management fault.
    PageFault,
    /// A system call trap with its number.
    Syscall,
    /// A device interrupt on an IRQ line.
    Interrupt,
    /// An illegal or privileged instruction in user mode.
    IllegalInstruction,
    /// Integer division by zero.
    DivideByZero,
    /// An explicit breakpoint / debug trap.
    Breakpoint,
    /// Misaligned memory access.
    Misaligned,
}

impl TrapKind {
    /// The hardware vector number for this trap kind (interrupt lines are
    /// offset by [`IRQ_VECTOR_BASE`]).
    pub fn vector(self) -> u32 {
        match self {
            TrapKind::PageFault => 1,
            TrapKind::Syscall => 2,
            TrapKind::IllegalInstruction => 3,
            TrapKind::DivideByZero => 4,
            TrapKind::Breakpoint => 5,
            TrapKind::Misaligned => 6,
            TrapKind::Interrupt => IRQ_VECTOR_BASE,
        }
    }
}

/// First vector used by device interrupts: vector = base + IRQ line.
pub const IRQ_VECTOR_BASE: u32 = 16;

/// Total number of event vectors the event service manages.
pub const NUM_VECTORS: u32 = IRQ_VECTOR_BASE + crate::irq::NUM_IRQ_LINES;

/// A processor event instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Trap {
    /// What happened.
    pub kind: TrapKind,
    /// The vector to dispatch through.
    pub vector: u32,
    /// For page faults, the fault details.
    pub fault: Option<Fault>,
    /// For syscalls, the syscall number; for interrupts, the IRQ line.
    pub code: u32,
}

impl Trap {
    /// Builds a page-fault trap.
    pub fn page_fault(fault: Fault) -> Self {
        Trap {
            kind: TrapKind::PageFault,
            vector: TrapKind::PageFault.vector(),
            fault: Some(fault),
            code: 0,
        }
    }

    /// Builds a syscall trap.
    pub fn syscall(number: u32) -> Self {
        Trap {
            kind: TrapKind::Syscall,
            vector: TrapKind::Syscall.vector(),
            fault: None,
            code: number,
        }
    }

    /// Builds an interrupt trap for an IRQ line.
    pub fn interrupt(line: u32) -> Self {
        Trap {
            kind: TrapKind::Interrupt,
            vector: IRQ_VECTOR_BASE + line,
            fault: None,
            code: line,
        }
    }

    /// Builds a synchronous exception trap with no extra data.
    pub fn exception(kind: TrapKind) -> Self {
        debug_assert!(!matches!(
            kind,
            TrapKind::PageFault | TrapKind::Syscall | TrapKind::Interrupt
        ));
        Trap {
            kind,
            vector: kind.vector(),
            fault: None,
            code: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mmu::{Access, ContextId, FaultKind};

    #[test]
    fn vectors_are_unique() {
        let kinds = [
            TrapKind::PageFault,
            TrapKind::Syscall,
            TrapKind::IllegalInstruction,
            TrapKind::DivideByZero,
            TrapKind::Breakpoint,
            TrapKind::Misaligned,
        ];
        let mut seen = std::collections::HashSet::new();
        for k in kinds {
            assert!(seen.insert(k.vector()), "duplicate vector for {k:?}");
            assert!(k.vector() < IRQ_VECTOR_BASE);
        }
    }

    #[test]
    fn interrupt_vectors_offset_by_line() {
        let t = Trap::interrupt(3);
        assert_eq!(t.vector, IRQ_VECTOR_BASE + 3);
        assert_eq!(t.code, 3);
        assert_eq!(t.kind, TrapKind::Interrupt);
    }

    #[test]
    fn page_fault_carries_fault_details() {
        let fault = Fault {
            ctx: ContextId(4),
            vaddr: 0xdead_b000,
            access: Access::Write,
            kind: FaultKind::NotMapped,
        };
        let t = Trap::page_fault(fault);
        assert_eq!(t.fault, Some(fault));
        assert_eq!(t.vector, 1);
    }

    #[test]
    fn syscall_carries_number() {
        assert_eq!(Trap::syscall(42).code, 42);
    }
}
