//! The cycle cost model.
//!
//! Every mechanism in the reproduction charges simulated cycles through a
//! [`CostModel`]. Absolute values are loosely calibrated to early-90s SPARC
//! folklore (traps cost on the order of a hundred cycles, a cross-context
//! switch several hundred once TLB/cache effects are included, a procedure
//! call a handful). The *ratios* are what matter: the paper's arguments are
//! about relative costs — method call vs. procedure call, cross-domain trap
//! vs. local call, run-time checks vs. a one-off load-time check.

/// Simulated processor cycles.
pub type Cycles = u64;

/// Cost (in cycles) of each primitive hardware or software event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// One ordinary ALU instruction.
    pub insn: Cycles,
    /// A procedure call + return (register-window friendly).
    pub call: Cycles,
    /// An indirect call through a method table (the object-model dispatch).
    pub indirect_call: Cycles,
    /// Entering a trap handler (mode switch, save window).
    pub trap_enter: Cycles,
    /// Returning from a trap handler.
    pub trap_exit: Cycles,
    /// Switching the MMU to another context (context register write plus
    /// pipeline effects; TLB entries are tagged so no full flush).
    pub context_switch: Cycles,
    /// A TLB hit (free lookup, charged as part of the access).
    pub tlb_hit: Cycles,
    /// A TLB miss requiring a page-table walk.
    pub tlb_miss: Cycles,
    /// Dispatching one interrupt through the controller.
    pub irq_dispatch: Cycles,
    /// Reading or writing one device register.
    pub io_access: Cycles,
    /// Mapping one page into another address space (the alternative to
    /// copying for large arguments: page-table write + TLB shootdown).
    pub page_map: Cycles,
    /// Copying one byte between address spaces (marshalling).
    pub copy_per_byte_num: Cycles,
    /// Bytes copied per `copy_per_byte_num` cycles (denominator).
    pub copy_per_byte_den: Cycles,
    /// Creating a full thread (stack allocation + TCB + queue insertion).
    pub thread_create: Cycles,
    /// Creating a proto-thread (borrowed stack, no TCB yet).
    pub proto_thread_create: Cycles,
    /// Promoting a proto-thread to a full thread.
    pub proto_thread_promote: Cycles,
    /// One scheduler decision (pick next runnable).
    pub schedule: Cycles,
    /// One abstract-interpretation evaluation during load-time bytecode
    /// verification (the static-analysis fixpoint charges per
    /// instruction-state visit).
    pub analysis_eval: Cycles,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            insn: 1,
            call: 5,
            indirect_call: 8,
            trap_enter: 120,
            trap_exit: 80,
            context_switch: 350,
            tlb_hit: 0,
            tlb_miss: 30,
            irq_dispatch: 60,
            io_access: 20,
            page_map: 180,
            copy_per_byte_num: 1,
            copy_per_byte_den: 4,
            thread_create: 900,
            proto_thread_create: 40,
            proto_thread_promote: 500,
            schedule: 50,
            analysis_eval: 4,
        }
    }
}

impl CostModel {
    /// Cost of copying `bytes` bytes between address spaces.
    pub fn copy_cost(&self, bytes: usize) -> Cycles {
        (bytes as Cycles * self.copy_per_byte_num).div_ceil(self.copy_per_byte_den.max(1))
    }

    /// A model where everything is free — useful for tests that assert on
    /// logical behaviour only.
    pub fn free() -> Self {
        CostModel {
            insn: 0,
            call: 0,
            indirect_call: 0,
            trap_enter: 0,
            trap_exit: 0,
            context_switch: 0,
            tlb_hit: 0,
            tlb_miss: 0,
            irq_dispatch: 0,
            io_access: 0,
            page_map: 0,
            copy_per_byte_num: 0,
            copy_per_byte_den: 1,
            thread_create: 0,
            proto_thread_create: 0,
            proto_thread_promote: 0,
            schedule: 0,
            analysis_eval: 0,
        }
    }
}

/// A monotonically increasing cycle counter.
#[derive(Clone, Debug, Default)]
pub struct CycleCounter {
    now: Cycles,
}

impl CycleCounter {
    /// Creates a counter at cycle 0.
    pub fn new() -> Self {
        CycleCounter { now: 0 }
    }

    /// Current simulated time.
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// Advances time by `cycles`.
    pub fn charge(&mut self, cycles: Cycles) {
        self.now = self.now.saturating_add(cycles);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_cost_rounds_up() {
        let m = CostModel::default(); // 1 cycle per 4 bytes.
        assert_eq!(m.copy_cost(0), 0);
        assert_eq!(m.copy_cost(1), 1);
        assert_eq!(m.copy_cost(4), 1);
        assert_eq!(m.copy_cost(5), 2);
        assert_eq!(m.copy_cost(4096), 1024);
    }

    #[test]
    fn free_model_charges_nothing() {
        let m = CostModel::free();
        assert_eq!(m.copy_cost(100_000), 0);
        assert_eq!(m.trap_enter + m.context_switch + m.thread_create, 0);
    }

    #[test]
    fn counter_is_monotonic_and_saturating() {
        let mut c = CycleCounter::new();
        c.charge(10);
        c.charge(5);
        assert_eq!(c.now(), 15);
        c.charge(Cycles::MAX);
        assert_eq!(c.now(), Cycles::MAX);
    }

    #[test]
    fn default_model_orders_costs_plausibly() {
        // The relative order the paper's arguments rely on.
        let m = CostModel::default();
        assert!(m.insn < m.call);
        assert!(m.call <= m.indirect_call);
        assert!(m.indirect_call < m.trap_enter);
        assert!(m.trap_enter + m.trap_exit < m.trap_enter + m.trap_exit + m.context_switch);
        assert!(m.proto_thread_create < m.thread_create);
        assert!(m.proto_thread_create + m.proto_thread_promote <= m.thread_create);
        // One load-time evaluation costs more than an insn but far less
        // than the trap a run-time check failure would take.
        assert!(m.insn <= m.analysis_eval && m.analysis_eval < m.trap_enter);
    }
}
