//! Shared helpers for the Criterion benchmarks.
//!
//! Each bench target regenerates one experiment from DESIGN.md §3
//! (`benches/b1_…` through `b9_…`). Criterion measures host wall-clock of
//! the real code paths; the deterministic simulated-cycle tables come from
//! `cargo run --release --example experiments` in the root crate.

use paramecium::prelude::*;

/// Builds a counter object used by the invocation benches.
pub fn counter_obj() -> ObjRef {
    ObjectBuilder::new("counter")
        .state(0i64)
        .interface("ctr", |i| {
            i.method("incr", &[TypeTag::Int], TypeTag::Int, |this, args| {
                let by = args[0].as_int()?;
                this.with_state(|n: &mut i64| {
                    *n += by;
                    Ok(Value::Int(*n))
                })
            })
        })
        .build()
}

/// Builds an echo object (bytes in → bytes out) for marshalling benches.
pub fn echo_obj() -> ObjRef {
    ObjectBuilder::new("echo")
        .interface("echo", |i| {
            i.method("echo", &[TypeTag::Bytes], TypeTag::Bytes, |_, args| {
                Ok(args[0].clone())
            })
        })
        .build()
}

/// A booted world with an echo service registered at `/svc/echo` and one
/// user domain; returns the world and the user domain id.
pub fn world_with_echo() -> (World, DomainId) {
    let world = World::boot();
    world
        .nucleus
        .register(KERNEL_DOMAIN, "/svc/echo", echo_obj())
        .unwrap();
    let app = world
        .nucleus
        .create_domain("bench-app", KERNEL_DOMAIN, [])
        .unwrap();
    let id = app.id;
    (world, id)
}
