//! E3 — cross-domain invocation via proxies vs same-domain calls, and the
//! marshalling cost as a function of argument size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use paramecium::prelude::*;
use paramecium_bench::world_with_echo;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_crossdomain");

    let (world, app) = world_with_echo();
    let n = &world.nucleus;
    let same = n.bind(KERNEL_DOMAIN, "/svc/echo").unwrap();
    let cross = n.bind(app, "/svc/echo").unwrap();

    let small = [Value::Bytes(bytes::Bytes::from_static(b"x"))];
    g.bench_function("same_domain_direct", |b| {
        b.iter(|| {
            same.invoke("echo", "echo", std::hint::black_box(&small))
                .unwrap()
        })
    });
    g.bench_function("cross_domain_proxy", |b| {
        b.iter(|| {
            cross
                .invoke("echo", "echo", std::hint::black_box(&small))
                .unwrap()
        })
    });

    for size in [0usize, 64, 1024, 4096] {
        let args = [Value::Bytes(bytes::Bytes::from(vec![0u8; size]))];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("proxy_arg_bytes", size), &size, |b, _| {
            b.iter(|| {
                cross
                    .invoke("echo", "echo", std::hint::black_box(&args))
                    .unwrap()
            })
        });
    }

    // Bind cost: fabricating a proxy per bind.
    g.bench_function("bind_cross_domain", |b| {
        b.iter(|| n.bind(app, "/svc/echo").unwrap())
    });
    g.bench_function("bind_same_domain", |b| {
        b.iter(|| n.bind(KERNEL_DOMAIN, "/svc/echo").unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
