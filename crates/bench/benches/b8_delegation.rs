//! E8 — delegation-chain validation cost vs depth, and the escape-hatch
//! policy walk.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paramecium::cert::{
    validate_chain, AdminCertifier, Authority, CertificationPolicy, CertifyMethod,
    CompilerCertifier, ProverCertifier,
};
use paramecium::prelude::*;
use paramecium::sfi::workloads;
use rand::{rngs::StdRng, SeedableRng};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_delegation");
    g.sample_size(20); // RSA verifies are slow; keep runs bounded.
    let mut rng = StdRng::seed_from_u64(77);
    let root = Authority::new("root", &mut rng, 512);

    for depth in [0usize, 1, 2, 4, 8] {
        let mut chain = Vec::new();
        let mut prev = root.clone();
        for i in 0..depth {
            let next = Authority::new(format!("l{i}"), &mut rng, 512);
            chain.push(
                prev.delegate(format!("l{i}"), next.public(), vec![Right::RunKernel])
                    .unwrap(),
            );
            prev = next;
        }
        let cert = prev
            .certify(
                "c",
                b"image",
                vec![Right::RunKernel],
                CertifyMethod::Administrator,
            )
            .unwrap();
        g.bench_with_input(BenchmarkId::new("validate_chain", depth), &depth, |b, _| {
            b.iter(|| validate_chain(root.public(), &chain, &cert).unwrap())
        });
    }

    // Escape-hatch walks.
    let honest = workloads::checksum_loop(64, 4).encode();
    let policy = CertificationPolicy::standard(
        &root,
        CompilerCertifier::new(Authority::new("compiler", &mut rng, 512)),
        ProverCertifier::new(Authority::new("prover", &mut rng, 512), 2_000),
        AdminCertifier::new(Authority::new("admin", &mut rng, 512), &[&honest]),
        vec![Right::RunKernel],
    )
    .unwrap();
    let verifiable = workloads::alu_loop(8).encode();
    g.bench_function("policy_first_signs", |b| {
        b.iter(|| {
            policy
                .certify("v", &verifiable, &[Right::RunKernel])
                .unwrap()
        })
    });
    g.bench_function("policy_escape_hatch_to_admin", |b| {
        b.iter(|| policy.certify("h", &honest, &[Right::RunKernel]).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
