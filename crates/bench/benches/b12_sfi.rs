//! E12 — what static proof buys at run time: the fully-checked SFI
//! interpreter vs the proof-elided engine on the same verified programs.
//!
//! Each benign workload runs to `Halt` under both engines with identical
//! data and fuel; the interesting figure is the per-workload ratio
//! `checked/<name>` : `elided/<name>`. The `analyze/<name>` entries price
//! the one-off load-time analysis that pays for the elision — the
//! paper's core trade: a bounded load-time check against a per-step
//! run-time tax.
//!
//! Benchmark ids are stable so
//! `--baseline bench-records/BENCH_b12_sfi.json` prints before/after
//! deltas directly, and `--gate 15` turns them into a CI regression gate.

use criterion::{criterion_group, criterion_main, Criterion};
use paramecium::sfi::analysis;
use paramecium::sfi::bytecode::Reg;
use paramecium::sfi::interp::{ElidedInterp, ElidedProgram, Interp};
use paramecium::sfi::workloads;

const FUEL: u64 = 1 << 24;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e12_sfi");
    let suite = workloads::benign_suite();

    for (name, program) in &suite {
        let analysis = analysis::analyze(program).expect("benign workload analyzes");
        analysis.verdict(program).expect("benign workload verifies");
        let elided = ElidedProgram::compile(program, &analysis);
        let data: Vec<u8> = (0..program.data_len).map(|i| i as u8).collect();

        // Sanity: both engines agree before we time anything.
        let mut slow = Interp::new(program);
        slow.load_data(0, &data);
        slow.set_reg(Reg(1), 0);
        let mut fast = ElidedInterp::new(&elided);
        fast.load_data(0, &data);
        fast.set_reg(Reg(1), 0);
        assert_eq!(slow.run(FUEL), fast.run(FUEL), "{name}: engines diverge");

        g.bench_function(format!("checked/{name}"), |b| {
            b.iter(|| {
                let mut it = Interp::new(std::hint::black_box(program));
                it.load_data(0, &data);
                it.set_reg(Reg(1), 0);
                it.run(FUEL).unwrap()
            })
        });

        g.bench_function(format!("elided/{name}"), |b| {
            b.iter(|| {
                let mut it = ElidedInterp::new(std::hint::black_box(&elided));
                it.load_data(0, &data);
                it.set_reg(Reg(1), 0);
                it.run(FUEL).unwrap()
            })
        });

        // Load-time cost: full abstract interpretation to fixpoint plus
        // the elided-program compilation it enables.
        g.bench_function(format!("analyze/{name}"), |b| {
            b.iter(|| {
                let a = analysis::analyze(std::hint::black_box(program)).unwrap();
                ElidedProgram::compile(program, &a)
            })
        });
    }

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
