//! E15 — the chaos engine's idle cost (PR 10): proof that wiring a
//! [`ChaosController`] hook into a production pump loop is free until a
//! storm is actually due.
//!
//! Rows:
//! - `unarmed_poll`: `poll()` on a controller with no plan — the
//!   drained/unarmed fast path, a bounds check and a return, no locks.
//! - `armed_pending_poll`: `poll()` with a plan whose first event is
//!   far in the future — the hook takes the machine lock to read the
//!   clock, finds nothing due. This is the steady-state cost while a
//!   drill is armed but quiet.
//! - `echo_round_bare`: one 256-byte TCP echo round-trip over a perfect
//!   simlink, no chaos hook — the baseline pump loop.
//! - `echo_round_hooked`: the identical round with an unarmed `poll()`
//!   where a drill loop would put it. The delta against
//!   `echo_round_bare` is the real-world price of leaving chaos wired
//!   in, and it should be lost in the noise (±15% gate, see
//!   bench-records/README.md).

use criterion::{criterion_group, criterion_main, Criterion};
use paramecium::chaos::{ChaosController, ChaosPlan, Fault};
use paramecium::machine::Machine;
use paramecium::netstack::simlink::{make_simlink, LinkConfig};
use paramecium::netstack::tcp::make_tcp;
use paramecium::obj::{ObjRef, Value};
use parking_lot::Mutex;
use std::sync::Arc;

const PORT: i64 = 7;
const CHUNK: usize = 256;
const TICK: u64 = 25_000;

/// Two TCP endpoints on a perfect wire with one established connection.
struct Echo {
    machine: Arc<Mutex<Machine>>,
    a: ObjRef,
    b: ObjRef,
    id_a: i64,
    id_b: i64,
}

fn echo_pair(seed: u64) -> Echo {
    let machine = Arc::new(Mutex::new(Machine::new()));
    let (end_a, end_b) = make_simlink(machine.clone(), LinkConfig::perfect(seed));
    let a = make_tcp(machine.clone(), end_a, 0x0A00_0001, [2, 0, 0, 0, 0, 0x0A]);
    let b = make_tcp(machine.clone(), end_b, 0x0A00_0002, [2, 0, 0, 0, 0, 0x0B]);
    b.invoke("tcp", "listen", &[Value::Int(PORT)]).unwrap();
    let id_a = a
        .invoke(
            "tcp",
            "connect",
            &[Value::Int(0x0A00_0002), Value::Int(PORT)],
        )
        .unwrap()
        .as_int()
        .unwrap();
    let mut id_b = -1;
    for _ in 0..16 {
        for t in [&a, &b] {
            t.invoke("tcp", "pump", &[]).unwrap();
        }
        machine.lock().tick(TICK);
        id_b = b
            .invoke("tcp", "accept", &[Value::Int(PORT)])
            .unwrap()
            .as_int()
            .unwrap();
        if id_b >= 0 {
            break;
        }
    }
    assert!(id_b >= 0, "handshake must complete");
    Echo {
        machine,
        a,
        b,
        id_a,
        id_b,
    }
}

/// One echo round-trip: A sends a chunk, B echoes it, A drains it.
fn round(e: &Echo, payload: &Value, hook: Option<&mut ChaosController>) {
    if let Some(ctl) = hook {
        ctl.poll().unwrap();
    }
    e.a.invoke(
        "tcp",
        "send",
        &[Value::Int(e.id_a), std::hint::black_box(payload.clone())],
    )
    .unwrap();
    let mut got = 0;
    while got < CHUNK {
        e.a.invoke("tcp", "pump", &[]).unwrap();
        e.b.invoke("tcp", "pump", &[]).unwrap();
        let v =
            e.b.invoke("tcp", "recv", &[Value::Int(e.id_b), Value::Int(65_536)])
                .unwrap();
        let data = v.as_bytes().unwrap();
        if !data.is_empty() {
            e.b.invoke(
                "tcp",
                "send",
                &[Value::Int(e.id_b), Value::Bytes(data.clone())],
            )
            .unwrap();
        }
        e.b.invoke("tcp", "pump", &[]).unwrap();
        e.a.invoke("tcp", "pump", &[]).unwrap();
        let v =
            e.a.invoke("tcp", "recv", &[Value::Int(e.id_a), Value::Int(65_536)])
                .unwrap();
        got += v.as_bytes().unwrap().len();
        e.machine.lock().tick(TICK);
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e15_chaos");

    // The bare hook, nothing armed: this is what every pump round of a
    // production loop pays for keeping chaos wired in.
    let machine = Arc::new(Mutex::new(Machine::new()));
    let mut ctl = ChaosController::new(machine.clone());
    g.bench_function("unarmed_poll", |b| {
        b.iter(|| std::hint::black_box(ctl.poll().unwrap()))
    });

    // Armed but quiet: the first event sits far in the future, so every
    // poll reads the clock and returns.
    let mut ctl = ChaosController::new(machine.clone());
    ctl.arm(ChaosPlan::new().at(
        u64::MAX,
        Fault::PowerCrash {
            after_charges: u64::MAX,
        },
    ));
    g.bench_function("armed_pending_poll", |b| {
        b.iter(|| std::hint::black_box(ctl.poll().unwrap()))
    });

    // A real pump loop, without and with the hook. The two rows should
    // be indistinguishable inside the noise envelope.
    let payload = Value::Bytes(bytes::Bytes::from(vec![0x5A; CHUNK]));
    let e = echo_pair(1);
    g.bench_function("echo_round_bare", |b| b.iter(|| round(&e, &payload, None)));

    let e = echo_pair(2);
    let mut ctl = ChaosController::new(e.machine.clone());
    g.bench_function("echo_round_hooked", |b| {
        b.iter(|| round(&e, &payload, Some(&mut ctl)))
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
