//! E1 — method invocation overhead (paper §2).
//!
//! Direct Rust call vs interface dispatch vs delegation vs stacked
//! interposers.

use criterion::{criterion_group, criterion_main, Criterion};
use paramecium::prelude::*;
use paramecium_bench::counter_obj;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_invocation");
    let args = [Value::Int(1)];

    // Direct Rust baseline: same state mutation, no dispatch.
    let cell = std::cell::Cell::new(0i64);
    g.bench_function("direct_rust", |b| {
        b.iter(|| {
            cell.set(std::hint::black_box(cell.get() + 1));
        })
    });

    let obj = counter_obj();
    g.bench_function("interface_dispatch", |b| {
        b.iter(|| {
            obj.invoke("ctr", "incr", std::hint::black_box(&args))
                .unwrap()
        })
    });

    // The cache-free reference path, recorded so the JSON trajectory shows
    // what the inline cache buys on this machine.
    g.bench_function("interface_dispatch_uncached", |b| {
        b.iter(|| {
            obj.invoke_uncached("ctr", "incr", std::hint::black_box(&args))
                .unwrap()
        })
    });

    // The paper's "run time inline technique": a pre-bound method handle.
    let bound = obj
        .interface("ctr")
        .unwrap()
        .bind_method(&obj, "incr")
        .unwrap();
    g.bench_function("bound_method", |b| {
        b.iter(|| bound.call(std::hint::black_box(&args)).unwrap())
    });

    let delegated = {
        let base = counter_obj();
        let iface = paramecium::obj::InterfaceBuilder::new("ctr").finish();
        ObjectBuilder::new("child")
            .raw_interface(paramecium::obj::delegate_interface(iface, base))
            .build()
    };
    g.bench_function("delegated_1hop", |b| {
        b.iter(|| {
            delegated
                .invoke("ctr", "incr", std::hint::black_box(&args))
                .unwrap()
        })
    });

    for hops in [1usize, 2, 4, 8] {
        let mut wrapped = counter_obj();
        for _ in 0..hops {
            wrapped = InterposerBuilder::new(wrapped).build();
        }
        g.bench_function(format!("interposed_x{hops}"), |b| {
            b.iter(|| {
                wrapped
                    .invoke("ctr", "incr", std::hint::black_box(&args))
                    .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
