//! E9 — the crypto substrate: SHA-256 throughput and RSA operation costs
//! (these set the absolute scale of every certification cost above).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use paramecium::crypto::{rsa, sha256, Ubig};
use rand::{rngs::StdRng, SeedableRng};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e9_crypto");

    for size in [64usize, 4096, 1 << 20] {
        let data = vec![0xA5u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("sha256", size), &size, |b, _| {
            b.iter(|| sha256(std::hint::black_box(&data)))
        });
    }

    g.sample_size(10);
    for bits in [512u32, 1024] {
        let kp = rsa::generate(&mut StdRng::seed_from_u64(3), bits);
        let digest = sha256(b"component image");
        g.bench_with_input(BenchmarkId::new("rsa_sign", bits), &bits, |b, _| {
            b.iter(|| rsa::sign(&kp.private, std::hint::black_box(&digest)).unwrap())
        });
        let sig = rsa::sign(&kp.private, &digest).unwrap();
        g.bench_with_input(BenchmarkId::new("rsa_verify", bits), &bits, |b, _| {
            b.iter(|| rsa::verify(&kp.public, std::hint::black_box(&digest), &sig).unwrap())
        });
    }

    // Bignum primitives underpinning both.
    let a = Ubig::from_bytes_be(&[0xF7; 128]);
    let b_ = Ubig::from_bytes_be(&[0x3C; 128]);
    let m = Ubig::from_bytes_be(&[0xD1; 64]);
    g.bench_function("bignum_mul_1024x1024", |bch| {
        bch.iter(|| std::hint::black_box(&a).mul(std::hint::black_box(&b_)))
    });
    g.bench_function("bignum_divrem_2048_by_512", |bch| {
        let prod = a.mul(&b_);
        bch.iter(|| std::hint::black_box(&prod).divrem(std::hint::black_box(&m)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
