//! E2 — name-space operations (paper §2, §3): lookup scaling, inheritance
//! walks, override hits, registration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paramecium::core::directory::{NameSpace, NsEntry};
use paramecium::prelude::*;

fn populated(size: usize) -> std::sync::Arc<NameSpace> {
    let ns = NameSpace::root();
    for i in 0..size {
        ns.register(
            &format!("/svc/dir{}/obj{i}", i % 16),
            NsEntry {
                obj: ObjectBuilder::new("x").build(),
                home: KERNEL_DOMAIN,
            },
        )
        .unwrap();
    }
    ns
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2_namespace");
    for size in [10usize, 100, 1_000, 10_000] {
        let ns = populated(size);
        let probe = format!("/svc/dir{}/obj{}", (size / 2) % 16, size / 2);
        g.bench_with_input(BenchmarkId::new("lookup_local", size), &size, |b, _| {
            b.iter(|| ns.lookup(std::hint::black_box(&probe)).unwrap())
        });

        let mut deep = ns.clone();
        for _ in 0..8 {
            deep = NameSpace::child_of(&deep, []);
        }
        g.bench_with_input(BenchmarkId::new("lookup_inherit8", size), &size, |b, _| {
            b.iter(|| deep.lookup(std::hint::black_box(&probe)).unwrap())
        });

        let over = NameSpace::child_of(
            &ns,
            [(
                probe.clone(),
                NsEntry {
                    obj: ObjectBuilder::new("o").build(),
                    home: KERNEL_DOMAIN,
                },
            )],
        );
        g.bench_with_input(BenchmarkId::new("lookup_override", size), &size, |b, _| {
            b.iter(|| over.lookup(std::hint::black_box(&probe)).unwrap())
        });
    }

    // Register + unregister cycle.
    let ns = populated(1000);
    let mut k = 0u64;
    g.bench_function("register_unregister", |b| {
        b.iter(|| {
            k += 1;
            let path = format!("/tmp/obj{k}");
            ns.register(
                &path,
                NsEntry {
                    obj: ObjectBuilder::new("t").build(),
                    home: KERNEL_DOMAIN,
                },
            )
            .unwrap();
            ns.unregister(&path).unwrap();
        })
    });

    // Interposition (replace) on a hot path.
    let ns = populated(100);
    let path = "/svc/dir0/obj0";
    g.bench_function("replace", |b| {
        b.iter(|| {
            ns.replace(
                path,
                NsEntry {
                    obj: ObjectBuilder::new("agent").build(),
                    home: KERNEL_DOMAIN,
                },
            )
            .unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
