//! E13 — the write-ahead journal (PR 8): append latency, group-commit
//! coalescing under concurrent committers, and recovery-scan throughput.
//!
//! Rows:
//! - `append_write`: one bare write through the journal = one implicit
//!   transaction appended (descriptor + payload + commit marker),
//!   durable by return. Steady state: inline checkpoints when the log
//!   fills are part of the measured cost.
//! - `append_write_many_8`: eight sectors in one atomic transaction
//!   (one descriptor + 8 payloads + one commit marker) — the per-sector
//!   amortisation of the record format and the driver's batch pricing.
//! - `group_commit_4x16`: four OS threads each committing 16 writes to
//!   one shared journal. The leader/rider protocol folds concurrent
//!   commits into shared group appends; the observed batching factor
//!   (commits per group append) is printed after the run and pinned
//!   `> 1` under a slow backing store by `tests/store_crash.rs`.
//! - `recovery_scan_20txn`: the read-only log scan over 20 committed
//!   transactions — exactly the validation + payload-gathering work a
//!   mount-time replay performs, without the home writes.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use paramecium::machine::dev::disk::SECTOR_SIZE;
use paramecium::prelude::*;
use paramecium::store::vectored::pairs_arg;
use paramecium::store::{JournalConfig, StackBuilder, StoreStack};
use parking_lot::Mutex;
use std::sync::Arc;

fn sector_of(byte: u8) -> Value {
    Value::Bytes(bytes::Bytes::from(vec![byte; SECTOR_SIZE]))
}

fn fresh_journalled(cfg: JournalConfig) -> StoreStack {
    let machine = Arc::new(Mutex::new(paramecium::machine::Machine::new()));
    let mem = Arc::new(paramecium::core::memsvc::MemService::new(machine));
    StackBuilder::disk(&mem, KERNEL_DOMAIN)
        .journal(cfg)
        .build()
        .unwrap()
}

fn jstats(j: &ObjRef) -> Vec<i64> {
    j.invoke("journal", "stats", &[])
        .unwrap()
        .as_list()
        .unwrap()
        .iter()
        .map(|v| v.as_int().unwrap())
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e13_journal");

    // Append latency: one durable-by-return write (3 log records).
    let stack = fresh_journalled(JournalConfig::default());
    let top = stack.top.clone();
    let payload = sector_of(0x5A);
    g.bench_function("append_write", |b| {
        b.iter(|| {
            top.invoke(
                "blockdev",
                "write",
                &[Value::Int(7), std::hint::black_box(payload.clone())],
            )
            .unwrap()
        })
    });

    // Amortised append: 8 sectors, one transaction, one group append.
    let stack = fresh_journalled(JournalConfig::default());
    let top = stack.top.clone();
    let batch: Vec<(i64, bytes::Bytes)> = (0..8i64)
        .map(|sec| (sec, bytes::Bytes::from(vec![0x3C; SECTOR_SIZE])))
        .collect();
    g.throughput(Throughput::Elements(8));
    g.bench_function("append_write_many_8", |b| {
        b.iter(|| {
            top.invoke(
                "blockdev",
                "write_many",
                &[std::hint::black_box(pairs_arg(batch.clone()))],
            )
            .unwrap()
        })
    });

    // Concurrent committers: 4 threads × 16 writes through one journal.
    // Riders queue while the leader's append is in flight, so the group
    // count stays below the commit count whenever commits overlap.
    let stack = fresh_journalled(JournalConfig::default());
    let top = stack.top.clone();
    g.throughput(Throughput::Elements(64));
    g.bench_function("group_commit_4x16", |b| {
        b.iter(|| {
            std::thread::scope(|scope| {
                for t in 0..4i64 {
                    let top = &top;
                    scope.spawn(move || {
                        for i in 0..16i64 {
                            top.invoke(
                                "blockdev",
                                "write",
                                &[Value::Int(t * 16 + i), sector_of(i as u8)],
                            )
                            .unwrap();
                        }
                    });
                }
            })
        })
    });
    let s = jstats(stack.journal.as_ref().unwrap());
    if s[0] > 0 {
        eprintln!(
            "group_commit_4x16: {} commits in {} group appends (batching factor {:.2})",
            s[0],
            s[1],
            s[0] as f64 / s[1].max(1) as f64
        );
    }

    // The same contention shape over a slow backing store (3 ms per
    // append, the realistic regime where device latency dwarfs CPU
    // time). Here wall time per iteration directly counts group
    // appends: 64 un-coalesced commits would cost ≥192 ms, so the
    // measured time IS the batching factor made visible — riders queue
    // while the leader's append is in flight and ride its successor.
    let machine = Arc::new(Mutex::new(paramecium::machine::Machine::new()));
    let mem = Arc::new(paramecium::core::memsvc::MemService::new(machine));
    let driver = StackBuilder::disk(&mem, KERNEL_DOMAIN).build().unwrap().top;
    let slow = {
        let i_read = driver.clone();
        let i_read_many = driver.clone();
        let i_write_many = driver.clone();
        let i_sectors = driver.clone();
        ObjectBuilder::new("slow-disk")
            .interface("blockdev", |i| {
                i.method("read", &[TypeTag::Int], TypeTag::Bytes, move |_, args| {
                    i_read.invoke("blockdev", "read", args)
                })
                .method(
                    "read_many",
                    &[TypeTag::List],
                    TypeTag::List,
                    move |_, args| i_read_many.invoke("blockdev", "read_many", args),
                )
                .method(
                    "write_many",
                    &[TypeTag::List],
                    TypeTag::Int,
                    move |_, args| {
                        std::thread::sleep(std::time::Duration::from_millis(3));
                        i_write_many.invoke("blockdev", "write_many", args)
                    },
                )
                .method("sectors", &[], TypeTag::Int, move |_, _| {
                    i_sectors.invoke("blockdev", "sectors", &[])
                })
            })
            .build()
    };
    let stack = StackBuilder::on(slow)
        .journal(JournalConfig::default())
        .build()
        .unwrap();
    let top = stack.top.clone();
    g.throughput(Throughput::Elements(64));
    g.bench_function("group_commit_4x16_slow3ms", |b| {
        b.iter(|| {
            std::thread::scope(|scope| {
                for t in 0..4i64 {
                    let top = &top;
                    scope.spawn(move || {
                        for i in 0..16i64 {
                            top.invoke(
                                "blockdev",
                                "write",
                                &[Value::Int(t * 16 + i), sector_of(i as u8)],
                            )
                            .unwrap();
                        }
                    });
                }
            })
        })
    });
    let s = jstats(stack.journal.as_ref().unwrap());
    if s[0] > 0 {
        eprintln!(
            "group_commit_4x16_slow3ms: {} commits in {} group appends (batching factor {:.2})",
            s[0],
            s[1],
            s[0] as f64 / s[1].max(1) as f64
        );
    }

    // Recovery replay throughput: the read-only committed-prefix scan
    // (record validation + payload gathering) over a 20-transaction log.
    let stack = fresh_journalled(JournalConfig::default());
    let top = stack.top.clone();
    for sec in 0..20i64 {
        top.invoke(
            "blockdev",
            "write",
            &[Value::Int(sec), sector_of(sec as u8)],
        )
        .unwrap();
    }
    let j = stack.journal.as_ref().unwrap().clone();
    assert_eq!(
        j.invoke("journal", "scan", &[]).unwrap(),
        Value::Int(20),
        "log must hold exactly the 20 un-checkpointed transactions"
    );
    g.throughput(Throughput::Elements(20));
    g.bench_function("recovery_scan_20txn", |b| {
        b.iter(|| j.invoke("journal", "scan", &[]).unwrap())
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
