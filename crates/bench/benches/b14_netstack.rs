//! E14 — TCP traffic through the full object chain: NIC drivers on a
//! multi-homed machine, a routing object spanning two wires, an in-path
//! L4 port filter and an interposed network monitor.
//!
//! Topology (one machine, four NIC devices, host-side wire shuttles):
//!
//! ```text
//! client A (10.0.0.2)  tcp ── monitor ── driver(nic)   ═wire═ driver(nic1) ┐
//!                                                                          router ── monitor ── tcp  server (10.0.0.1)
//! client B (10.1.0.2)  tcp ──────────── driver(nic3)   ═wire═ driver(nic2) ┘         + L4 filter
//! ```
//!
//! Client B's traffic exercises the router's longest-prefix egress on the
//! 10.1.0.0/24 route; both clients' segments pass the server-side filter
//! and both monitors.
//!
//! Two figures: `connect_batch32` (connections/sec through fresh stacks)
//! and `echo_roundtrip_1024conns` (per-roundtrip cost with 1024
//! established connections live in the endpoint — the many-client
//! steady-state the experiments record as per-packet ns).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use paramecium::core::memsvc::MemService;
use paramecium::machine::{dev::nic::Nic, Machine};
use paramecium::netstack::{
    driver::{make_driver, make_driver_on},
    filter::make_l4_port_filter,
    monitor::make_network_monitor,
    route::{make_router, RouteIf},
    tcp::make_tcp,
};
use paramecium::prelude::*;
use parking_lot::Mutex;
use std::sync::Arc;

const SERVER_IP: u32 = 0x0A00_0001; // 10.0.0.1
const SERVER_IP1: u32 = 0x0A01_0001; // 10.1.0.1 (second interface)
const CLIENT_A_IP: u32 = 0x0A00_0002; // 10.0.0.2
const CLIENT_B_IP: u32 = 0x0A01_0002; // 10.1.0.2
const PORT: i64 = 7;

struct Net {
    machine: Arc<Mutex<Machine>>,
    client_a: ObjRef,
    client_b: ObjRef,
    server: ObjRef,
    /// Server-side connection ids, echoed by `server_app`.
    server_conns: Vec<i64>,
}

impl Net {
    fn build() -> Net {
        let machine = Arc::new(Mutex::new(Machine::new()));
        {
            let mut m = machine.lock();
            m.register_device(Box::new(Nic::named("nic1")));
            m.register_device(Box::new(Nic::named("nic2")));
            m.register_device(Box::new(Nic::named("nic3")));
        }
        let mem = Arc::new(MemService::new(machine.clone()));

        // Client A: tcp over a monitored driver on the primary NIC.
        let (mon_a, _stats_a) = make_network_monitor(make_driver(&mem, KERNEL_DOMAIN).unwrap());
        let client_a = make_tcp(machine.clone(), mon_a, CLIENT_A_IP, [2, 0, 0, 0, 0, 0xA]);

        // Client B: tcp straight over its driver.
        let drv_b = make_driver_on(&mem, KERNEL_DOMAIN, "nic3").unwrap();
        let client_b = make_tcp(machine.clone(), drv_b, CLIENT_B_IP, [2, 0, 0, 0, 0, 0xB]);

        // Server: tcp over a monitored router spanning both server NICs,
        // with an L4 port filter on the receive path.
        let router = make_router(vec![
            RouteIf {
                dev: make_driver_on(&mem, KERNEL_DOMAIN, "nic1").unwrap(),
                ip: SERVER_IP,
                mac: [2, 0, 0, 0, 0, 0x51],
            },
            RouteIf {
                dev: make_driver_on(&mem, KERNEL_DOMAIN, "nic2").unwrap(),
                ip: SERVER_IP1,
                mac: [2, 0, 0, 0, 0, 0x52],
            },
        ]);
        for (prefix, ifi) in [(0x0A00_0000u32, 0i64), (0x0A01_0000, 1)] {
            router
                .invoke(
                    "route",
                    "add_route",
                    &[
                        Value::Int(i64::from(prefix)),
                        Value::Int(24),
                        Value::Int(ifi),
                    ],
                )
                .unwrap();
        }
        let (mon_s, _stats_s) = make_network_monitor(router);
        let server = make_tcp(machine.clone(), mon_s, SERVER_IP, [2, 0, 0, 0, 0, 0x51]);
        server
            .invoke(
                "tcp",
                "set_filter",
                &[Value::Handle(make_l4_port_filter(PORT as u16))],
            )
            .unwrap();
        server.invoke("tcp", "listen", &[Value::Int(PORT)]).unwrap();

        Net {
            machine,
            client_a,
            client_b,
            server,
            server_conns: Vec::new(),
        }
    }

    /// Host-side wires: moves transmitted frames between paired NICs.
    fn shuttle(&self) {
        let mut m = self.machine.lock();
        for (from, to) in [
            ("nic", "nic1"),
            ("nic1", "nic"),
            ("nic3", "nic2"),
            ("nic2", "nic3"),
        ] {
            while let Some(frame) = m.device_mut::<Nic>(from).unwrap().tx_take() {
                m.device_mut::<Nic>(to).unwrap().inject_rx(frame);
            }
        }
        m.tick(64);
    }

    /// One scheduler round: everyone pumps, the server app echoes, the
    /// wires move.
    fn round(&mut self) {
        self.client_a.invoke("tcp", "pump", &[]).unwrap();
        self.client_b.invoke("tcp", "pump", &[]).unwrap();
        self.shuttle();
        self.server.invoke("tcp", "pump", &[]).unwrap();
        loop {
            let id = self
                .server
                .invoke("tcp", "accept", &[Value::Int(PORT)])
                .unwrap()
                .as_int()
                .unwrap();
            if id < 0 {
                break;
            }
            self.server_conns.push(id);
        }
        for &id in &self.server_conns {
            let data = self
                .server
                .invoke("tcp", "recv", &[Value::Int(id), Value::Int(1 << 16)])
                .unwrap();
            let data = data.as_bytes().unwrap().clone();
            if !data.is_empty() {
                self.server
                    .invoke("tcp", "send", &[Value::Int(id), Value::Bytes(data)])
                    .unwrap();
            }
        }
        self.server.invoke("tcp", "pump", &[]).unwrap();
        self.shuttle();
    }

    /// Opens `n` connections from the given client, pumping until all are
    /// established server-side. Returns the client-side ids.
    fn open_conns(&mut self, from_a: bool, n: usize) -> Vec<i64> {
        let client = if from_a {
            self.client_a.clone()
        } else {
            self.client_b.clone()
        };
        let mut ids = Vec::with_capacity(n);
        // Batches sized under the NIC RX ring so SYN floods don't drop.
        for batch in (0..n).collect::<Vec<_>>().chunks(24) {
            let before = self.server_conns.len();
            for _ in batch {
                ids.push(
                    client
                        .invoke(
                            "tcp",
                            "connect",
                            &[Value::Int(i64::from(SERVER_IP)), Value::Int(PORT)],
                        )
                        .unwrap()
                        .as_int()
                        .unwrap(),
                );
            }
            let want = before + batch.len();
            for _ in 0..64 {
                self.round();
                if self.server_conns.len() >= want {
                    break;
                }
            }
            assert_eq!(self.server_conns.len(), want, "handshakes complete");
        }
        ids
    }

    /// Sends `payload` on each listed client connection and pumps until
    /// every echo comes back in full.
    fn echo_roundtrips(&mut self, a_ids: &[i64], b_ids: &[i64], payload: &bytes::Bytes) {
        for (client, ids) in [
            (self.client_a.clone(), a_ids),
            (self.client_b.clone(), b_ids),
        ] {
            for &id in ids {
                client
                    .invoke(
                        "tcp",
                        "send",
                        &[Value::Int(id), Value::Bytes(payload.clone())],
                    )
                    .unwrap();
            }
        }
        let mut owed: Vec<(ObjRef, i64, usize)> = a_ids
            .iter()
            .map(|&id| (self.client_a.clone(), id, payload.len()))
            .chain(
                b_ids
                    .iter()
                    .map(|&id| (self.client_b.clone(), id, payload.len())),
            )
            .collect();
        for _ in 0..256 {
            self.round();
            owed.retain_mut(|(client, id, left)| {
                let got = client
                    .invoke("tcp", "recv", &[Value::Int(*id), Value::Int(1 << 16)])
                    .unwrap();
                *left -= got.as_bytes().unwrap().len();
                *left > 0
            });
            if owed.is_empty() {
                return;
            }
        }
        panic!("echoes did not complete");
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e14_netstack");

    // Connections/sec: 32 three-way handshakes through freshly built
    // stacks (fresh stacks keep the figure stationary — an endpoint's
    // pump cost scales with its live-connection table).
    g.throughput(Throughput::Elements(32));
    g.bench_function("connect_batch32", |b| {
        b.iter_with_large_drop(|| {
            let mut net = Net::build();
            let a = net.open_conns(true, 16);
            let bq = net.open_conns(false, 16);
            std::hint::black_box((a, bq));
            net
        })
    });

    // Steady state with 1024 live connections: 32 rotating 256-byte echo
    // roundtrips per iteration, every segment crossing driver → router →
    // filter → monitor. Elements = data segments on the wire (32 out +
    // 32 echoed back), so the report reads as per-packet cost.
    let mut net = Net::build();
    let a_ids = net.open_conns(true, 512);
    let b_ids = net.open_conns(false, 512);
    assert_eq!(net.server_conns.len(), 1024);
    let payload = bytes::Bytes::from(vec![0x42u8; 256]);
    let mut cursor = 0usize;
    g.throughput(Throughput::Elements(64));
    g.bench_function("echo_roundtrip_1024conns", |b| {
        b.iter(|| {
            let a_slice: Vec<i64> = (0..16).map(|i| a_ids[(cursor + i) % 512]).collect();
            let b_slice: Vec<i64> = (0..16).map(|i| b_ids[(cursor + i) % 512]).collect();
            cursor = (cursor + 16) % 512;
            net.echo_roundtrips(&a_slice, &b_slice, &payload);
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
