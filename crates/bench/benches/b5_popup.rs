//! E5 — interrupt handling: raw call-backs vs proto-thread pop-ups vs
//! eager thread creation.

use std::sync::{
    atomic::{AtomicU64, Ordering},
    Arc,
};

use criterion::{criterion_group, criterion_main, Criterion};
use paramecium::core::events::EventService;
use paramecium::machine::trap::{Trap, TrapKind};
use paramecium::prelude::*;
use paramecium::threads::popup::PopupFactory;

fn setup(
    mode: PopupMode,
) -> (
    Arc<PopupEngine>,
    Scheduler,
    Arc<EventService>,
    Arc<parking_lot::Mutex<Machine>>,
) {
    let machine = Arc::new(parking_lot::Mutex::new(Machine::new()));
    let scheduler = Scheduler::new(machine.clone());
    let engine = PopupEngine::new(scheduler.clone(), mode);
    let events = Arc::new(EventService::new());
    let hits = Arc::new(AtomicU64::new(0));
    let factory: PopupFactory = Arc::new(move |_| {
        let h = hits.clone();
        Box::new(move |_| {
            h.fetch_add(1, Ordering::Relaxed);
            Step::Done
        })
    });
    engine
        .attach(
            &events,
            TrapKind::Breakpoint.vector(),
            KERNEL_DOMAIN,
            factory,
        )
        .unwrap();
    (engine, scheduler, events, machine)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e5_popup");
    let trap = Trap::exception(TrapKind::Breakpoint);

    // Raw call-back: event service only.
    {
        let machine = Arc::new(parking_lot::Mutex::new(Machine::new()));
        let events = EventService::new();
        let hits = Arc::new(AtomicU64::new(0));
        let h = hits.clone();
        events
            .register(
                trap.vector,
                KERNEL_DOMAIN,
                Arc::new(move |_| {
                    h.fetch_add(1, Ordering::Relaxed);
                }),
            )
            .unwrap();
        g.bench_function("raw_callback", |b| {
            b.iter(|| events.deliver(&machine, std::hint::black_box(&trap)))
        });
    }

    {
        let (_engine, _sched, events, machine) = setup(PopupMode::Proto);
        g.bench_function("proto_fast_path", |b| {
            b.iter(|| events.deliver(&machine, std::hint::black_box(&trap)))
        });
    }

    {
        let (_engine, sched, events, machine) = setup(PopupMode::Eager);
        g.bench_function("eager_thread", |b| {
            b.iter(|| {
                events.deliver(&machine, std::hint::black_box(&trap));
                sched.run_until_idle(4);
                sched.reap();
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
