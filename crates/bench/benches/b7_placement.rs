//! E7 — filter placement: same packet filter in the kernel domain
//! (direct), in a user domain (proxy per packet), and as certified /
//! verified / sandboxed bytecode in the kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use paramecium::cert::CertifyMethod;
use paramecium::machine::dev::Nic;
use paramecium::netstack::{
    filter::{adapt_bytecode_filter, udp_port_filter_program},
    install_driver, make_native_port_filter, make_udp_stack, wire,
};
use paramecium::prelude::*;

const MY_IP: u32 = 0x0A00_0001;
const MY_MAC: wire::Mac = [2, 0, 0, 0, 0, 1];

struct Setup {
    world: World,
    stack: ObjRef,
    frame: Vec<u8>,
}

fn setup(which: &str) -> Setup {
    let world = World::boot();
    let n = &world.nucleus;
    install_driver(n, KERNEL_DOMAIN).unwrap();
    let dev = n.bind(KERNEL_DOMAIN, "/shared/network").unwrap();
    let stack = make_udp_stack(dev, MY_IP, MY_MAC);
    stack.invoke("udp", "bind", &[Value::Int(53)]).unwrap();
    let filter = match which {
        "kernel_native" => {
            let f = make_native_port_filter(53);
            n.register(KERNEL_DOMAIN, "/kernel/filter", f).unwrap();
            n.bind(KERNEL_DOMAIN, "/kernel/filter").unwrap()
        }
        "user_native" => {
            let app = n.create_domain("app", KERNEL_DOMAIN, []).unwrap();
            let f = make_native_port_filter(53);
            n.register_shared(app.id, "/app/filter", f).unwrap();
            n.bind(KERNEL_DOMAIN, "/app/filter").unwrap()
        }
        "kernel_certified" => {
            let image = n.repository.add_bytecode("f", &udp_port_filter_program(53));
            let cert = world
                .root
                .certify(
                    "f",
                    &image,
                    vec![Right::RunKernel],
                    CertifyMethod::Administrator,
                )
                .unwrap();
            n.certsvc.install(cert, vec![]);
            n.load("f", &LoadOptions::kernel("/kernel/f").strict())
                .unwrap();
            adapt_bytecode_filter(n.bind(KERNEL_DOMAIN, "/kernel/f").unwrap())
        }
        "kernel_sandboxed" => {
            n.repository.add_bytecode("f", &udp_port_filter_program(53));
            n.load("f", &LoadOptions::kernel("/kernel/f").sandboxed())
                .unwrap();
            adapt_bytecode_filter(n.bind(KERNEL_DOMAIN, "/kernel/f").unwrap())
        }
        _ => unreachable!(),
    };
    stack
        .invoke("udp", "set_filter", &[Value::Handle(filter)])
        .unwrap();
    let frame = wire::build_udp_frame([9; 6], MY_MAC, 0x0A00_0002, MY_IP, 4444, 53, &[0xAB; 64]);
    Setup {
        world,
        stack,
        frame,
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e7_placement");
    for which in [
        "kernel_native",
        "user_native",
        "kernel_certified",
        "kernel_sandboxed",
    ] {
        let s = setup(which);
        let machine = s.world.nucleus.machine().clone();
        g.bench_function(which, |b| {
            b.iter(|| {
                {
                    let mut m = machine.lock();
                    m.device_mut::<Nic>("nic")
                        .unwrap()
                        .inject_rx(s.frame.clone());
                }
                s.stack.invoke("udp", "pump", &[]).unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
