//! E6 — interposing monitor overhead on the network receive path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paramecium::machine::dev::Nic;
use paramecium::netstack::{install_driver, make_network_monitor};
use paramecium::prelude::*;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_interpose");
    for monitors in 0..=4usize {
        let world = World::boot();
        let n = &world.nucleus;
        install_driver(n, KERNEL_DOMAIN).unwrap();
        for _ in 0..monitors {
            let target = n.bind(KERNEL_DOMAIN, "/shared/network").unwrap();
            let (agent, _) = make_network_monitor(target);
            n.interpose(KERNEL_DOMAIN, "/shared/network", agent)
                .unwrap();
        }
        let dev = n.bind(KERNEL_DOMAIN, "/shared/network").unwrap();
        let machine = n.machine().clone();
        g.bench_with_input(
            BenchmarkId::new("recv_monitored", monitors),
            &monitors,
            |b, _| {
                b.iter(|| {
                    {
                        let mut m = machine.lock();
                        m.device_mut::<Nic>("nic")
                            .unwrap()
                            .inject_rx(vec![0u8; 512]);
                    }
                    dev.invoke("netdev", "recv", &[]).unwrap()
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
