//! E10 — the shared block cache under load: hit latency, miss+writeback
//! throughput, batched vs per-sector flush, and a multi-client
//! interposition mix.
//!
//! Benchmark ids are stable across the PR 5 store rework so
//! `--baseline bench-records/BENCH_b10_store_seed.json` prints the
//! before/after deltas directly.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use paramecium::machine::dev::disk::SECTOR_SIZE;
use paramecium::prelude::*;
use paramecium::store::vectored::sectors_arg;
use paramecium::store::StackBuilder;
use parking_lot::Mutex;
use std::sync::Arc;

fn sector_of(byte: u8) -> Value {
    Value::Bytes(bytes::Bytes::from(vec![byte; SECTOR_SIZE]))
}

fn fresh_driver() -> ObjRef {
    let machine = Arc::new(Mutex::new(paramecium::machine::Machine::new()));
    let mem = Arc::new(paramecium::core::memsvc::MemService::new(machine));
    StackBuilder::disk(&mem, KERNEL_DOMAIN).build().unwrap().top
}

fn fresh_cache(capacity: usize) -> ObjRef {
    StackBuilder::on(fresh_driver())
        .cache(capacity)
        .build()
        .unwrap()
        .top
}

fn fresh_sharded(capacity: usize, shards: usize) -> ObjRef {
    StackBuilder::on(fresh_driver())
        .sharded_cache(capacity, shards)
        .build()
        .unwrap()
        .top
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e10_store");

    // Warmed hit: one resident sector read over and over (zero-copy).
    let cache = fresh_cache(64);
    cache
        .invoke("blockdev", "write", &[Value::Int(3), sector_of(7)])
        .unwrap();
    cache.invoke("blockdev", "read", &[Value::Int(3)]).unwrap();
    g.bench_function("hit_read", |b| {
        b.iter_with_large_drop(|| {
            cache
                .invoke("blockdev", "read", &[Value::Int(std::hint::black_box(3))])
                .unwrap()
        })
    });

    // Warmed write hit (dirty in place).
    let payload = sector_of(9);
    g.bench_function("hit_write", |b| {
        b.iter(|| {
            cache
                .invoke(
                    "blockdev",
                    "write",
                    &[Value::Int(3), std::hint::black_box(payload.clone())],
                )
                .unwrap()
        })
    });

    // Same warmed hit through an 8-way sharded cache: the shard routing
    // must be noise on top of the unsharded hit path.
    let sharded = fresh_sharded(64, 8);
    sharded
        .invoke("blockdev", "write", &[Value::Int(3), sector_of(7)])
        .unwrap();
    g.bench_function("hit_read_sharded8", |b| {
        b.iter_with_large_drop(|| {
            sharded
                .invoke("blockdev", "read", &[Value::Int(std::hint::black_box(3))])
                .unwrap()
        })
    });

    // Vectorized warm reads: 64 resident sectors in one call.
    let cache64 = fresh_sharded(128, 8);
    for sec in 0..64i64 {
        cache64
            .invoke("blockdev", "write", &[Value::Int(sec), sector_of(1)])
            .unwrap();
    }
    let batch = [sectors_arg(0..64)];
    g.throughput(Throughput::Elements(64));
    g.bench_function("read_many_64_warm", |b| {
        b.iter_with_large_drop(|| {
            cache64
                .invoke("blockdev", "read_many", std::hint::black_box(&batch))
                .unwrap()
        })
    });

    // Larger warm batch: per-sector hit cost with dispatch fully
    // amortised — the pipeline's true warmed-hit latency.
    let cache256 = fresh_sharded(512, 8);
    for sec in 0..256i64 {
        cache256
            .invoke("blockdev", "write", &[Value::Int(sec), sector_of(1)])
            .unwrap();
    }
    let batch256 = [sectors_arg(0..256)];
    g.throughput(Throughput::Elements(256));
    g.bench_function("read_many_256_warm", |b| {
        b.iter_with_large_drop(|| {
            cache256
                .invoke("blockdev", "read_many", std::hint::black_box(&batch256))
                .unwrap()
        })
    });

    // Miss + eviction writeback: scan a working set twice the capacity,
    // all dirty, so every miss evicts a dirty victim (coalesced).
    let cache = fresh_cache(64);
    for sec in 0..128i64 {
        cache
            .invoke("blockdev", "write", &[Value::Int(sec), sector_of(1)])
            .unwrap();
    }
    g.throughput(Throughput::Elements(128));
    g.bench_function("miss_writeback_scan128", |b| {
        let mut flip = 0u8;
        b.iter(|| {
            flip = flip.wrapping_add(1);
            for sec in 0..128i64 {
                cache
                    .invoke("blockdev", "write", &[Value::Int(sec), sector_of(flip)])
                    .unwrap();
            }
        })
    });

    // Sharded flavour of the same eviction-heavy scan.
    let cache = fresh_sharded(64, 8);
    for sec in 0..128i64 {
        cache
            .invoke("blockdev", "write", &[Value::Int(sec), sector_of(1)])
            .unwrap();
    }
    g.throughput(Throughput::Elements(128));
    g.bench_function("miss_writeback_scan128_sharded8", |b| {
        let mut flip = 0u8;
        b.iter(|| {
            flip = flip.wrapping_add(1);
            for sec in 0..128i64 {
                cache
                    .invoke("blockdev", "write", &[Value::Int(sec), sector_of(flip)])
                    .unwrap();
            }
        })
    });

    // Flush of 256 dirty sectors: one sector-sorted vectorized writeback.
    let cache = fresh_sharded(512, 8);
    g.throughput(Throughput::Elements(256));
    g.bench_function("flush_256_dirty", |b| {
        b.iter(|| {
            for sec in 0..256i64 {
                cache
                    .invoke("blockdev", "write", &[Value::Int(sec), sector_of(5)])
                    .unwrap();
            }
            cache.invoke("cache", "flush", &[]).unwrap()
        })
    });

    // Reference: the same 256 sectors as individual driver writes — what
    // the seed flush effectively did, one full-price invocation each.
    let driver = fresh_driver();
    g.throughput(Throughput::Elements(256));
    g.bench_function("per_sector_writes_256", |b| {
        b.iter(|| {
            for sec in 0..256i64 {
                driver
                    .invoke("blockdev", "write", &[Value::Int(sec), sector_of(5)])
                    .unwrap();
            }
        })
    });

    // Multi-client: two non-cooperating domains hammering one shared
    // sharded cache through interposition proxies.
    let world = World::boot();
    let n = &world.nucleus;
    let raw = {
        let mem = n.mem.clone();
        StackBuilder::disk(&mem, KERNEL_DOMAIN).build().unwrap().top
    };
    n.register(KERNEL_DOMAIN, "/dev/disk", raw).unwrap();
    let target = n.bind(KERNEL_DOMAIN, "/dev/disk").unwrap();
    n.interpose(
        KERNEL_DOMAIN,
        "/dev/disk",
        StackBuilder::on(target)
            .sharded_cache(64, 8)
            .build()
            .unwrap()
            .top,
    )
    .unwrap();
    let clients: Vec<ObjRef> = (0..2)
        .map(|i| {
            let d = n
                .create_domain(format!("bench-client-{i}"), KERNEL_DOMAIN, [])
                .unwrap();
            n.bind(d.id, "/dev/disk").unwrap()
        })
        .collect();
    for sec in 0..32i64 {
        clients[0]
            .invoke("blockdev", "write", &[Value::Int(sec), sector_of(1)])
            .unwrap();
    }
    g.throughput(Throughput::Elements(8));
    g.bench_function("multiclient_interposed_mix8", |b| {
        b.iter(|| {
            for (i, c) in clients.iter().enumerate() {
                for k in 0..2i64 {
                    let sec = (i as i64 * 16 + k * 4) % 32;
                    c.invoke("blockdev", "read", &[Value::Int(sec)]).unwrap();
                    c.invoke("blockdev", "write", &[Value::Int(sec), sector_of(k as u8)])
                        .unwrap();
                }
            }
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
