//! E11 — the world pool: aggregate throughput of concurrent worlds
//! against one shared sharded block cache, the lock-granularity ablation
//! (per-shard vs a single global shard), the lock-free cross-world
//! mailbox, and a full bulk-synchronous pool round.
//!
//! The `agg_warm_reads_w{1,2,4}` rows are the scaling story: W OS
//! threads (one per world) hammer warmed read hits on *disjoint shards*
//! of one shared cache, so per-shard locking lets them proceed fully in
//! parallel — aggregate ops/sec should scale with cores up to W. On a
//! single-vCPU host the rows still measure the same metric, but the
//! scaling shows only where the hardware has cores to offer (see
//! bench-records/README.md).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use paramecium::machine::dev::disk::SECTOR_SIZE;
use paramecium::pool::WorldPool;
use paramecium::prelude::*;
use paramecium::store::StackBuilder;
use paramecium::threads::pool::Mailbox;
use parking_lot::Mutex;
use std::sync::Arc;

/// Warmed reads each world issues per measured iteration — large enough
/// that per-iteration thread spawns are noise against the read work.
const READS_PER_WORLD: usize = 2048;

/// Worlds in the aggregate-throughput rows at the widest point.
const MAX_WORLDS: usize = 4;

fn sector_of(byte: u8) -> Value {
    Value::Bytes(bytes::Bytes::from(vec![byte; SECTOR_SIZE]))
}

fn fresh_driver() -> ObjRef {
    let machine = Arc::new(Mutex::new(paramecium::machine::Machine::new()));
    let mem = Arc::new(paramecium::core::memsvc::MemService::new(machine));
    StackBuilder::disk(&mem, KERNEL_DOMAIN).build().unwrap().top
}

/// World `w`'s private working set: 16 sectors confined to shards
/// `4w..4w+4` of a 16-way sharded cache, so concurrent worlds touch
/// disjoint shards and never contend on a shard lock.
fn world_sectors(w: usize) -> Vec<Value> {
    (0..16)
        .map(|k| Value::Int(((k / 4) * 16 + w * 4 + k % 4) as i64))
        .collect()
}

/// One shared cache, warmed so every world's working set is resident.
fn warmed_shared_cache(shards: usize) -> ObjRef {
    let cache = StackBuilder::on(fresh_driver())
        .sharded_cache(16 * MAX_WORLDS, shards)
        .build()
        .unwrap()
        .top;
    for w in 0..MAX_WORLDS {
        for sec in world_sectors(w) {
            cache
                .invoke("blockdev", "write", &[sec.clone(), sector_of(w as u8)])
                .unwrap();
            cache.invoke("blockdev", "read", &[sec]).unwrap();
        }
    }
    cache
}

/// W OS threads, each reading its world's warmed working set round-robin
/// against the one shared cache; reported as aggregate elements/sec.
fn agg_reads(g: &mut criterion::BenchmarkGroup<'_>, name: &str, cache: &ObjRef, worlds: usize) {
    let sectors: Vec<Vec<Value>> = (0..worlds).map(world_sectors).collect();
    g.throughput(Throughput::Elements((worlds * READS_PER_WORLD) as u64));
    g.bench_function(name, |b| {
        b.iter(|| {
            std::thread::scope(|s| {
                for secs in &sectors {
                    let cache = cache.clone();
                    s.spawn(move || {
                        for i in 0..READS_PER_WORLD {
                            cache
                                .invoke("blockdev", "read", &[secs[i % secs.len()].clone()])
                                .unwrap();
                        }
                    });
                }
            })
        })
    });
}

/// Constant-memory cross-world message sink.
fn counter() -> ObjRef {
    ObjectBuilder::new("counter")
        .state(0i64)
        .interface("rec", |i| {
            i.method("push", &[TypeTag::Int], TypeTag::Int, |this, args| {
                let v = args[0].as_int()?;
                this.with_state(|n: &mut i64| {
                    *n += v;
                    Ok(Value::Int(*n))
                })
            })
        })
        .build()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e11_worldpool");

    // Aggregate warmed read-hit throughput at 1, 2 and 4 worlds over one
    // 16-shard shared cache (disjoint shards per world).
    let shared = warmed_shared_cache(16);
    agg_reads(&mut g, "agg_warm_reads_w1", &shared, 1);
    agg_reads(&mut g, "agg_warm_reads_w2", &shared, 2);
    agg_reads(&mut g, "agg_warm_reads_w4", &shared, MAX_WORLDS);

    // Ablation: the same 4-thread load against a single-shard cache —
    // every read serializes on one shard lock, which is exactly the old
    // global-lock design's contention profile.
    let global = warmed_shared_cache(1);
    agg_reads(&mut g, "agg_warm_reads_w4_global_lock", &global, MAX_WORLDS);

    // The lock-free mailbox alone: 1k posts then one drain (CAS push,
    // swap-and-reverse drain), single-threaded cost of the primitive.
    let mb: Mailbox<u64> = Mailbox::new();
    g.throughput(Throughput::Elements(1024));
    g.bench_function("mailbox_post_drain_1k", |b| {
        b.iter(|| {
            for i in 0..1024u64 {
                mb.push(i);
            }
            std::hint::black_box(mb.drain().len())
        })
    });

    // A full bulk-synchronous round over 4 worlds on 4 OS threads: each
    // world posts one message around the ring; the round cost includes
    // delivery, both pumps, the barrier, and the settle round that
    // drains the ring.
    let mut pool = WorldPool::boot(MAX_WORLDS, 0xB11);
    for w in pool.worlds() {
        w.cross.register_handler("sink", counter());
    }
    g.throughput(Throughput::Elements(MAX_WORLDS as u64));
    g.bench_function("pool_round_w4_ring", |b| {
        b.iter(|| {
            pool.run_rounds(MAX_WORLDS, 1, |w, _| {
                let to = (w.id + 1) % MAX_WORLDS;
                assert!(w.post(to, "sink", "rec", "push", vec![Value::Int(1)]));
            })
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
