//! E4 — load-time certification vs run-time software protection: load
//! costs (signature check vs verify vs rewrite) and run costs per regime.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paramecium::cert::CertifyMethod;
use paramecium::prelude::*;
use paramecium::sfi::{interp::Interp, sandbox::sandbox_rewrite, verifier, workloads};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4_certification");

    // Load-time costs, per mechanism, over a fixed component.
    let program = workloads::checksum_loop(1024, 16);
    let image = program.encode();
    g.bench_function("load_sfi_rewrite", |b| {
        b.iter(|| sandbox_rewrite(std::hint::black_box(&program)))
    });
    let verifiable = workloads::checksum_loop_verified(1024, 16);
    g.bench_function("load_verify", |b| {
        b.iter(|| verifier::verify(std::hint::black_box(&verifiable)).unwrap())
    });
    // Certificate validation with a real RSA verify (cache disabled).
    let world = World::boot();
    let cert = world
        .root
        .certify(
            "c",
            &image,
            vec![Right::RunKernel],
            CertifyMethod::Administrator,
        )
        .unwrap();
    world.nucleus.certsvc.install(cert, vec![]);
    world.nucleus.certsvc.set_cache_enabled(false);
    g.bench_function("load_cert_validate", |b| {
        b.iter(|| {
            world
                .nucleus
                .certsvc
                .validate_for(std::hint::black_box(&image), Right::RunKernel)
                .unwrap()
        })
    });
    world.nucleus.certsvc.set_cache_enabled(true);
    world
        .nucleus
        .certsvc
        .validate_for(&image, Right::RunKernel)
        .unwrap();
    g.bench_function("load_cert_validate_cached", |b| {
        b.iter(|| {
            world
                .nucleus
                .certsvc
                .validate_for(std::hint::black_box(&image), Right::RunKernel)
                .unwrap()
        })
    });

    // Run-time costs per regime (interpreter wall time per execution).
    for iters in [1u32, 16, 128] {
        let native = workloads::checksum_loop(1024, iters);
        let (sandboxed, _) = sandbox_rewrite(&native);
        let verified = workloads::checksum_loop_verified(1024, iters);
        g.bench_with_input(
            BenchmarkId::new("run_certified_native", iters),
            &iters,
            |b, _| b.iter(|| Interp::new(&native).run(u64::MAX).unwrap()),
        );
        g.bench_with_input(BenchmarkId::new("run_verified", iters), &iters, |b, _| {
            b.iter(|| Interp::new(&verified).run(u64::MAX).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("run_sfi", iters), &iters, |b, _| {
            b.iter(|| Interp::new(&sandboxed).run(u64::MAX).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
