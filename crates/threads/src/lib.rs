//! The thread package — a component *outside* the nucleus.
//!
//! "All other system components, like thread packages, device drivers, and
//! virtual memory implementations reside outside this nucleus." (paper,
//! section 3). This crate provides that thread package:
//!
//! - [`tcb`] — thread control blocks and the step-based thread body model,
//! - [`sched`] — a round-robin scheduler with cycle accounting,
//! - [`sync`] — semaphores, mutexes and channels for simulated threads,
//! - [`popup`] — pop-up threads for interrupts with the *proto-thread*
//!   optimisation: "we delay the actual creation of the pop-up thread by
//!   creating a proto-thread. Only when the proto-thread is about to block
//!   or be rescheduled do we turn it into a real thread. This allows us to
//!   provide fast interrupt processing of user code with proper thread
//!   semantics."
//!
//! Threads are deterministic run-to-completion state machines: a thread
//! body is a closure invoked repeatedly, returning [`Step::Yield`],
//! [`Step::Block`] or [`Step::Done`] at each scheduling point. That keeps
//! the whole simulation single-threaded and reproducible while modelling
//! exactly the scheduling structure (and costs) the paper talks about.

pub mod am;
pub mod popup;
pub mod sched;
pub mod sync;
pub mod tcb;

pub use am::{ActiveMsg, AmEndpoint};
pub use popup::{PopupEngine, PopupMode, PopupStats};
pub use sched::{SchedStats, Scheduler};
pub use sync::{Channel, Semaphore, SimMutex};
pub use tcb::{Step, ThreadBody, ThreadCtx, Tid};
