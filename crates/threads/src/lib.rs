//! The thread package — a component *outside* the nucleus.
//!
//! "All other system components, like thread packages, device drivers, and
//! virtual memory implementations reside outside this nucleus." (paper,
//! section 3). This crate provides that thread package:
//!
//! - [`tcb`] — thread control blocks and the step-based thread body model,
//! - [`sched`] — a round-robin scheduler with cycle accounting,
//! - [`sync`] — semaphores, mutexes and channels for simulated threads,
//! - [`popup`] — pop-up threads for interrupts with the *proto-thread*
//!   optimisation: "we delay the actual creation of the pop-up thread by
//!   creating a proto-thread. Only when the proto-thread is about to block
//!   or be rescheduled do we turn it into a real thread. This allows us to
//!   provide fast interrupt processing of user code with proper thread
//!   semantics."
//! - [`am`] — active-message endpoints: post a message, raise an IRQ,
//!   let a pop-up thread invoke the named handler method,
//! - [`pool`] — the cross-world layer: lock-free mailboxes, the
//!   cross-world active-message bus, and the bulk-synchronous round
//!   barrier the world pool runs on.
//!
//! # The two-level execution model
//!
//! There are two kinds of "thread" here, and they never mix:
//!
//! 1. **Simulated threads within a world** are deterministic
//!    run-to-completion state machines on *one* OS thread: a thread body
//!    is a closure invoked repeatedly, returning [`Step::Yield`],
//!    [`Step::Block`] or [`Step::Done`] at each scheduling point. That
//!    keeps each world single-threaded and bit-reproducible while
//!    modelling exactly the scheduling structure (and costs) the paper
//!    talks about.
//! 2. **Real OS threads across worlds**: a world pool runs many
//!    independent worlds concurrently, each pinned to one OS thread per
//!    bulk-synchronous round. Worlds share no simulated state — the only
//!    channel between them is the active-message bus in [`pool`], whose
//!    round-tagged, `(sender, sequence)`-sorted delivery makes each
//!    world's state a pure function of its seed and the messages it
//!    receives, independent of how many OS threads the pool uses or how
//!    the OS interleaves them.
//!
//! Level 2 is invisible from level 1: a cross-world message arrives as
//! an interrupt on the receiving world's machine and is handled by the
//! same pop-up engine that handles device interrupts, so handler code
//! cannot tell a remote world from a local device.

pub mod am;
pub mod pool;
pub mod popup;
pub mod sched;
pub mod sync;
pub mod tcb;

pub use am::{ActiveMsg, AmEndpoint};
pub use pool::{CrossBus, CrossEndpoint, CrossMsg, CrossStats, Mailbox, RoundBarrier};
pub use popup::{PopupEngine, PopupMode, PopupStats};
pub use sched::{SchedStats, Scheduler};
pub use sync::{Channel, Semaphore, SimMutex};
pub use tcb::{Step, ThreadBody, ThreadCtx, Tid};
