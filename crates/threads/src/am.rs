//! Active-message invocations.
//!
//! The paper's memory-management section mentions placing objects in
//! separate MMU contexts "when implementing active message like
//! invocations" (§3), referencing the authors' *Using Active Messages to
//! Support Shared Objects* \[10\]. An active message names a handler — here
//! an object method — and is executed *immediately on arrival* in
//! interrupt context via the proto-thread fast path, only growing into a
//! real thread if the handler blocks.
//!
//! [`AmEndpoint`] models the receiving side: posting a message enqueues
//! it and raises an interrupt line; the attached pop-up engine drains the
//! queue and invokes the named method. The target object may be a
//! cross-domain proxy, in which case the invocation pays the usual
//! crossing — exactly the trade-off the paper's placement argument is
//! about.

use std::{
    collections::VecDeque,
    sync::{
        atomic::{AtomicU64, Ordering},
        Arc,
    },
};

use parking_lot::Mutex;

use paramecium_core::{domain::DomainId, events::EventService, CoreResult};
use paramecium_machine::{trap::IRQ_VECTOR_BASE, Machine};
use paramecium_obj::{ObjRef, ObjResult, Value};

use crate::{
    popup::{PopupEngine, PopupFactory},
    tcb::Step,
};

/// One active message: invoke `interface::method(args)` on `target`.
pub struct ActiveMsg {
    /// The handler object (possibly a proxy).
    pub target: ObjRef,
    /// Interface name.
    pub interface: String,
    /// Method name.
    pub method: String,
    /// Arguments.
    pub args: Vec<Value>,
}

/// A completed active message: its id and the handler's result.
pub type AmCompletion = (u64, ObjResult<Value>);

/// The receiving endpoint of an active-message channel.
pub struct AmEndpoint {
    machine: Arc<Mutex<Machine>>,
    irq_line: u32,
    queue: Mutex<VecDeque<(u64, ActiveMsg)>>,
    completions: Mutex<Vec<AmCompletion>>,
    next_id: AtomicU64,
    /// Messages dropped because the queue was full.
    dropped: AtomicU64,
    capacity: usize,
}

impl AmEndpoint {
    /// Creates an endpoint on `irq_line` and attaches its dispatcher to
    /// the event service through `engine` (pop-up threads in `domain`).
    pub fn install(
        events: &EventService,
        engine: &Arc<PopupEngine>,
        machine: Arc<Mutex<Machine>>,
        irq_line: u32,
        domain: DomainId,
        capacity: usize,
    ) -> CoreResult<Arc<Self>> {
        let endpoint = Arc::new(AmEndpoint {
            machine,
            irq_line,
            queue: Mutex::new(VecDeque::new()),
            completions: Mutex::new(Vec::new()),
            next_id: AtomicU64::new(1),
            dropped: AtomicU64::new(0),
            capacity: capacity.max(1),
        });
        let ep = endpoint.clone();
        let factory: PopupFactory = Arc::new(move |_trap| {
            let ep = ep.clone();
            Box::new(move |_ctx| {
                // Drain everything pending: interrupts coalesce, so one
                // pop-up may serve several messages.
                while let Some((id, msg)) = ep.take_next() {
                    let result = msg.target.invoke(&msg.interface, &msg.method, &msg.args);
                    ep.completions.lock().push((id, result));
                }
                Step::Done
            })
        });
        engine.attach(events, IRQ_VECTOR_BASE + irq_line, domain, factory)?;
        Ok(endpoint)
    }

    /// Posts a message: enqueues it and raises the endpoint's interrupt.
    /// Returns the message id, or `None` if the queue was full (the
    /// sender's problem, as with any network).
    pub fn post(&self, msg: ActiveMsg) -> Option<u64> {
        {
            let mut q = self.queue.lock();
            if q.len() >= self.capacity {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            let id = self.next_id.fetch_add(1, Ordering::Relaxed);
            q.push_back((id, msg));
            let mut m = self.machine.lock();
            m.irq.raise(self.irq_line);
            Some(id)
        }
    }

    fn take_next(&self) -> Option<(u64, ActiveMsg)> {
        self.queue.lock().pop_front()
    }

    /// Drains the accumulated completions.
    pub fn take_completions(&self) -> Vec<AmCompletion> {
        std::mem::take(&mut self.completions.lock())
    }

    /// Messages rejected because the queue was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Messages currently queued.
    pub fn pending(&self) -> usize {
        self.queue.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{popup::PopupMode, sched::Scheduler};
    use paramecium_core::domain::KERNEL_DOMAIN;
    use paramecium_obj::{ObjectBuilder, TypeTag};

    fn adder() -> ObjRef {
        ObjectBuilder::new("adder")
            .state(0i64)
            .interface("math", |i| {
                i.method("acc", &[TypeTag::Int], TypeTag::Int, |this, args| {
                    let v = args[0].as_int()?;
                    this.with_state(|s: &mut i64| {
                        *s += v;
                        Ok(Value::Int(*s))
                    })
                })
            })
            .build()
    }

    struct Rig {
        endpoint: Arc<AmEndpoint>,
        events: Arc<EventService>,
        machine: Arc<Mutex<Machine>>,
        scheduler: Scheduler,
        engine: Arc<PopupEngine>,
    }

    fn rig(capacity: usize) -> Rig {
        let machine = Arc::new(Mutex::new(Machine::new()));
        let scheduler = Scheduler::new(machine.clone());
        let engine = PopupEngine::new(scheduler.clone(), PopupMode::Proto);
        let events = Arc::new(EventService::new());
        let endpoint = AmEndpoint::install(
            &events,
            &engine,
            machine.clone(),
            5,
            KERNEL_DOMAIN,
            capacity,
        )
        .unwrap();
        Rig {
            endpoint,
            events,
            machine,
            scheduler,
            engine,
        }
    }

    /// Delivers pending interrupts like the nucleus poll loop would.
    fn pump(r: &Rig) {
        r.events.drain_interrupts(&r.machine);
        r.scheduler.run_until_idle(64);
    }

    #[test]
    fn messages_invoke_handlers_in_order() {
        let r = rig(16);
        let target = adder();
        for v in [3i64, 4, 5] {
            r.endpoint
                .post(ActiveMsg {
                    target: target.clone(),
                    interface: "math".into(),
                    method: "acc".into(),
                    args: vec![Value::Int(v)],
                })
                .unwrap();
        }
        pump(&r);
        let done = r.endpoint.take_completions();
        assert_eq!(done.len(), 3);
        // In-order accumulation: 3, 7, 12.
        assert_eq!(done[0].1.as_ref().unwrap(), &Value::Int(3));
        assert_eq!(done[1].1.as_ref().unwrap(), &Value::Int(7));
        assert_eq!(done[2].1.as_ref().unwrap(), &Value::Int(12));
        assert_eq!(r.endpoint.pending(), 0);
        // Coalesced interrupts still handled everything on the fast path.
        assert!(r.engine.stats().fast_path >= 1);
        assert_eq!(r.engine.stats().promotions, 0);
    }

    #[test]
    fn handler_errors_are_captured_not_fatal() {
        let r = rig(16);
        let target = adder();
        r.endpoint
            .post(ActiveMsg {
                target: target.clone(),
                interface: "math".into(),
                method: "no-such".into(),
                args: vec![],
            })
            .unwrap();
        r.endpoint
            .post(ActiveMsg {
                target,
                interface: "math".into(),
                method: "acc".into(),
                args: vec![Value::Int(1)],
            })
            .unwrap();
        pump(&r);
        let done = r.endpoint.take_completions();
        assert_eq!(done.len(), 2);
        assert!(done[0].1.is_err());
        assert!(done[1].1.is_ok());
    }

    #[test]
    fn full_queue_drops_with_count() {
        let r = rig(2);
        let target = adder();
        let msg = |v: i64| ActiveMsg {
            target: target.clone(),
            interface: "math".into(),
            method: "acc".into(),
            args: vec![Value::Int(v)],
        };
        assert!(r.endpoint.post(msg(1)).is_some());
        assert!(r.endpoint.post(msg(2)).is_some());
        assert!(r.endpoint.post(msg(3)).is_none());
        assert_eq!(r.endpoint.dropped(), 1);
        pump(&r);
        assert_eq!(r.endpoint.take_completions().len(), 2);
    }

    // Cross-domain active messages (handler behind a proxy) are exercised
    // in the workspace integration test `tests/threads_and_interrupts.rs`,
    // where the facade harness is available.
}
