//! The round-robin scheduler.
//!
//! Deterministic and single-threaded: `run_until_idle` repeatedly pops the
//! ready queue, enters the thread body, and acts on the returned
//! [`Step`]. Every scheduling decision charges the machine's `schedule`
//! cost; thread creation charges `thread_create`.

use std::{collections::HashMap, collections::VecDeque, sync::Arc};

use parking_lot::Mutex;

use paramecium_machine::Machine;

use crate::tcb::{Step, TState, Tcb, ThreadBody, ThreadCtx, ThreadKind, Tid};

/// Scheduler statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Threads spawned (all kinds).
    pub spawned: u64,
    /// Scheduling slices executed.
    pub slices: u64,
    /// Threads that ran to completion.
    pub completed: u64,
    /// Block operations.
    pub blocks: u64,
    /// Wake operations.
    pub wakes: u64,
}

/// Shared scheduler core (cloned into sync primitives so they can wake
/// threads).
pub struct SchedCore {
    machine: Arc<Mutex<Machine>>,
    tcbs: Mutex<HashMap<Tid, Tcb>>,
    ready: Mutex<VecDeque<Tid>>,
    next_tid: Mutex<Tid>,
    stats: Mutex<SchedStats>,
}

impl SchedCore {
    /// Moves a blocked thread to the ready queue (called by sync
    /// primitives on signal).
    pub fn wake(&self, tid: Tid) {
        let mut tcbs = self.tcbs.lock();
        if let Some(tcb) = tcbs.get_mut(&tid) {
            if tcb.state == TState::Blocked {
                tcb.state = TState::Ready;
                self.ready.lock().push_back(tid);
                self.stats.lock().wakes += 1;
            }
        }
    }

    /// The machine handle.
    pub fn machine(&self) -> &Arc<Mutex<Machine>> {
        &self.machine
    }
}

/// The thread scheduler.
#[derive(Clone)]
pub struct Scheduler {
    core: Arc<SchedCore>,
}

impl Scheduler {
    /// Creates a scheduler over a machine.
    pub fn new(machine: Arc<Mutex<Machine>>) -> Self {
        Scheduler {
            core: Arc::new(SchedCore {
                machine,
                tcbs: Mutex::new(HashMap::new()),
                ready: Mutex::new(VecDeque::new()),
                next_tid: Mutex::new(1),
                stats: Mutex::new(SchedStats::default()),
            }),
        }
    }

    /// The shared core (for sync primitives and the pop-up engine).
    pub fn core(&self) -> &Arc<SchedCore> {
        &self.core
    }

    /// Spawns a regular thread, charging the creation cost. Returns its
    /// id.
    pub fn spawn(&self, name: impl Into<String>, body: ThreadBody) -> Tid {
        self.spawn_kind(name, body, ThreadKind::Regular, true)
    }

    /// Spawns with explicit kind and optional cost charging (the pop-up
    /// engine charges its own, different costs).
    pub fn spawn_kind(
        &self,
        name: impl Into<String>,
        body: ThreadBody,
        kind: ThreadKind,
        charge_create: bool,
    ) -> Tid {
        let tid = {
            let mut next = self.core.next_tid.lock();
            let t = *next;
            *next += 1;
            t
        };
        if charge_create {
            let mut m = self.core.machine.lock();
            let cost = m.cost.thread_create;
            m.charge(cost);
        }
        self.core.tcbs.lock().insert(
            tid,
            Tcb {
                tid,
                name: name.into(),
                state: TState::Ready,
                body: Some(body),
                kind,
                entries: 0,
            },
        );
        self.core.ready.lock().push_back(tid);
        self.core.stats.lock().spawned += 1;
        tid
    }

    /// Runs one scheduling slice. Returns false if the ready queue was
    /// empty.
    pub fn run_slice(&self) -> bool {
        let Some(tid) = self.core.ready.lock().pop_front() else {
            return false;
        };
        // Charge the scheduling decision.
        {
            let mut m = self.core.machine.lock();
            let cost = m.cost.schedule;
            m.charge(cost);
        }
        // Take the body out so the TCB lock is not held while running.
        let (mut body, entries) = {
            let mut tcbs = self.core.tcbs.lock();
            let tcb = tcbs.get_mut(&tid).expect("ready thread has a TCB");
            tcb.state = TState::Running;
            tcb.entries += 1;
            (
                tcb.body.take().expect("ready thread has a body"),
                tcb.entries,
            )
        };
        self.core.stats.lock().slices += 1;

        let mut ctx = ThreadCtx {
            tid,
            machine: self.core.machine.clone(),
            entries,
        };
        let step = body(&mut ctx);

        let mut tcbs = self.core.tcbs.lock();
        let tcb = tcbs.get_mut(&tid).expect("running thread has a TCB");
        match step {
            Step::Yield => {
                tcb.state = TState::Ready;
                tcb.body = Some(body);
                self.core.ready.lock().push_back(tid);
            }
            Step::Block(waitable) => {
                tcb.state = TState::Blocked;
                tcb.body = Some(body);
                self.core.stats.lock().blocks += 1;
                drop(tcbs); // `park` may immediately wake us (lost-signal safety).
                waitable.park(tid);
            }
            Step::Done => {
                tcb.state = TState::Finished;
                tcb.body = None;
                self.core.stats.lock().completed += 1;
            }
        }
        true
    }

    /// Runs until the ready queue is empty or `max_slices` is reached.
    /// Returns the number of slices executed.
    pub fn run_until_idle(&self, max_slices: u64) -> u64 {
        let mut n = 0;
        while n < max_slices && self.run_slice() {
            n += 1;
        }
        n
    }

    /// The scheduling state of a thread, if it exists.
    pub fn state(&self, tid: Tid) -> Option<TState> {
        self.core.tcbs.lock().get(&tid).map(|t| t.state)
    }

    /// Removes finished TCBs, returning how many were reaped.
    pub fn reap(&self) -> usize {
        let mut tcbs = self.core.tcbs.lock();
        let before = tcbs.len();
        tcbs.retain(|_, t| t.state != TState::Finished);
        before - tcbs.len()
    }

    /// Live (unreaped) thread count.
    pub fn thread_count(&self) -> usize {
        self.core.tcbs.lock().len()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> SchedStats {
        *self.core.stats.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn sched() -> Scheduler {
        Scheduler::new(Arc::new(Mutex::new(Machine::new())))
    }

    #[test]
    fn threads_run_to_completion() {
        let s = sched();
        let hits = Arc::new(AtomicU64::new(0));
        for _ in 0..3 {
            let h = hits.clone();
            s.spawn(
                "worker",
                Box::new(move |_| {
                    h.fetch_add(1, Ordering::Relaxed);
                    Step::Done
                }),
            );
        }
        assert_eq!(s.run_until_idle(100), 3);
        assert_eq!(hits.load(Ordering::Relaxed), 3);
        let st = s.stats();
        assert_eq!((st.spawned, st.completed), (3, 3));
    }

    #[test]
    fn yielding_interleaves_round_robin() {
        let s = sched();
        let log = Arc::new(Mutex::new(Vec::new()));
        for name in [1i32, 2] {
            let l = log.clone();
            s.spawn(
                format!("t{name}"),
                Box::new(move |ctx| {
                    l.lock().push(name);
                    if ctx.entries < 3 {
                        Step::Yield
                    } else {
                        Step::Done
                    }
                }),
            );
        }
        s.run_until_idle(100);
        assert_eq!(*log.lock(), vec![1, 2, 1, 2, 1, 2]);
    }

    #[test]
    fn spawn_charges_thread_create() {
        let s = sched();
        let before = s.core().machine().lock().now();
        s.spawn("t", Box::new(|_| Step::Done));
        let cost = s.core().machine().lock().cost.thread_create;
        assert_eq!(s.core().machine().lock().now() - before, cost);
    }

    #[test]
    fn slices_charge_schedule_cost() {
        let s = sched();
        s.spawn("t", Box::new(|_| Step::Done));
        let before = s.core().machine().lock().now();
        s.run_until_idle(10);
        let cost = s.core().machine().lock().cost.schedule;
        assert_eq!(s.core().machine().lock().now() - before, cost);
    }

    #[test]
    fn reap_clears_finished() {
        let s = sched();
        s.spawn("t1", Box::new(|_| Step::Done));
        let spinner = s.spawn("t2", Box::new(|_| Step::Yield));
        s.run_until_idle(10);
        assert_eq!(s.thread_count(), 2);
        // t2 yields forever; cap slices. t1 finished.
        assert_eq!(s.reap(), 1);
        assert_eq!(s.thread_count(), 1);
        assert_eq!(s.state(spinner), Some(TState::Ready));
    }

    #[test]
    fn run_until_idle_respects_cap() {
        let s = sched();
        s.spawn("spin", Box::new(|_| Step::Yield));
        assert_eq!(s.run_until_idle(7), 7);
    }
}
