//! Cross-world plumbing for the world pool: lock-free mailboxes, the
//! cross-world active-message bus, and the round barrier.
//!
//! Within a world, threads are deterministic run-to-completion state
//! machines on one OS thread (see the crate docs). *Across* worlds, real
//! OS threads run concurrently, and the **only** channel between them is
//! the active-message model the paper already prescribes (§3): a sender
//! posts a [`CrossMsg`] naming a handler object on the receiving world;
//! the receiver drains its mailbox at a deterministic point and feeds the
//! messages through its own [`crate::am::AmEndpoint`] — so cross-world
//! arrivals look exactly like device interrupts and run on the pop-up
//! engine's proto-thread fast path.
//!
//! Determinism across thread interleavings comes from bulk-synchronous
//! rounds: a message posted during round *r* carries that round number
//! and is delivered at the start of round *r + 1*, after a
//! [`RoundBarrier`], sorted by `(round, sender, per-sender sequence)`.
//! The physical arrival order in the lock-free mailbox — which *does*
//! depend on OS scheduling — is therefore never observable.

use std::{
    collections::BTreeMap,
    sync::{
        atomic::{AtomicPtr, AtomicU64, Ordering},
        Arc,
    },
};

use parking_lot::{Condvar, Mutex};

use paramecium_obj::{ObjRef, Value};

use crate::am::{ActiveMsg, AmEndpoint};

// ---------------------------------------------------------------------------
// Lock-free MPSC mailbox
// ---------------------------------------------------------------------------

struct Node<T> {
    value: T,
    next: *mut Node<T>,
}

/// A lock-free multi-producer single-consumer mailbox.
///
/// Producers push with a compare-and-swap loop onto an intrusive LIFO
/// list (a Treiber stack); the single consumer takes the whole list with
/// one atomic swap and reverses it, so [`Mailbox::drain`] yields
/// messages in per-producer FIFO order. No locks, no allocation beyond
/// one node per message.
pub struct Mailbox<T> {
    head: AtomicPtr<Node<T>>,
}

// Safety: nodes are heap-allocated and ownership is transferred through
// the atomic head pointer — a value is reachable either by the producer
// (before the CAS) or by the consumer (after the swap), never both.
unsafe impl<T: Send> Send for Mailbox<T> {}
unsafe impl<T: Send> Sync for Mailbox<T> {}

impl<T> Mailbox<T> {
    /// Creates an empty mailbox.
    pub const fn new() -> Self {
        Mailbox {
            head: AtomicPtr::new(std::ptr::null_mut()),
        }
    }

    /// Pushes a value; callable from any thread.
    pub fn push(&self, value: T) {
        let node = Box::into_raw(Box::new(Node {
            value,
            next: std::ptr::null_mut(),
        }));
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            // Safety: we own `node` until the CAS below publishes it.
            unsafe { (*node).next = head };
            match self
                .head
                .compare_exchange_weak(head, node, Ordering::Release, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(current) => head = current,
            }
        }
    }

    /// Takes everything currently in the mailbox, in per-producer FIFO
    /// order. Intended for the single consumer; concurrent pushes that
    /// lose the race simply land in the next drain.
    pub fn drain(&self) -> Vec<T> {
        let mut node = self.head.swap(std::ptr::null_mut(), Ordering::Acquire);
        let mut out = Vec::new();
        while !node.is_null() {
            // Safety: the swap transferred exclusive ownership of the
            // whole list to us.
            let boxed = unsafe { Box::from_raw(node) };
            node = boxed.next;
            out.push(boxed.value);
        }
        out.reverse(); // LIFO list → FIFO delivery.
        out
    }

    /// True if nothing is queued (a racy hint, exact once producers are
    /// quiescent).
    pub fn is_empty(&self) -> bool {
        self.head.load(Ordering::Acquire).is_null()
    }
}

impl<T> Default for Mailbox<T> {
    fn default() -> Self {
        Mailbox::new()
    }
}

impl<T> Drop for Mailbox<T> {
    fn drop(&mut self) {
        let mut node = *self.head.get_mut();
        while !node.is_null() {
            // Safety: `&mut self` means no producer or consumer is live.
            let boxed = unsafe { Box::from_raw(node) };
            node = boxed.next;
        }
    }
}

// ---------------------------------------------------------------------------
// Cross-world active messages
// ---------------------------------------------------------------------------

/// An active message in flight between worlds. `handler` names an object
/// registered on the receiving endpoint (worlds share no object
/// references — names are the only cross-world vocabulary).
pub struct CrossMsg {
    /// Bulk-synchronous round the message was posted in.
    pub round: u64,
    /// Sending world id.
    pub from: usize,
    /// Per-sender sequence number (the deterministic tiebreak).
    pub seq: u64,
    /// Handler name on the receiving world.
    pub handler: String,
    /// Interface to invoke on the handler.
    pub interface: String,
    /// Method to invoke.
    pub method: String,
    /// Arguments.
    pub args: Vec<Value>,
}

/// The shared routing fabric: one lock-free inbox per world.
pub struct CrossBus {
    inboxes: Vec<Mailbox<CrossMsg>>,
}

impl CrossBus {
    /// Creates a bus connecting `worlds` worlds.
    pub fn new(worlds: usize) -> Arc<CrossBus> {
        Arc::new(CrossBus {
            inboxes: (0..worlds).map(|_| Mailbox::new()).collect(),
        })
    }

    /// Number of connected worlds.
    pub fn worlds(&self) -> usize {
        self.inboxes.len()
    }

    /// True if no world has undelivered messages (exact at a barrier).
    pub fn is_quiescent(&self) -> bool {
        self.inboxes.iter().all(Mailbox::is_empty)
    }
}

/// Per-endpoint statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CrossStats {
    /// Messages posted from this world.
    pub posted: u64,
    /// Messages delivered into this world's AM endpoint.
    pub delivered: u64,
    /// Messages dropped: unknown handler name.
    pub no_handler: u64,
    /// Messages dropped: the world's AM queue was full.
    pub am_full: u64,
}

/// One world's connection to the [`CrossBus`].
///
/// Owned by the world's OS thread: [`CrossEndpoint::post`] is callable
/// from that thread at any time; [`CrossEndpoint::deliver_pending`] runs
/// at the start of each round and feeds due messages — sorted into their
/// deterministic order — through the world's [`AmEndpoint`], where the
/// pop-up engine picks them up like any interrupt.
pub struct CrossEndpoint {
    id: usize,
    bus: Arc<CrossBus>,
    am: Arc<AmEndpoint>,
    round: AtomicU64,
    seq: AtomicU64,
    /// Messages drained early (posted for a later round) parked until due.
    stash: Mutex<Vec<CrossMsg>>,
    handlers: Mutex<BTreeMap<String, ObjRef>>,
    stats: Mutex<CrossStats>,
}

impl CrossEndpoint {
    /// Connects world `id` to the bus, delivering into `am`.
    pub fn new(id: usize, bus: Arc<CrossBus>, am: Arc<AmEndpoint>) -> Arc<CrossEndpoint> {
        assert!(id < bus.worlds(), "endpoint id out of range");
        Arc::new(CrossEndpoint {
            id,
            bus,
            am,
            round: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            stash: Mutex::new(Vec::new()),
            handlers: Mutex::new(BTreeMap::new()),
            stats: Mutex::new(CrossStats::default()),
        })
    }

    /// This endpoint's world id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Registers (or replaces) a named handler object.
    pub fn register_handler(&self, name: impl Into<String>, obj: ObjRef) {
        self.handlers.lock().insert(name.into(), obj);
    }

    /// Enters bulk-synchronous round `round` (called by the pool runner).
    pub fn begin_round(&self, round: u64) {
        self.round.store(round, Ordering::Relaxed);
    }

    /// Posts an active message to world `to`. Returns `false` for an
    /// unknown destination; delivery-side failures (unknown handler,
    /// full queue) show up in the *receiver's* stats, as with any
    /// network.
    pub fn post(
        &self,
        to: usize,
        handler: impl Into<String>,
        interface: impl Into<String>,
        method: impl Into<String>,
        args: Vec<Value>,
    ) -> bool {
        if to >= self.bus.worlds() {
            return false;
        }
        let msg = CrossMsg {
            round: self.round.load(Ordering::Relaxed),
            from: self.id,
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            handler: handler.into(),
            interface: interface.into(),
            method: method.into(),
            args,
        };
        self.bus.inboxes[to].push(msg);
        self.stats.lock().posted += 1;
        true
    }

    /// Delivers every message due this round (posted in an earlier one)
    /// into the world's AM endpoint, in `(round, from, seq)` order.
    /// Returns how many were delivered. Messages posted *for* this round
    /// or later stay parked — that is what makes delivery independent of
    /// which OS thread ran which world first.
    pub fn deliver_pending(&self) -> usize {
        let now = self.round.load(Ordering::Relaxed);
        let mut due = {
            let mut stash = self.stash.lock();
            stash.extend(self.bus.inboxes[self.id].drain());
            let parked = std::mem::take(&mut *stash);
            let (due, later): (Vec<_>, Vec<_>) = parked.into_iter().partition(|m| m.round < now);
            *stash = later;
            due
        };
        due.sort_by_key(|m| (m.round, m.from, m.seq));
        let mut delivered = 0;
        let handlers = self.handlers.lock();
        let mut stats = self.stats.lock();
        for msg in due {
            let Some(target) = handlers.get(&msg.handler) else {
                stats.no_handler += 1;
                continue;
            };
            let posted = self.am.post(ActiveMsg {
                target: target.clone(),
                interface: msg.interface,
                method: msg.method,
                args: msg.args,
            });
            if posted.is_some() {
                delivered += 1;
            } else {
                stats.am_full += 1;
            }
        }
        stats.delivered += delivered as u64;
        delivered
    }

    /// True if nothing is waiting here (inbox and stash both empty).
    pub fn is_idle(&self) -> bool {
        self.bus.inboxes[self.id].is_empty() && self.stash.lock().is_empty()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> CrossStats {
        *self.stats.lock()
    }
}

// ---------------------------------------------------------------------------
// Round barrier
// ---------------------------------------------------------------------------

/// A reusable generation-counting barrier for the pool's
/// bulk-synchronous rounds, blocking on the vendored
/// [`parking_lot::Condvar`] rather than spinning.
pub struct RoundBarrier {
    n: usize,
    state: Mutex<BarrierState>,
    cv: Condvar,
}

struct BarrierState {
    arrived: usize,
    generation: u64,
}

impl RoundBarrier {
    /// Creates a barrier for `n` threads.
    pub fn new(n: usize) -> RoundBarrier {
        RoundBarrier {
            n: n.max(1),
            state: Mutex::new(BarrierState {
                arrived: 0,
                generation: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Blocks until all `n` threads have arrived. Returns `true` on
    /// exactly one thread per generation (the last arriver).
    pub fn wait(&self) -> bool {
        self.wait_then(|| {})
    }

    /// Like [`RoundBarrier::wait`], but the last arriver runs `on_last`
    /// *before* any other thread is released — the hook the pool runner
    /// uses to reset shared per-round counters without a second barrier.
    pub fn wait_then(&self, on_last: impl FnOnce()) -> bool {
        let mut state = self.state.lock();
        state.arrived += 1;
        if state.arrived == self.n {
            on_last();
            state.arrived = 0;
            state.generation = state.generation.wrapping_add(1);
            self.cv.notify_all();
            true
        } else {
            let generation = state.generation;
            self.cv
                .wait_while(&mut state, |s| s.generation == generation);
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        popup::{PopupEngine, PopupMode},
        sched::Scheduler,
    };
    use paramecium_core::{domain::KERNEL_DOMAIN, events::EventService};
    use paramecium_machine::Machine;
    use paramecium_obj::{ObjectBuilder, TypeTag};
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn mailbox_single_thread_fifo() {
        let mb = Mailbox::new();
        assert!(mb.is_empty());
        for i in 0..5 {
            mb.push(i);
        }
        assert!(!mb.is_empty());
        assert_eq!(mb.drain(), vec![0, 1, 2, 3, 4]);
        assert!(mb.is_empty());
        assert_eq!(mb.drain(), Vec::<i32>::new());
    }

    #[test]
    fn mailbox_concurrent_producers_lose_nothing_and_keep_sender_order() {
        const PRODUCERS: u64 = 4;
        const PER: u64 = 500;
        let mb = Arc::new(Mailbox::new());
        std::thread::scope(|s| {
            for p in 0..PRODUCERS {
                let mb = mb.clone();
                s.spawn(move || {
                    for i in 0..PER {
                        mb.push((p, i));
                    }
                });
            }
        });
        let all = mb.drain();
        assert_eq!(all.len(), (PRODUCERS * PER) as usize);
        // Per-producer FIFO order survives the LIFO-swap-reverse dance.
        let mut last = [0u64; PRODUCERS as usize];
        let mut count = [0u64; PRODUCERS as usize];
        for (p, i) in all {
            let p = p as usize;
            assert!(count[p] == 0 || i > last[p], "producer {p} reordered");
            last[p] = i;
            count[p] += 1;
        }
        assert!(count.iter().all(|&c| c == PER));
    }

    #[test]
    fn mailbox_drop_frees_undrained_messages() {
        let live = Arc::new(AtomicUsize::new(0));
        struct Counted(Arc<AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_sub(1, Ordering::SeqCst);
            }
        }
        let mb = Mailbox::new();
        for _ in 0..10 {
            live.fetch_add(1, Ordering::SeqCst);
            mb.push(Counted(live.clone()));
        }
        assert_eq!(live.load(Ordering::SeqCst), 10);
        drop(mb);
        assert_eq!(live.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn barrier_releases_all_threads_with_one_leader() {
        const N: usize = 4;
        let barrier = RoundBarrier::new(N);
        let before = AtomicUsize::new(0);
        let leaders = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..N {
                s.spawn(|| {
                    for _round in 0..50 {
                        before.fetch_add(1, Ordering::SeqCst);
                        let leader = barrier.wait_then(|| {
                            // Runs on the last arriver *before* anyone is
                            // released, so every thread has done this
                            // round's increment and none has started the
                            // next round's. (Checking after release would
                            // race with faster threads re-arriving.)
                            assert_eq!(before.load(Ordering::SeqCst) % N, 0);
                        });
                        if leader {
                            leaders.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                });
            }
        });
        assert_eq!(before.load(Ordering::SeqCst), N * 50);
        assert_eq!(leaders.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn barrier_wait_then_runs_before_release() {
        const N: usize = 3;
        let barrier = RoundBarrier::new(N);
        let counter = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..N {
                s.spawn(|| {
                    for _ in 0..20 {
                        counter.fetch_add(1, Ordering::SeqCst);
                        barrier.wait_then(|| counter.store(0, Ordering::SeqCst));
                        // The reset happened before anyone was released,
                        // so no thread ever observes a stale full count.
                        assert!(counter.load(Ordering::SeqCst) < N);
                    }
                });
            }
        });
    }

    /// A little world-side rig: machine + scheduler + popup engine + AM
    /// endpoint, as the pool assembles per world.
    struct Rig {
        events: Arc<EventService>,
        machine: Arc<Mutex<Machine>>,
        scheduler: Scheduler,
        am: Arc<AmEndpoint>,
    }

    fn rig() -> Rig {
        let machine = Arc::new(Mutex::new(Machine::new()));
        let scheduler = Scheduler::new(machine.clone());
        let engine = PopupEngine::new(scheduler.clone(), PopupMode::Proto);
        let events = Arc::new(EventService::new());
        let am =
            AmEndpoint::install(&events, &engine, machine.clone(), 5, KERNEL_DOMAIN, 64).unwrap();
        Rig {
            events,
            machine,
            scheduler,
            am,
        }
    }

    fn recorder() -> ObjRef {
        ObjectBuilder::new("recorder")
            .state(Vec::<i64>::new())
            .interface("rec", |i| {
                i.method("push", &[TypeTag::Int], TypeTag::Int, |this, args| {
                    let v = args[0].as_int()?;
                    this.with_state(|s: &mut Vec<i64>| {
                        s.push(v);
                        Ok(Value::Int(s.len() as i64))
                    })
                })
            })
            .build()
    }

    #[test]
    fn cross_messages_deliver_sorted_by_sender_then_seq() {
        let bus = CrossBus::new(3);
        let r = rig();
        let recv = CrossEndpoint::new(0, bus.clone(), r.am.clone());
        let target = recorder();
        recv.register_handler("rec", target.clone());

        // Two sender endpoints post concurrently during round 0; the
        // mailbox arrival order is whatever the OS made it.
        let s1 = CrossEndpoint::new(1, bus.clone(), r.am.clone());
        let s2 = CrossEndpoint::new(2, bus.clone(), r.am.clone());
        std::thread::scope(|s| {
            for (ep, base) in [(&s1, 100i64), (&s2, 200i64)] {
                s.spawn(move || {
                    for i in 0..10 {
                        ep.post(0, "rec", "rec", "push", vec![Value::Int(base + i)]);
                    }
                });
            }
        });

        // Round 1: everything posted in round 0 is due, in (from, seq)
        // order — sender 1's messages first, each sender's in post order.
        recv.begin_round(1);
        assert_eq!(recv.deliver_pending(), 20);
        r.events.drain_interrupts(&r.machine);
        r.scheduler.run_until_idle(64);
        let got = target
            .with_state(|s: &mut Vec<i64>| Ok(std::mem::take(s)))
            .unwrap();
        let want: Vec<i64> = (100..110).chain(200..210).collect();
        assert_eq!(got, want);
        assert_eq!(recv.stats().delivered, 20);
        assert!(recv.is_idle());
    }

    #[test]
    fn messages_for_the_current_round_wait_for_the_next() {
        let bus = CrossBus::new(2);
        let r = rig();
        let recv = CrossEndpoint::new(0, bus.clone(), r.am.clone());
        recv.register_handler("rec", recorder());
        let sender = CrossEndpoint::new(1, bus, r.am.clone());

        // The sender is already in round 1 when it posts; the receiver
        // entering round 1 must NOT see the message yet (it was posted
        // "during" round 1, so it is due in round 2).
        sender.begin_round(1);
        sender.post(0, "rec", "rec", "push", vec![Value::Int(7)]);
        recv.begin_round(1);
        assert_eq!(recv.deliver_pending(), 0);
        assert!(!recv.is_idle(), "message parked in the stash");
        recv.begin_round(2);
        assert_eq!(recv.deliver_pending(), 1);
        assert!(recv.is_idle());
    }

    #[test]
    fn unknown_handler_and_destination_are_counted_not_fatal() {
        let bus = CrossBus::new(2);
        let r = rig();
        let recv = CrossEndpoint::new(0, bus.clone(), r.am.clone());
        let sender = CrossEndpoint::new(1, bus, r.am.clone());
        assert!(!sender.post(9, "rec", "rec", "push", vec![]), "bad dest");
        assert!(sender.post(0, "nobody", "rec", "push", vec![Value::Int(1)]));
        recv.begin_round(1);
        assert_eq!(recv.deliver_pending(), 0);
        assert_eq!(recv.stats().no_handler, 1);
    }
}
