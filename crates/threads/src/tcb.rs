//! Thread control blocks and the step-based execution model.

use std::sync::Arc;

use parking_lot::Mutex;

use paramecium_machine::{cost::Cycles, Machine};

/// A thread identifier.
pub type Tid = u64;

/// What a thread body reports at each scheduling point.
pub enum Step {
    /// Keep going later: put me back on the ready queue.
    Yield,
    /// I am waiting on the given waitable (semaphore, channel…); wake me
    /// when it signals.
    Block(Arc<dyn Waitable>),
    /// Finished.
    Done,
}

/// Something a thread can block on. Implemented by the primitives in
/// [`crate::sync`].
pub trait Waitable: Send + Sync {
    /// Parks `tid` on this waitable. The scheduler calls this when a body
    /// returns [`Step::Block`].
    fn park(&self, tid: Tid);
}

/// The body of a thread: called once per scheduling slice.
pub type ThreadBody = Box<dyn FnMut(&mut ThreadCtx) -> Step + Send>;

/// Execution context handed to a running thread body.
pub struct ThreadCtx {
    /// The running thread's id.
    pub tid: Tid,
    /// Machine handle for charging simulated work.
    pub machine: Arc<Mutex<Machine>>,
    /// Slice counter: how many times this body has been entered.
    pub entries: u64,
}

impl ThreadCtx {
    /// Charges `cycles` of simulated work to the machine.
    pub fn work(&self, cycles: Cycles) {
        self.machine.lock().charge(cycles);
    }

    /// Current simulated time.
    pub fn now(&self) -> Cycles {
        self.machine.lock().now()
    }
}

/// The scheduling state of a thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TState {
    /// On the ready queue.
    Ready,
    /// Currently executing.
    Running,
    /// Parked on a waitable.
    Blocked,
    /// Completed; TCB retained until reaped.
    Finished,
}

/// How the thread came to exist (for statistics).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ThreadKind {
    /// Ordinary spawned thread.
    Regular,
    /// A pop-up thread promoted from a proto-thread.
    PromotedPopup,
    /// An eagerly created pop-up thread (the unoptimised baseline).
    EagerPopup,
}

/// A thread control block.
pub struct Tcb {
    /// Thread id.
    pub tid: Tid,
    /// Debug name.
    pub name: String,
    /// Scheduling state.
    pub state: TState,
    /// The body; taken out while running, `None` once finished.
    pub body: Option<ThreadBody>,
    /// Provenance.
    pub kind: ThreadKind,
    /// Times the body has been entered.
    pub entries: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_ctx_charges_machine() {
        let machine = Arc::new(Mutex::new(Machine::new()));
        let ctx = ThreadCtx {
            tid: 1,
            machine: machine.clone(),
            entries: 0,
        };
        ctx.work(123);
        assert_eq!(ctx.now(), 123);
    }
}
