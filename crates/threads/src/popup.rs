//! Pop-up threads with the proto-thread fast path.
//!
//! "Processor events are usually redirected to the thread system to turn
//! them into pop-up threads. Once interrupts are pop-up threads, they can
//! block, and be scheduled just like any other ordinary thread. For
//! efficiency reasons, we delay the actual creation of the pop-up thread
//! by creating a proto-thread. Only when the proto-thread is about to
//! block or be rescheduled do we turn it into a real thread." (paper,
//! section 3; see also van Doorn & Tanenbaum \[10\]).
//!
//! The engine registers with the nucleus's event service. On each event it
//! either:
//!
//! - **Proto mode** (the paper's optimisation): charges the cheap
//!   proto-thread cost and runs the handler *immediately, in interrupt
//!   context*. If the handler completes without blocking — the common case
//!   for well-written handlers — no thread ever exists. If it blocks or
//!   yields, the engine *promotes*: pays the promotion cost and hands the
//!   half-run body to the scheduler with full thread semantics.
//! - **Eager mode** (the baseline): always pays full thread creation and
//!   queues the handler for the scheduler.

use std::sync::{
    atomic::{AtomicU64, Ordering},
    Arc,
};

use parking_lot::Mutex;

use paramecium_core::{domain::DomainId, events::EventService};
use paramecium_machine::{trap::Trap, Machine};

use crate::{
    sched::Scheduler,
    tcb::{Step, ThreadBody, ThreadCtx, ThreadKind},
};

/// Creation strategy for pop-up threads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PopupMode {
    /// Proto-thread fast path (the paper's design).
    Proto,
    /// Always create a full thread (the baseline the paper improves on).
    Eager,
}

/// Pop-up statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PopupStats {
    /// Events handled entirely in the proto-thread (no thread created).
    pub fast_path: u64,
    /// Proto-threads promoted to full threads.
    pub promotions: u64,
    /// Eagerly created pop-up threads.
    pub eager_creations: u64,
}

/// A factory producing one handler body per event. The body is the
/// handler's *continuation*: it is entered once in interrupt context and,
/// if it does not finish, re-entered later with thread semantics.
pub type PopupFactory = Arc<dyn Fn(&Trap) -> ThreadBody + Send + Sync>;

/// The pop-up thread engine.
pub struct PopupEngine {
    scheduler: Scheduler,
    machine: Arc<Mutex<Machine>>,
    mode: Mutex<PopupMode>,
    fast_path: AtomicU64,
    promotions: AtomicU64,
    eager: AtomicU64,
}

impl PopupEngine {
    /// Creates an engine in the given mode.
    pub fn new(scheduler: Scheduler, mode: PopupMode) -> Arc<Self> {
        let machine = scheduler.core().machine().clone();
        Arc::new(PopupEngine {
            scheduler,
            machine,
            mode: Mutex::new(mode),
            fast_path: AtomicU64::new(0),
            promotions: AtomicU64::new(0),
            eager: AtomicU64::new(0),
        })
    }

    /// Switches modes (for the ablation experiment).
    pub fn set_mode(&self, mode: PopupMode) {
        *self.mode.lock() = mode;
    }

    /// Registers this engine for `vector` with the event service: events
    /// on that vector become pop-up threads running `factory`'s bodies in
    /// `domain`.
    pub fn attach(
        self: &Arc<Self>,
        events: &EventService,
        vector: u32,
        domain: DomainId,
        factory: PopupFactory,
    ) -> paramecium_core::CoreResult<()> {
        let engine = self.clone();
        events.register(
            vector,
            domain,
            Arc::new(move |trap| engine.handle(trap, &factory)),
        )?;
        Ok(())
    }

    /// Handles one event according to the current mode.
    pub fn handle(&self, trap: &Trap, factory: &PopupFactory) {
        match *self.mode.lock() {
            PopupMode::Proto => self.handle_proto(trap, factory),
            PopupMode::Eager => self.handle_eager(trap, factory),
        }
    }

    fn handle_proto(&self, trap: &Trap, factory: &PopupFactory) {
        // Proto-thread: borrowed stack, no TCB — just the cheap setup cost.
        {
            let mut m = self.machine.lock();
            let cost = m.cost.proto_thread_create;
            m.charge(cost);
        }
        let mut body = factory(trap);
        // Run immediately, in interrupt context.
        let mut ctx = ThreadCtx {
            tid: 0, // Proto-threads have no identity yet.
            machine: self.machine.clone(),
            entries: 1,
        };
        match body(&mut ctx) {
            Step::Done => {
                // Fast path: handled to completion, no thread was created.
                self.fast_path.fetch_add(1, Ordering::Relaxed);
            }
            step => {
                // About to block or be rescheduled: promote to a real
                // thread now.
                {
                    let mut m = self.machine.lock();
                    let cost = m.cost.proto_thread_promote;
                    m.charge(cost);
                }
                self.promotions.fetch_add(1, Ordering::Relaxed);
                let resumed = Mutex::new(Some((step, body)));
                // The promoted body must first honour the step the proto
                // run ended with (e.g. actually park on the waitable).
                let wrapped: ThreadBody = Box::new(move |ctx| {
                    let mut slot = resumed.lock();
                    match slot.take() {
                        Some((pending, body)) => {
                            *slot = Some((Step::Yield, body));
                            match pending {
                                Step::Block(w) => Step::Block(w),
                                _ => {
                                    // Proto run asked to be rescheduled;
                                    // continue the body on this entry.
                                    let (_, mut body) = slot.take().expect("just stored");
                                    let s = body(ctx);
                                    *slot = Some((Step::Yield, body));
                                    s
                                }
                            }
                        }
                        None => Step::Done,
                    }
                });
                // Promotion pays the *promotion* cost, not full creation.
                self.scheduler.spawn_kind(
                    format!("popup:v{}", trap.vector),
                    wrapped,
                    ThreadKind::PromotedPopup,
                    false,
                );
            }
        }
    }

    fn handle_eager(&self, trap: &Trap, factory: &PopupFactory) {
        self.eager.fetch_add(1, Ordering::Relaxed);
        let body = factory(trap);
        // Full creation cost, and the handler waits for the scheduler.
        self.scheduler.spawn_kind(
            format!("popup:v{}", trap.vector),
            body,
            ThreadKind::EagerPopup,
            true,
        );
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> PopupStats {
        PopupStats {
            fast_path: self.fast_path.load(Ordering::Relaxed),
            promotions: self.promotions.load(Ordering::Relaxed),
            eager_creations: self.eager.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::Semaphore;
    use paramecium_core::domain::KERNEL_DOMAIN;
    use paramecium_machine::trap::TrapKind;

    fn setup(
        mode: PopupMode,
    ) -> (
        Arc<PopupEngine>,
        Scheduler,
        Arc<EventService>,
        Arc<Mutex<Machine>>,
    ) {
        let machine = Arc::new(Mutex::new(Machine::new()));
        let scheduler = Scheduler::new(machine.clone());
        let engine = PopupEngine::new(scheduler.clone(), mode);
        let events = Arc::new(EventService::new());
        (engine, scheduler, events, machine)
    }

    fn counting_factory(hits: Arc<AtomicU64>) -> PopupFactory {
        Arc::new(move |_trap| {
            let h = hits.clone();
            Box::new(move |_ctx| {
                h.fetch_add(1, Ordering::Relaxed);
                Step::Done
            })
        })
    }

    #[test]
    fn proto_fast_path_avoids_thread_creation() {
        let (engine, scheduler, events, machine) = setup(PopupMode::Proto);
        let hits = Arc::new(AtomicU64::new(0));
        engine
            .attach(
                &events,
                TrapKind::Breakpoint.vector(),
                KERNEL_DOMAIN,
                counting_factory(hits.clone()),
            )
            .unwrap();
        for _ in 0..10 {
            events.deliver(&machine, &Trap::exception(TrapKind::Breakpoint));
        }
        // Handled synchronously: no scheduler involvement at all.
        assert_eq!(hits.load(Ordering::Relaxed), 10);
        assert_eq!(engine.stats().fast_path, 10);
        assert_eq!(engine.stats().promotions, 0);
        assert_eq!(scheduler.thread_count(), 0);
    }

    #[test]
    fn eager_mode_always_creates_threads() {
        let (engine, scheduler, events, machine) = setup(PopupMode::Eager);
        let hits = Arc::new(AtomicU64::new(0));
        engine
            .attach(
                &events,
                TrapKind::Breakpoint.vector(),
                KERNEL_DOMAIN,
                counting_factory(hits.clone()),
            )
            .unwrap();
        for _ in 0..5 {
            events.deliver(&machine, &Trap::exception(TrapKind::Breakpoint));
        }
        // Nothing ran yet: the handlers sit on the ready queue.
        assert_eq!(hits.load(Ordering::Relaxed), 0);
        assert_eq!(engine.stats().eager_creations, 5);
        scheduler.run_until_idle(100);
        assert_eq!(hits.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn proto_is_cheaper_than_eager_for_nonblocking_handlers() {
        let (proto, _, events_p, machine_p) = setup(PopupMode::Proto);
        let hits = Arc::new(AtomicU64::new(0));
        proto
            .attach(
                &events_p,
                TrapKind::Breakpoint.vector(),
                KERNEL_DOMAIN,
                counting_factory(hits.clone()),
            )
            .unwrap();
        let t0 = machine_p.lock().now();
        for _ in 0..100 {
            events_p.deliver(&machine_p, &Trap::exception(TrapKind::Breakpoint));
        }
        let proto_cost = machine_p.lock().now() - t0;

        let (eager, scheduler_e, events_e, machine_e) = setup(PopupMode::Eager);
        let hits_e = Arc::new(AtomicU64::new(0));
        eager
            .attach(
                &events_e,
                TrapKind::Breakpoint.vector(),
                KERNEL_DOMAIN,
                counting_factory(hits_e.clone()),
            )
            .unwrap();
        let t0 = machine_e.lock().now();
        for _ in 0..100 {
            events_e.deliver(&machine_e, &Trap::exception(TrapKind::Breakpoint));
            scheduler_e.run_until_idle(10);
        }
        let eager_cost = machine_e.lock().now() - t0;
        assert!(
            proto_cost * 2 < eager_cost,
            "proto {proto_cost} not ≪ eager {eager_cost}"
        );
    }

    #[test]
    fn blocking_handler_is_promoted_with_correct_semantics() {
        let (engine, scheduler, events, machine) = setup(PopupMode::Proto);
        let sem = Semaphore::new(scheduler.core().clone(), 0);
        let done = Arc::new(AtomicU64::new(0));

        let (sem_f, done_f) = (sem.clone(), done.clone());
        let factory: PopupFactory = Arc::new(move |_trap| {
            let (sem, done) = (sem_f.clone(), done_f.clone());
            let mut acquired = false;
            Box::new(move |_ctx| {
                if !acquired {
                    if sem.try_acquire() {
                        acquired = true;
                    } else {
                        return Step::Block(sem.waitable());
                    }
                }
                done.fetch_add(1, Ordering::Relaxed);
                Step::Done
            })
        });
        engine
            .attach(
                &events,
                TrapKind::Breakpoint.vector(),
                KERNEL_DOMAIN,
                factory,
            )
            .unwrap();

        events.deliver(&machine, &Trap::exception(TrapKind::Breakpoint));
        // The handler blocked: promoted, not finished.
        assert_eq!(engine.stats().promotions, 1);
        assert_eq!(engine.stats().fast_path, 0);
        scheduler.run_until_idle(10);
        assert_eq!(done.load(Ordering::Relaxed), 0);

        // Signal: the promoted pop-up thread resumes like a normal thread.
        sem.release();
        scheduler.run_until_idle(10);
        assert_eq!(done.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn promotion_charges_less_than_creation_on_fast_path_mix() {
        // With a 10% blocking rate, proto mode should beat eager mode.
        let block_every = 10u64;

        let run = |mode: PopupMode| -> u64 {
            let (engine, scheduler, events, machine) = setup(mode);
            let sem = Semaphore::new(scheduler.core().clone(), 0);
            let counter = Arc::new(AtomicU64::new(0));
            let (sem_f, ctr) = (sem.clone(), counter.clone());
            let factory: PopupFactory = Arc::new(move |_| {
                let n = ctr.fetch_add(1, Ordering::Relaxed);
                let sem = sem_f.clone();
                let mut waited = false;
                Box::new(move |_| {
                    if n % block_every == 0 && !waited {
                        waited = true;
                        if !sem.try_acquire() {
                            return Step::Block(sem.waitable());
                        }
                    }
                    Step::Done
                })
            });
            engine
                .attach(
                    &events,
                    TrapKind::Breakpoint.vector(),
                    KERNEL_DOMAIN,
                    factory,
                )
                .unwrap();
            let t0 = machine.lock().now();
            for _ in 0..100 {
                events.deliver(&machine, &Trap::exception(TrapKind::Breakpoint));
                scheduler.run_until_idle(10);
                sem.release();
                scheduler.run_until_idle(10);
            }
            let elapsed = machine.lock().now() - t0;
            elapsed
        };

        let proto_cost = run(PopupMode::Proto);
        let eager_cost = run(PopupMode::Eager);
        assert!(
            proto_cost < eager_cost,
            "proto {proto_cost} not < eager {eager_cost}"
        );
    }
}
