//! Synchronisation primitives for simulated threads.
//!
//! Each primitive holds a reference to the scheduler core so a release can
//! move parked threads back to the ready queue. The usage idiom inside a
//! thread body is *try, then block*:
//!
//! ```text
//! if sem.try_acquire() { …proceed… } else { return Step::Block(sem.waitable()) }
//! ```

use std::{collections::VecDeque, sync::Arc};

use parking_lot::Mutex;

use crate::{
    sched::SchedCore,
    tcb::{Tid, Waitable},
};

/// A counting semaphore.
pub struct Semaphore {
    core: Arc<SchedCore>,
    inner: Arc<SemInner>,
}

struct SemInner {
    state: Mutex<SemState>,
}

struct SemState {
    permits: i64,
    waiters: VecDeque<Tid>,
}

/// The waitable half of a semaphore (what thread bodies block on).
pub struct SemWait {
    inner: Arc<SemInner>,
    core: Arc<SchedCore>,
}

impl Waitable for SemWait {
    fn park(&self, tid: Tid) {
        let wake_now = {
            let mut st = self.inner.state.lock();
            if st.permits > 0 {
                // A release raced in between the failed try and the park:
                // wake immediately so the thread re-tries (Mesa
                // semantics — the permit stays up for grabs).
                true
            } else {
                st.waiters.push_back(tid);
                false
            }
        };
        if wake_now {
            self.core.wake(tid);
        }
    }
}

impl Semaphore {
    /// Creates a semaphore with `permits` initial permits.
    pub fn new(core: Arc<SchedCore>, permits: i64) -> Arc<Self> {
        Arc::new(Semaphore {
            core,
            inner: Arc::new(SemInner {
                state: Mutex::new(SemState {
                    permits,
                    waiters: VecDeque::new(),
                }),
            }),
        })
    }

    /// Attempts to take a permit without blocking.
    pub fn try_acquire(&self) -> bool {
        let mut st = self.inner.state.lock();
        if st.permits > 0 {
            st.permits -= 1;
            true
        } else {
            false
        }
    }

    /// Returns the waitable to block on after a failed
    /// [`Semaphore::try_acquire`].
    pub fn waitable(&self) -> Arc<dyn Waitable> {
        Arc::new(SemWait {
            inner: self.inner.clone(),
            core: self.core.clone(),
        })
    }

    /// Releases a permit, waking one waiter if any. Mesa semantics: the
    /// permit is made available and the waiter re-tries — it is not handed
    /// the permit directly, so a third party may race for it.
    pub fn release(&self) {
        let woken = {
            let mut st = self.inner.state.lock();
            st.permits += 1;
            st.waiters.pop_front()
        };
        if let Some(tid) = woken {
            self.core.wake(tid);
        }
    }

    /// Current permit count (for tests).
    pub fn permits(&self) -> i64 {
        self.inner.state.lock().permits
    }

    /// Number of parked threads.
    pub fn waiter_count(&self) -> usize {
        self.inner.state.lock().waiters.len()
    }
}

/// A mutex for simulated threads: a binary semaphore.
pub struct SimMutex {
    sem: Arc<Semaphore>,
}

impl SimMutex {
    /// Creates an unlocked mutex.
    pub fn new(core: Arc<SchedCore>) -> Arc<Self> {
        Arc::new(SimMutex {
            sem: Semaphore::new(core, 1),
        })
    }

    /// Attempts to lock without blocking.
    pub fn try_lock(&self) -> bool {
        self.sem.try_acquire()
    }

    /// The waitable to block on when locked.
    pub fn waitable(&self) -> Arc<dyn Waitable> {
        self.sem.waitable()
    }

    /// Unlocks.
    pub fn unlock(&self) {
        self.sem.release();
    }
}

/// A bounded FIFO channel of dynamic values, usable from thread bodies.
pub struct Channel<T: Send> {
    core: Arc<SchedCore>,
    state: Mutex<ChanState<T>>,
    capacity: usize,
}

struct ChanState<T> {
    queue: VecDeque<T>,
    recv_waiters: VecDeque<Tid>,
}

/// The waitable half of a channel receive.
pub struct ChanWait<T: Send + 'static> {
    chan: Arc<Channel<T>>,
}

impl<T: Send + 'static> Waitable for ChanWait<T> {
    fn park(&self, tid: Tid) {
        let wake_now = {
            let mut st = self.chan.state.lock();
            if st.queue.is_empty() {
                st.recv_waiters.push_back(tid);
                false
            } else {
                true
            }
        };
        if wake_now {
            self.chan.core.wake(tid);
        }
    }
}

impl<T: Send + 'static> Channel<T> {
    /// Creates a channel with the given capacity.
    pub fn new(core: Arc<SchedCore>, capacity: usize) -> Arc<Self> {
        Arc::new(Channel {
            core,
            state: Mutex::new(ChanState {
                queue: VecDeque::new(),
                recv_waiters: VecDeque::new(),
            }),
            capacity: capacity.max(1),
        })
    }

    /// Sends without blocking. Returns `false` (dropping the value is the
    /// caller's choice) when full — senders in this system are interrupt
    /// handlers, which must never block.
    pub fn try_send(self: &Arc<Self>, value: T) -> bool {
        let woken = {
            let mut st = self.state.lock();
            if st.queue.len() >= self.capacity {
                return false;
            }
            st.queue.push_back(value);
            st.recv_waiters.pop_front()
        };
        if let Some(tid) = woken {
            self.core.wake(tid);
        }
        true
    }

    /// Receives without blocking.
    pub fn try_recv(self: &Arc<Self>) -> Option<T> {
        self.state.lock().queue.pop_front()
    }

    /// The waitable to block on when empty.
    pub fn waitable(self: &Arc<Self>) -> Arc<dyn Waitable> {
        Arc::new(ChanWait { chan: self.clone() })
    }

    /// Queue length.
    pub fn len(self: &Arc<Self>) -> usize {
        self.state.lock().queue.len()
    }

    /// True if empty.
    pub fn is_empty(self: &Arc<Self>) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{sched::Scheduler, tcb::Step};
    use paramecium_machine::Machine;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn sched() -> Scheduler {
        Scheduler::new(Arc::new(Mutex::new(Machine::new())))
    }

    #[test]
    fn semaphore_blocks_and_wakes() {
        let s = sched();
        let sem = Semaphore::new(s.core().clone(), 0);
        let got = Arc::new(AtomicU64::new(0));

        let (sem_c, got_c) = (sem.clone(), got.clone());
        let waiter = s.spawn(
            "waiter",
            Box::new(move |_| {
                if sem_c.try_acquire() {
                    got_c.fetch_add(1, Ordering::Relaxed);
                    Step::Done
                } else {
                    Step::Block(sem_c.waitable())
                }
            }),
        );

        s.run_until_idle(10);
        assert_eq!(s.state(waiter), Some(crate::tcb::TState::Blocked));
        assert_eq!(sem.waiter_count(), 1);

        sem.release();
        s.run_until_idle(10);
        assert_eq!(got.load(Ordering::Relaxed), 1);
        assert_eq!(s.state(waiter), Some(crate::tcb::TState::Finished));
    }

    #[test]
    fn semaphore_race_between_try_and_park_is_safe() {
        // Release lands after the failed try_acquire but before park: the
        // park must observe the permit and self-wake.
        let s = sched();
        let sem = Semaphore::new(s.core().clone(), 0);
        let done = Arc::new(AtomicU64::new(0));
        let (sem_c, done_c) = (sem.clone(), done.clone());
        let sem_racer = sem.clone();
        s.spawn(
            "waiter",
            Box::new(move |_| {
                if sem_c.try_acquire() {
                    done_c.fetch_add(1, Ordering::Relaxed);
                    Step::Done
                } else {
                    // The "interrupt" fires right here, before we park.
                    sem_racer.release();
                    Step::Block(sem_c.waitable())
                }
            }),
        );
        s.run_until_idle(10);
        assert_eq!(done.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn mutex_provides_mutual_exclusion() {
        let s = sched();
        let mutex = SimMutex::new(s.core().clone());
        let in_critical = Arc::new(AtomicU64::new(0));
        let max_seen = Arc::new(AtomicU64::new(0));

        for i in 0..4 {
            let (m, ic, ms) = (mutex.clone(), in_critical.clone(), max_seen.clone());
            s.spawn(
                format!("t{i}"),
                Box::new(move |ctx| {
                    match ctx.entries {
                        1 => {
                            if m.try_lock() {
                                let now = ic.fetch_add(1, Ordering::Relaxed) + 1;
                                ms.fetch_max(now, Ordering::Relaxed);
                                Step::Yield // Hold the lock across a slice.
                            } else {
                                // Re-enter at entries=1 semantics: use Block.
                                Step::Block(m.waitable())
                            }
                        }
                        _ => {
                            if ic.load(Ordering::Relaxed) > 0 {
                                ic.fetch_sub(1, Ordering::Relaxed);
                                m.unlock();
                                Step::Done
                            } else if m.try_lock() {
                                let now = ic.fetch_add(1, Ordering::Relaxed) + 1;
                                ms.fetch_max(now, Ordering::Relaxed);
                                Step::Yield
                            } else {
                                Step::Block(m.waitable())
                            }
                        }
                    }
                }),
            );
        }
        s.run_until_idle(200);
        assert_eq!(
            max_seen.load(Ordering::Relaxed),
            1,
            "two threads in the critical section"
        );
    }

    #[test]
    fn channel_send_recv_fifo() {
        let s = sched();
        let chan: Arc<Channel<i32>> = Channel::new(s.core().clone(), 8);
        chan.try_send(1);
        chan.try_send(2);
        assert_eq!(chan.try_recv(), Some(1));
        assert_eq!(chan.try_recv(), Some(2));
        assert_eq!(chan.try_recv(), None);
    }

    #[test]
    fn channel_capacity_drops_excess() {
        let s = sched();
        let chan: Arc<Channel<i32>> = Channel::new(s.core().clone(), 2);
        assert!(chan.try_send(1));
        assert!(chan.try_send(2));
        assert!(!chan.try_send(3));
        assert_eq!(chan.len(), 2);
    }

    #[test]
    fn channel_wakes_blocked_receiver() {
        let s = sched();
        let chan: Arc<Channel<i32>> = Channel::new(s.core().clone(), 8);
        let got = Arc::new(AtomicU64::new(0));
        let (c, g) = (chan.clone(), got.clone());
        s.spawn(
            "rx",
            Box::new(move |_| match c.try_recv() {
                Some(v) => {
                    g.store(v as u64, Ordering::Relaxed);
                    Step::Done
                }
                None => Step::Block(c.waitable()),
            }),
        );
        s.run_until_idle(10);
        assert_eq!(got.load(Ordering::Relaxed), 0);
        chan.try_send(42);
        s.run_until_idle(10);
        assert_eq!(got.load(Ordering::Relaxed), 42);
    }
}
