//! Wire-codec property suite.
//!
//! Three contracts, each pinned as a property:
//!
//! 1. **Round-trip**: `parse(serialize(x)) == x` for every codec —
//!    Ethernet, IPv4, UDP, ARP and TCP — over arbitrary field values and
//!    payloads.
//! 2. **Totality**: no parser may panic on any input. Both raw random
//!    bytes and randomly mutated *valid* frames are thrown at every
//!    parser; only `Ok`/`Err` may come back.
//! 3. **Checksum integrity end-to-end**: a frame whose IP or TCP
//!    checksum no longer verifies is counted `malformed` by the protocol
//!    objects and never reaches the application.

use paramecium_netstack::tcp::{make_tcp, STAT_MALFORMED};
use paramecium_netstack::testkit::{self, test_driver, MY_IP, MY_MAC, PEER_IP, PEER_MAC};
use paramecium_netstack::wire::{
    build_tcp_frame, build_udp_frame, parse_tcp_frame, parse_udp_frame, tcp_flags, ArpPacket,
    EthHeader, Ipv4Header, TcpHeader, UdpHeader, ARP_OP_REPLY, ARP_OP_REQUEST, ETHERTYPE_IPV4,
    ETH_HLEN, IPPROTO_TCP, IPPROTO_UDP, IPV4_HLEN,
};
use paramecium_obj::Value;
use proptest::prelude::*;

fn mac(bytes: &[u8]) -> [u8; 6] {
    bytes[..6].try_into().unwrap()
}

proptest! {
    #[test]
    fn prop_eth_roundtrip(
        dst in proptest::collection::vec(any::<u8>(), 6..7),
        src in proptest::collection::vec(any::<u8>(), 6..7),
        ethertype in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let hdr = EthHeader { dst: mac(&dst), src: mac(&src), ethertype };
        let frame = hdr.build(&payload);
        let (parsed, rest) = EthHeader::parse(&frame).unwrap();
        prop_assert_eq!(parsed, hdr);
        prop_assert_eq!(rest, &payload[..]);
    }

    #[test]
    fn prop_ipv4_roundtrip(
        src in any::<u32>(),
        dst in any::<u32>(),
        ttl in any::<u8>(),
        proto in any::<u8>(),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let built = Ipv4Header { src, dst, proto, ttl, total_len: 0 }.build(&payload);
        let (parsed, rest) = Ipv4Header::parse(&built).unwrap();
        prop_assert_eq!(parsed.src, src);
        prop_assert_eq!(parsed.dst, dst);
        prop_assert_eq!(parsed.ttl, ttl);
        prop_assert_eq!(parsed.proto, proto);
        prop_assert_eq!(usize::from(parsed.total_len), IPV4_HLEN + payload.len());
        prop_assert_eq!(rest, &payload[..]);
    }

    #[test]
    fn prop_udp_roundtrip(
        src_port in any::<u16>(),
        dst_port in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let built = UdpHeader::build(src_port, dst_port, &payload);
        let (parsed, rest) = UdpHeader::parse(&built).unwrap();
        prop_assert_eq!(parsed.src_port, src_port);
        prop_assert_eq!(parsed.dst_port, dst_port);
        prop_assert_eq!(rest, &payload[..]);
    }

    #[test]
    fn prop_arp_roundtrip(
        request in any::<bool>(),
        sender_mac in proptest::collection::vec(any::<u8>(), 6..7),
        target_mac in proptest::collection::vec(any::<u8>(), 6..7),
        sender_ip in any::<u32>(),
        target_ip in any::<u32>(),
    ) {
        let pkt = ArpPacket {
            op: if request { ARP_OP_REQUEST } else { ARP_OP_REPLY },
            sender_mac: mac(&sender_mac),
            sender_ip,
            target_mac: mac(&target_mac),
            target_ip,
        };
        prop_assert_eq!(ArpPacket::parse(&pkt.build()).unwrap(), pkt);
    }

    #[test]
    fn prop_tcp_roundtrip(
        src_port in any::<u16>(),
        dst_port in any::<u16>(),
        seq in any::<u32>(),
        ack in any::<u32>(),
        flags in any::<u8>(),
        window in any::<u16>(),
        src_ip in any::<u32>(),
        dst_ip in any::<u32>(),
        payload in proptest::collection::vec(any::<u8>(), 0..1000),
    ) {
        // The codec carries exactly the five RFC-793 flag bits.
        let hdr = TcpHeader { src_port, dst_port, seq, ack, flags: flags & 0x1F, window };
        let frame = build_tcp_frame(
            MY_MAC, PEER_MAC, src_ip, dst_ip, &hdr, &payload,
        );
        let (ip, parsed, rest) = parse_tcp_frame(&frame).unwrap();
        prop_assert_eq!(ip.src, src_ip);
        prop_assert_eq!(ip.dst, dst_ip);
        prop_assert_eq!(ip.proto, IPPROTO_TCP);
        prop_assert_eq!(parsed, hdr);
        prop_assert_eq!(rest, &payload[..]);
    }

    /// Totality over raw garbage: every parser must return, never panic.
    #[test]
    fn prop_parsers_never_panic_on_random_bytes(
        data in proptest::collection::vec(any::<u8>(), 0..200),
        ip_a in any::<u32>(),
        ip_b in any::<u32>(),
    ) {
        let _ = EthHeader::parse(&data);
        let _ = Ipv4Header::parse(&data);
        let _ = UdpHeader::parse(&data);
        let _ = ArpPacket::parse(&data);
        let _ = TcpHeader::parse(&data, ip_a, ip_b);
        let _ = parse_udp_frame(&data);
        let _ = parse_tcp_frame(&data);
    }

    /// Totality over mutated *valid* frames: start from a well-formed
    /// TCP segment, apply arbitrary byte writes and a truncation, and
    /// every parser must still return without panicking.
    #[test]
    fn prop_parsers_never_panic_on_mutated_frames(
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        writes in proptest::collection::vec(any::<u32>(), 0..8),
        cut in any::<u16>(),
    ) {
        let hdr = TcpHeader {
            src_port: 1, dst_port: 2, seq: 3, ack: 4,
            flags: tcp_flags::SYN | tcp_flags::ACK, window: 100,
        };
        let mut frame = build_tcp_frame(MY_MAC, PEER_MAC, PEER_IP, MY_IP, &hdr, &payload);
        for w in writes {
            let idx = (w as usize) % frame.len();
            frame[idx] = (w >> 16) as u8;
        }
        frame.truncate(usize::from(cut) % (frame.len() + 1));
        let _ = parse_tcp_frame(&frame);
        let _ = parse_udp_frame(&frame);
        let _ = EthHeader::parse(&frame);
        let _ = Ipv4Header::parse(&frame[ETH_HLEN.min(frame.len())..]);
        let _ = ArpPacket::parse(&frame);
    }

    /// End-to-end: corrupt any single byte past the Ethernet header of a
    /// valid TCP SYN — breaking the IP or TCP checksum — and the TCP
    /// object counts the frame `malformed` and never surfaces a
    /// connection.
    #[test]
    fn prop_checksum_corrupt_tcp_is_malformed_not_delivered(
        off_pick in any::<u32>(),
        flip in 1u8..=255,
    ) {
        let (mem, driver) = test_driver();
        let machine = mem.machine().clone();
        let tcp = make_tcp(machine.clone(), driver, MY_IP, MY_MAC);
        tcp.invoke("tcp", "listen", &[Value::Int(80)]).unwrap();

        let hdr = TcpHeader {
            src_port: 5555, dst_port: 80, seq: 1000, ack: 0,
            flags: tcp_flags::SYN, window: 4096,
        };
        let mut frame =
            build_tcp_frame(PEER_MAC, MY_MAC, PEER_IP, MY_IP, &hdr, &[]);
        // Any offset from the IP header onward is protected by a checksum.
        let off = ETH_HLEN + (off_pick as usize) % (frame.len() - ETH_HLEN);
        frame[off] ^= flip;
        testkit::inject_frame(&machine, frame);
        tcp.invoke("tcp", "pump", &[]).unwrap();

        let stats = tcp.invoke("tcp", "stats", &[]).unwrap();
        let malformed = stats.as_list().unwrap()[STAT_MALFORMED].as_int().unwrap();
        prop_assert_eq!(malformed, 1, "corrupt frame must be counted malformed");
        let accepted = tcp
            .invoke("tcp", "accept", &[Value::Int(80)])
            .unwrap()
            .as_int()
            .unwrap();
        prop_assert_eq!(accepted, -1, "corrupt SYN must not open a connection");
    }

    /// Same contract on the UDP side: a frame whose IP header checksum
    /// fails is counted malformed by the UDP stack and never queued.
    #[test]
    fn prop_checksum_corrupt_udp_is_malformed_not_delivered(
        off_pick in any::<u32>(),
        flip in 1u8..=255,
    ) {
        use paramecium_netstack::make_udp_stack;

        let (mem, driver) = test_driver();
        let machine = mem.machine().clone();
        let stack = make_udp_stack(driver, MY_IP, MY_MAC);
        stack.invoke("udp", "bind", &[Value::Int(53)]).unwrap();

        let mut frame = build_udp_frame(
            PEER_MAC, MY_MAC, PEER_IP, MY_IP, 9999, 53, b"payload",
        );
        // UDP/IPv4 leaves the UDP checksum unset, so only the IP header
        // is integrity-protected; corrupt inside it.
        let off = ETH_HLEN + (off_pick as usize) % IPV4_HLEN;
        frame[off] ^= flip;
        testkit::inject_frame(&machine, frame);
        stack.invoke("udp", "pump", &[]).unwrap();

        let stats = stack.invoke("udp", "stats", &[]).unwrap();
        let s = stats.as_list().unwrap().to_vec();
        // stats: [delivered, no_listener, filtered, malformed]
        prop_assert_eq!(s[0].as_int().unwrap(), 0, "nothing may be delivered");
        prop_assert_eq!(s[3].as_int().unwrap(), 1, "must be counted malformed");
        let got = stack.invoke("udp", "recv_from", &[Value::Int(53)]).unwrap();
        prop_assert_eq!(got.as_list().unwrap().len(), 0);
    }
}

/// The flip side of the corruption properties: the exact same injection
/// path with an *untouched* frame is delivered, so the malformed
/// counters above are meaningful.
#[test]
fn pristine_syn_is_delivered_not_malformed() {
    let (mem, driver) = test_driver();
    let machine = mem.machine().clone();
    let tcp = make_tcp(machine.clone(), driver, MY_IP, MY_MAC);
    tcp.invoke("tcp", "listen", &[Value::Int(80)]).unwrap();
    let hdr = TcpHeader {
        src_port: 5555,
        dst_port: 80,
        seq: 1000,
        ack: 0,
        flags: tcp_flags::SYN,
        window: 4096,
    };
    let frame = build_tcp_frame(PEER_MAC, MY_MAC, PEER_IP, MY_IP, &hdr, &[]);
    testkit::inject_frame(&machine, frame);
    tcp.invoke("tcp", "pump", &[]).unwrap();
    let stats = tcp.invoke("tcp", "stats", &[]).unwrap();
    assert_eq!(
        stats.as_list().unwrap()[STAT_MALFORMED].as_int().unwrap(),
        0
    );
    // The endpoint answered with a SYN-ACK: the frame was delivered and
    // processed, not discarded.
    let reply = testkit::tx_take(&machine).expect("listener must answer the SYN");
    let (_, tcp_hdr, _) = parse_tcp_frame(&reply).unwrap();
    assert_eq!(tcp_hdr.flags, tcp_flags::SYN | tcp_flags::ACK);
    assert_eq!(tcp_hdr.ack, hdr.seq.wrapping_add(1));
}

/// Sanity pin for the constants the corruption properties rely on.
#[test]
fn ethertype_and_proto_constants_are_wire_values() {
    assert_eq!(ETHERTYPE_IPV4, 0x0800);
    assert_eq!(IPPROTO_TCP, 6);
    assert_eq!(IPPROTO_UDP, 17);
}
