//! Wire formats: Ethernet, IPv4, ARP, UDP, TCP, and the Internet
//! checksum.
//!
//! Minimal but real codecs — headers are parsed from and serialised to
//! bytes, checksums are computed and verified (including the TCP
//! pseudo-header checksum), so protocol-processing components in the
//! experiments do genuine per-packet work. Every parser is total: no
//! input, however mangled, may panic — that contract is pinned by the
//! codec robustness property suite.

/// A MAC address.
pub type Mac = [u8; 6];

/// The Ethernet broadcast address.
pub const MAC_BROADCAST: Mac = [0xFF; 6];

/// EtherType for IPv4.
pub const ETHERTYPE_IPV4: u16 = 0x0800;

/// EtherType for ARP.
pub const ETHERTYPE_ARP: u16 = 0x0806;

/// IP protocol number for UDP.
pub const IPPROTO_UDP: u8 = 17;

/// IP protocol number for TCP.
pub const IPPROTO_TCP: u8 = 6;

/// Ethernet header length.
pub const ETH_HLEN: usize = 14;

/// IPv4 header length (no options).
pub const IPV4_HLEN: usize = 20;

/// UDP header length.
pub const UDP_HLEN: usize = 8;

/// TCP header length (no options).
pub const TCP_HLEN: usize = 20;

/// ARP packet length (Ethernet/IPv4).
pub const ARP_PLEN: usize = 28;

/// Errors parsing packets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Buffer shorter than the header demands.
    Truncated(&'static str),
    /// A field was invalid (version, length, checksum…).
    Invalid(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated(what) => write!(f, "truncated {what}"),
            WireError::Invalid(what) => write!(f, "invalid {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// The 16-bit ones'-complement Internet checksum (RFC 1071).
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

/// An Ethernet II header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EthHeader {
    /// Destination MAC.
    pub dst: Mac,
    /// Source MAC.
    pub src: Mac,
    /// EtherType.
    pub ethertype: u16,
}

impl EthHeader {
    /// Parses the header, returning it and the payload offset.
    pub fn parse(frame: &[u8]) -> Result<(EthHeader, &[u8]), WireError> {
        if frame.len() < ETH_HLEN {
            return Err(WireError::Truncated("ethernet header"));
        }
        Ok((
            EthHeader {
                dst: frame[0..6].try_into().expect("6 bytes"),
                src: frame[6..12].try_into().expect("6 bytes"),
                ethertype: u16::from_be_bytes([frame[12], frame[13]]),
            },
            &frame[ETH_HLEN..],
        ))
    }

    /// Serialises the header followed by `payload`.
    pub fn build(&self, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(ETH_HLEN + payload.len());
        out.extend_from_slice(&self.dst);
        out.extend_from_slice(&self.src);
        out.extend_from_slice(&self.ethertype.to_be_bytes());
        out.extend_from_slice(payload);
        out
    }
}

/// An IPv4 header (no options).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Ipv4Header {
    /// Source address.
    pub src: u32,
    /// Destination address.
    pub dst: u32,
    /// Payload protocol.
    pub proto: u8,
    /// Time to live.
    pub ttl: u8,
    /// Total length (header + payload).
    pub total_len: u16,
}

impl Ipv4Header {
    /// Parses and checksum-verifies the header, returning it and the
    /// payload.
    pub fn parse(data: &[u8]) -> Result<(Ipv4Header, &[u8]), WireError> {
        if data.len() < IPV4_HLEN {
            return Err(WireError::Truncated("ipv4 header"));
        }
        if data[0] >> 4 != 4 {
            return Err(WireError::Invalid("ip version"));
        }
        let ihl = usize::from(data[0] & 0x0F) * 4;
        if ihl != IPV4_HLEN {
            return Err(WireError::Invalid("ip options unsupported"));
        }
        if internet_checksum(&data[..IPV4_HLEN]) != 0 {
            return Err(WireError::Invalid("ip checksum"));
        }
        let total_len = u16::from_be_bytes([data[2], data[3]]);
        if usize::from(total_len) < IPV4_HLEN || usize::from(total_len) > data.len() {
            return Err(WireError::Invalid("ip total length"));
        }
        let header = Ipv4Header {
            src: u32::from_be_bytes(data[12..16].try_into().expect("4 bytes")),
            dst: u32::from_be_bytes(data[16..20].try_into().expect("4 bytes")),
            proto: data[9],
            ttl: data[8],
            total_len,
        };
        Ok((header, &data[IPV4_HLEN..usize::from(total_len)]))
    }

    /// Serialises the header (checksum filled in) followed by `payload`.
    pub fn build(&self, payload: &[u8]) -> Vec<u8> {
        let total = (IPV4_HLEN + payload.len()) as u16;
        let mut h = [0u8; IPV4_HLEN];
        h[0] = 0x45; // Version 4, IHL 5.
        h[2..4].copy_from_slice(&total.to_be_bytes());
        h[8] = self.ttl;
        h[9] = self.proto;
        h[12..16].copy_from_slice(&self.src.to_be_bytes());
        h[16..20].copy_from_slice(&self.dst.to_be_bytes());
        let csum = internet_checksum(&h);
        h[10..12].copy_from_slice(&csum.to_be_bytes());
        let mut out = Vec::with_capacity(IPV4_HLEN + payload.len());
        out.extend_from_slice(&h);
        out.extend_from_slice(payload);
        out
    }
}

/// A UDP header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Length (header + payload).
    pub len: u16,
}

impl UdpHeader {
    /// Parses the header, returning it and the payload. (Checksum 0 = not
    /// computed, as UDP/IPv4 permits.)
    pub fn parse(data: &[u8]) -> Result<(UdpHeader, &[u8]), WireError> {
        if data.len() < UDP_HLEN {
            return Err(WireError::Truncated("udp header"));
        }
        let len = u16::from_be_bytes([data[4], data[5]]);
        if usize::from(len) < UDP_HLEN || usize::from(len) > data.len() {
            return Err(WireError::Invalid("udp length"));
        }
        Ok((
            UdpHeader {
                src_port: u16::from_be_bytes([data[0], data[1]]),
                dst_port: u16::from_be_bytes([data[2], data[3]]),
                len,
            },
            &data[UDP_HLEN..usize::from(len)],
        ))
    }

    /// Serialises the header (length computed, checksum 0) followed by
    /// `payload`.
    pub fn build(src_port: u16, dst_port: u16, payload: &[u8]) -> Vec<u8> {
        let len = (UDP_HLEN + payload.len()) as u16;
        let mut out = Vec::with_capacity(usize::from(len));
        out.extend_from_slice(&src_port.to_be_bytes());
        out.extend_from_slice(&dst_port.to_be_bytes());
        out.extend_from_slice(&len.to_be_bytes());
        out.extend_from_slice(&0u16.to_be_bytes());
        out.extend_from_slice(payload);
        out
    }
}

/// ARP operation: request.
pub const ARP_OP_REQUEST: u16 = 1;

/// ARP operation: reply.
pub const ARP_OP_REPLY: u16 = 2;

/// An ARP packet (Ethernet/IPv4 flavour only).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArpPacket {
    /// Operation: [`ARP_OP_REQUEST`] or [`ARP_OP_REPLY`].
    pub op: u16,
    /// Sender hardware address.
    pub sender_mac: Mac,
    /// Sender protocol address.
    pub sender_ip: u32,
    /// Target hardware address (zero in requests).
    pub target_mac: Mac,
    /// Target protocol address.
    pub target_ip: u32,
}

impl ArpPacket {
    /// Parses an ARP packet (the Ethernet payload).
    pub fn parse(data: &[u8]) -> Result<ArpPacket, WireError> {
        if data.len() < ARP_PLEN {
            return Err(WireError::Truncated("arp packet"));
        }
        if u16::from_be_bytes([data[0], data[1]]) != 1 {
            return Err(WireError::Invalid("arp hardware type"));
        }
        if u16::from_be_bytes([data[2], data[3]]) != ETHERTYPE_IPV4 {
            return Err(WireError::Invalid("arp protocol type"));
        }
        if data[4] != 6 || data[5] != 4 {
            return Err(WireError::Invalid("arp address lengths"));
        }
        let op = u16::from_be_bytes([data[6], data[7]]);
        if op != ARP_OP_REQUEST && op != ARP_OP_REPLY {
            return Err(WireError::Invalid("arp operation"));
        }
        Ok(ArpPacket {
            op,
            sender_mac: data[8..14].try_into().expect("6 bytes"),
            sender_ip: u32::from_be_bytes(data[14..18].try_into().expect("4 bytes")),
            target_mac: data[18..24].try_into().expect("6 bytes"),
            target_ip: u32::from_be_bytes(data[24..28].try_into().expect("4 bytes")),
        })
    }

    /// Serialises the packet.
    pub fn build(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(ARP_PLEN);
        out.extend_from_slice(&1u16.to_be_bytes()); // Ethernet.
        out.extend_from_slice(&ETHERTYPE_IPV4.to_be_bytes());
        out.push(6);
        out.push(4);
        out.extend_from_slice(&self.op.to_be_bytes());
        out.extend_from_slice(&self.sender_mac);
        out.extend_from_slice(&self.sender_ip.to_be_bytes());
        out.extend_from_slice(&self.target_mac);
        out.extend_from_slice(&self.target_ip.to_be_bytes());
        out
    }

    /// Wraps the packet in an Ethernet frame from `src_mac` to `dst_mac`.
    pub fn to_frame(&self, src_mac: Mac, dst_mac: Mac) -> Vec<u8> {
        EthHeader {
            dst: dst_mac,
            src: src_mac,
            ethertype: ETHERTYPE_ARP,
        }
        .build(&self.build())
    }
}

/// TCP flag bits.
pub mod tcp_flags {
    /// No more data from sender.
    pub const FIN: u8 = 0x01;
    /// Synchronise sequence numbers.
    pub const SYN: u8 = 0x02;
    /// Reset the connection.
    pub const RST: u8 = 0x04;
    /// Push function (ignored; carried for realism).
    pub const PSH: u8 = 0x08;
    /// Acknowledgment field significant.
    pub const ACK: u8 = 0x10;
}

/// A TCP header (no options; data offset fixed at 5 words).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TcpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number of the first payload byte (or of SYN/FIN).
    pub seq: u32,
    /// Acknowledgment number (valid when `flags & ACK != 0`).
    pub ack: u32,
    /// Flag bits (see [`tcp_flags`]).
    pub flags: u8,
    /// Receive window the sender advertises.
    pub window: u16,
}

/// The TCP checksum: over a pseudo-header (src/dst IP, protocol, TCP
/// length) plus the TCP header and payload (RFC 793).
fn tcp_checksum(src_ip: u32, dst_ip: u32, segment: &[u8]) -> u16 {
    let mut pseudo = Vec::with_capacity(12 + segment.len());
    pseudo.extend_from_slice(&src_ip.to_be_bytes());
    pseudo.extend_from_slice(&dst_ip.to_be_bytes());
    pseudo.push(0);
    pseudo.push(IPPROTO_TCP);
    pseudo.extend_from_slice(&(segment.len() as u16).to_be_bytes());
    pseudo.extend_from_slice(segment);
    internet_checksum(&pseudo)
}

impl TcpHeader {
    /// Parses and checksum-verifies a TCP segment (needs the IP addresses
    /// for the pseudo-header). Returns the header and the payload.
    pub fn parse(data: &[u8], src_ip: u32, dst_ip: u32) -> Result<(TcpHeader, &[u8]), WireError> {
        if data.len() < TCP_HLEN {
            return Err(WireError::Truncated("tcp header"));
        }
        let data_off = usize::from(data[12] >> 4) * 4;
        if data_off != TCP_HLEN {
            return Err(WireError::Invalid("tcp options unsupported"));
        }
        if tcp_checksum(src_ip, dst_ip, data) != 0 {
            return Err(WireError::Invalid("tcp checksum"));
        }
        Ok((
            TcpHeader {
                src_port: u16::from_be_bytes([data[0], data[1]]),
                dst_port: u16::from_be_bytes([data[2], data[3]]),
                seq: u32::from_be_bytes(data[4..8].try_into().expect("4 bytes")),
                ack: u32::from_be_bytes(data[8..12].try_into().expect("4 bytes")),
                flags: data[13] & 0x1F,
                window: u16::from_be_bytes([data[14], data[15]]),
            },
            &data[TCP_HLEN..],
        ))
    }

    /// Serialises the segment (checksum filled in) followed by `payload`.
    pub fn build(&self, src_ip: u32, dst_ip: u32, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(TCP_HLEN + payload.len());
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&self.ack.to_be_bytes());
        out.push(5 << 4); // Data offset 5 words, no options.
        out.push(self.flags & 0x1F);
        out.extend_from_slice(&self.window.to_be_bytes());
        out.extend_from_slice(&[0u8; 4]); // Checksum + urgent pointer.
        out.extend_from_slice(payload);
        let csum = tcp_checksum(src_ip, dst_ip, &out);
        out[16..18].copy_from_slice(&csum.to_be_bytes());
        out
    }
}

/// Builds a full Ethernet/IPv4/TCP segment frame.
#[allow(clippy::too_many_arguments)]
pub fn build_tcp_frame(
    src_mac: Mac,
    dst_mac: Mac,
    src_ip: u32,
    dst_ip: u32,
    tcp: &TcpHeader,
    payload: &[u8],
) -> Vec<u8> {
    let seg = tcp.build(src_ip, dst_ip, payload);
    let ip = Ipv4Header {
        src: src_ip,
        dst: dst_ip,
        proto: IPPROTO_TCP,
        ttl: 64,
        total_len: 0, // Filled by build.
    }
    .build(&seg);
    EthHeader {
        dst: dst_mac,
        src: src_mac,
        ethertype: ETHERTYPE_IPV4,
    }
    .build(&ip)
}

/// Parses a full frame down to the TCP payload. Returns
/// `(ip, tcp, payload)`.
pub fn parse_tcp_frame(frame: &[u8]) -> Result<(Ipv4Header, TcpHeader, &[u8]), WireError> {
    let (eth, ip_bytes) = EthHeader::parse(frame)?;
    if eth.ethertype != ETHERTYPE_IPV4 {
        return Err(WireError::Invalid("ethertype"));
    }
    let (ip, tcp_bytes) = Ipv4Header::parse(ip_bytes)?;
    if ip.proto != IPPROTO_TCP {
        return Err(WireError::Invalid("ip protocol"));
    }
    let (tcp, payload) = TcpHeader::parse(tcp_bytes, ip.src, ip.dst)?;
    Ok((ip, tcp, payload))
}

/// Builds a full Ethernet/IPv4/UDP datagram — the workload generator used
/// throughout tests and benches.
#[allow(clippy::too_many_arguments)]
pub fn build_udp_frame(
    src_mac: Mac,
    dst_mac: Mac,
    src_ip: u32,
    dst_ip: u32,
    src_port: u16,
    dst_port: u16,
    payload: &[u8],
) -> Vec<u8> {
    let udp = UdpHeader::build(src_port, dst_port, payload);
    let ip = Ipv4Header {
        src: src_ip,
        dst: dst_ip,
        proto: IPPROTO_UDP,
        ttl: 64,
        total_len: 0, // Filled by build.
    }
    .build(&udp);
    EthHeader {
        dst: dst_mac,
        src: src_mac,
        ethertype: ETHERTYPE_IPV4,
    }
    .build(&ip)
}

/// Parses a full frame down to the UDP payload. Returns
/// `(ip, udp, payload)`.
pub fn parse_udp_frame(frame: &[u8]) -> Result<(Ipv4Header, UdpHeader, &[u8]), WireError> {
    let (eth, ip_bytes) = EthHeader::parse(frame)?;
    if eth.ethertype != ETHERTYPE_IPV4 {
        return Err(WireError::Invalid("ethertype"));
    }
    let (ip, udp_bytes) = Ipv4Header::parse(ip_bytes)?;
    if ip.proto != IPPROTO_UDP {
        return Err(WireError::Invalid("ip protocol"));
    }
    let (udp, payload) = UdpHeader::parse(udp_bytes)?;
    Ok((ip, udp, payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const MAC_A: Mac = [2, 0, 0, 0, 0, 1];
    const MAC_B: Mac = [2, 0, 0, 0, 0, 2];

    #[test]
    fn checksum_known_vector() {
        // RFC 1071 example data.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(internet_checksum(&data), !0xddf2u16);
        // Checksum over data including its checksum verifies to zero.
        let mut with = data.to_vec();
        let c = internet_checksum(&data);
        with.extend_from_slice(&c.to_be_bytes());
        assert_eq!(internet_checksum(&with), 0);
    }

    #[test]
    fn odd_length_checksums_pad() {
        assert_eq!(internet_checksum(&[0xFF]), !0xFF00u16);
    }

    #[test]
    fn full_frame_roundtrip() {
        let frame = build_udp_frame(MAC_A, MAC_B, 0x0A000001, 0x0A000002, 1234, 53, b"query");
        let (ip, udp, payload) = parse_udp_frame(&frame).unwrap();
        assert_eq!(ip.src, 0x0A000001);
        assert_eq!(ip.dst, 0x0A000002);
        assert_eq!(ip.proto, IPPROTO_UDP);
        assert_eq!(udp.src_port, 1234);
        assert_eq!(udp.dst_port, 53);
        assert_eq!(payload, b"query");
    }

    #[test]
    fn corrupted_ip_checksum_is_detected() {
        let mut frame = build_udp_frame(MAC_A, MAC_B, 1, 2, 10, 20, b"x");
        frame[ETH_HLEN + 8] ^= 0xFF; // Mangle the TTL.
        assert_eq!(
            parse_udp_frame(&frame),
            Err(WireError::Invalid("ip checksum"))
        );
    }

    #[test]
    fn truncations_are_rejected() {
        let frame = build_udp_frame(MAC_A, MAC_B, 1, 2, 10, 20, b"hello");
        for cut in [0, 5, ETH_HLEN - 1, ETH_HLEN + 3, ETH_HLEN + IPV4_HLEN - 1] {
            assert!(parse_udp_frame(&frame[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn non_ip_and_non_udp_rejected() {
        let eth = EthHeader {
            dst: MAC_A,
            src: MAC_B,
            ethertype: 0x0806,
        };
        assert!(parse_udp_frame(&eth.build(&[0u8; 40])).is_err());
        // IPv4 but TCP.
        let ip = Ipv4Header {
            src: 1,
            dst: 2,
            proto: 6,
            ttl: 64,
            total_len: 0,
        }
        .build(&[0u8; 20]);
        let frame = EthHeader {
            dst: MAC_A,
            src: MAC_B,
            ethertype: ETHERTYPE_IPV4,
        }
        .build(&ip);
        assert_eq!(
            parse_udp_frame(&frame),
            Err(WireError::Invalid("ip protocol"))
        );
    }

    #[test]
    fn arp_roundtrip_and_validation() {
        let req = ArpPacket {
            op: ARP_OP_REQUEST,
            sender_mac: MAC_A,
            sender_ip: 0x0A00_0001,
            target_mac: [0; 6],
            target_ip: 0x0A00_0002,
        };
        let frame = req.to_frame(MAC_A, MAC_BROADCAST);
        let (eth, payload) = EthHeader::parse(&frame).unwrap();
        assert_eq!(eth.ethertype, ETHERTYPE_ARP);
        assert_eq!(ArpPacket::parse(payload).unwrap(), req);
        // A mangled hardware type is rejected.
        let mut bad = req.build();
        bad[0] = 9;
        assert!(ArpPacket::parse(&bad).is_err());
    }

    #[test]
    fn tcp_roundtrip_and_checksum() {
        let hdr = TcpHeader {
            src_port: 4000,
            dst_port: 80,
            seq: 0xDEAD_BEEF,
            ack: 0x0102_0304,
            flags: tcp_flags::SYN | tcp_flags::ACK,
            window: 8192,
        };
        let frame = build_tcp_frame(MAC_A, MAC_B, 1, 2, &hdr, b"hello tcp");
        let (ip, tcp, payload) = parse_tcp_frame(&frame).unwrap();
        assert_eq!(ip.proto, IPPROTO_TCP);
        assert_eq!(tcp, hdr);
        assert_eq!(payload, b"hello tcp");
        // The TCP checksum covers the payload: corrupting one payload
        // byte (untouched by the IP header checksum) must be caught.
        let mut mangled = frame.clone();
        let last = mangled.len() - 1;
        mangled[last] ^= 0x01;
        assert_eq!(
            parse_tcp_frame(&mangled),
            Err(WireError::Invalid("tcp checksum"))
        );
    }

    proptest! {
        #[test]
        fn prop_roundtrip_arbitrary_payloads(
            payload in proptest::collection::vec(any::<u8>(), 0..1400),
            src_port in any::<u16>(),
            dst_port in any::<u16>(),
            src_ip in any::<u32>(),
            dst_ip in any::<u32>(),
        ) {
            let frame = build_udp_frame(MAC_A, MAC_B, src_ip, dst_ip, src_port, dst_port, &payload);
            let (ip, udp, got) = parse_udp_frame(&frame).unwrap();
            prop_assert_eq!(ip.src, src_ip);
            prop_assert_eq!(ip.dst, dst_ip);
            prop_assert_eq!(udp.src_port, src_port);
            prop_assert_eq!(udp.dst_port, dst_port);
            prop_assert_eq!(got, &payload[..]);
        }

        #[test]
        fn prop_ip_header_checksum_self_verifies(
            src in any::<u32>(), dst in any::<u32>(), ttl in any::<u8>(),
        ) {
            let built = Ipv4Header { src, dst, proto: IPPROTO_UDP, ttl, total_len: 0 }.build(b"payload");
            prop_assert_eq!(internet_checksum(&built[..IPV4_HLEN]), 0);
        }

        #[test]
        fn prop_single_bit_flips_in_ip_header_detected(
            payload in proptest::collection::vec(any::<u8>(), 8..64),
            bit in 0usize..(IPV4_HLEN * 8),
        ) {
            let frame = build_udp_frame(MAC_A, MAC_B, 0xC0A80001, 0xC0A80002, 7, 9, &payload);
            let mut mangled = frame.clone();
            mangled[ETH_HLEN + bit / 8] ^= 1 << (bit % 8);
            if mangled != frame {
                // Any single-bit error in the IP header must be caught.
                prop_assert!(parse_udp_frame(&mangled).is_err());
            }
        }
    }
}
