//! The routing object: one `netdev` spanning several NIC driver
//! instances.
//!
//! [`make_router`] takes N interfaces — each an ordinary `netdev` object
//! (a NIC driver on its own device, a monitor around one, a simulated
//! link endpoint) plus that interface's IP/MAC — and exports:
//!
//! - the plain `netdev` interface, so a protocol object (UDP/TCP stack)
//!   layers on the router exactly as it layers on a single driver:
//!   `send` picks the egress interface by longest-prefix match on the
//!   IPv4 destination, `recv` drains the member devices round-robin;
//! - a `route` interface for the table itself:
//!   - `add_route(prefix: int, len: int, ifindex: int) -> unit`,
//!   - `del_route(prefix: int, len: int) -> unit` — runtime removal (the
//!     chaos drills' route-flap primitive),
//!   - `lookup(ip: int) -> int` — matching ifindex, `-1` if none,
//!   - `probe_window() -> int` / `set_if_up(ifindex, up)` /
//!     `if_health() -> list` — dead-gateway detection: an interface that
//!     transmits for [`DEAD_AFTER_WINDOWS`] consecutive windows without
//!     receiving anything is marked dead, traffic fails over to the next
//!     matching route, and any received frame heals it,
//!   - `forward() -> int` — transit forwarding: drain every member and
//!     re-emit frames routed to a *different* interface (TTL decremented,
//!     IP checksum recomputed, Ethernet rewritten); frames addressed to
//!     one of the router's own IPs queue for local `recv`. Returns frames
//!     moved,
//!   - `stats() -> list [forwarded, local, no_route, ttl_expired,
//!     malformed, failover, unreachable, dead_marks]`,
//!   - `route_stats() -> list of [prefix, len, ifindex, packets, bytes]`.
//!
//! Frames a `netdev send` cannot route (no matching prefix) are counted
//! and dropped rather than erroring: the router models a best-effort IP
//! hop, and per-route counters are the per-route stats the experiments
//! read.

use std::collections::VecDeque;

use paramecium_obj::{ObjError, ObjRef, ObjectBuilder, TypeTag, Value};

use crate::wire::{self, EthHeader, Ipv4Header, Mac, ETHERTYPE_IPV4};

/// One router interface: a netdev plus its L2/L3 identity.
pub struct RouteIf {
    /// The underlying `netdev` object.
    pub dev: ObjRef,
    /// IP address owned by this interface.
    pub ip: u32,
    /// Hardware address of this interface.
    pub mac: Mac,
}

/// A routing-table entry.
struct RouteEntry {
    prefix: u32,
    len: u8,
    ifindex: usize,
    packets: u64,
    bytes: u64,
}

impl RouteEntry {
    fn matches(&self, ip: u32) -> bool {
        let mask = if self.len == 0 {
            0
        } else {
            u32::MAX << (32 - u32::from(self.len))
        };
        (ip ^ self.prefix) & mask == 0
    }
}

/// Consecutive tx-without-rx probe windows before an interface's lower
/// driver is declared dead and traffic fails over (see `probe_window`).
pub const DEAD_AFTER_WINDOWS: u32 = 3;

/// Dead-gateway health for one interface. A *window* is the span between
/// two `probe_window` calls (the drill scheduler closes one per round or
/// per N rounds): transmitting all window without hearing anything back
/// is one miss; [`DEAD_AFTER_WINDOWS`] consecutive misses mark the lower
/// driver dead. Any received frame heals it instantly — receipt is proof
/// of life, so recovery needs no probe cycles.
#[derive(Default)]
struct IfHealth {
    tx_win: u64,
    rx_win: u64,
    misses: u32,
    dead: bool,
}

/// Outcome of a liveness-aware route lookup.
enum AliveLookup {
    /// Usable entry; `failed_over` when a better-matching route was
    /// skipped because its interface is dead.
    Via { entry: usize, failed_over: bool },
    /// Routes match but every matching interface is dead.
    AllDead,
    /// Nothing matches.
    NoRoute,
}

/// Router state.
struct RouterState {
    ifs: Vec<RouteIf>,
    /// Sorted by prefix length, longest first — lookup is first match.
    table: Vec<RouteEntry>,
    /// Per-interface dead-gateway detection state (parallel to `ifs`).
    health: Vec<IfHealth>,
    /// Frames addressed to one of our own IPs, surfaced through `recv`.
    local: VecDeque<bytes::Bytes>,
    /// Round-robin cursor for `recv`.
    next_if: usize,
    forwarded: u64,
    delivered_local: u64,
    no_route: u64,
    ttl_expired: u64,
    malformed: u64,
    /// Frames routed around a dead interface to a worse-matching route.
    failover: u64,
    /// Frames dropped because every matching route's interface was dead.
    unreachable: u64,
    /// Times an interface was marked dead.
    dead_marks: u64,
}

impl RouterState {
    fn lookup(&mut self, ip: u32) -> Option<usize> {
        self.table.iter().position(|r| r.matches(ip))
    }

    /// Longest-prefix match that skips dead interfaces: the best route
    /// whose lower driver is alive wins, so a dead gateway fails over to
    /// the next matching (typically shorter-prefix) route.
    fn lookup_alive(&self, ip: u32) -> AliveLookup {
        let mut dead_match = false;
        for (idx, r) in self.table.iter().enumerate() {
            if !r.matches(ip) {
                continue;
            }
            if self.health[r.ifindex].dead {
                dead_match = true;
                continue;
            }
            return AliveLookup::Via {
                entry: idx,
                failed_over: dead_match,
            };
        }
        if dead_match {
            AliveLookup::AllDead
        } else {
            AliveLookup::NoRoute
        }
    }

    fn note_tx(&mut self, ifindex: usize) {
        self.health[ifindex].tx_win += 1;
    }

    /// A frame arrived on `ifindex`: proof of life, heal immediately.
    fn note_rx(&mut self, ifindex: usize) {
        let h = &mut self.health[ifindex];
        h.rx_win += 1;
        h.misses = 0;
        h.dead = false;
    }

    fn is_local(&self, ip: u32) -> bool {
        self.ifs.iter().any(|i| i.ip == ip)
    }

    /// Routes one egress frame: LPM on the IPv4 destination, charge the
    /// route's counters, send out the chosen interface.
    fn route_out(&mut self, frame: &bytes::Bytes) -> Result<bool, ObjError> {
        let dst = match parse_ipv4_dst(frame) {
            Some(dst) => dst,
            None => {
                self.malformed += 1;
                return Ok(false);
            }
        };
        match self.lookup_alive(dst) {
            AliveLookup::Via { entry, failed_over } => {
                if failed_over {
                    self.failover += 1;
                }
                let e = &mut self.table[entry];
                e.packets += 1;
                e.bytes += frame.len() as u64;
                let ifindex = e.ifindex;
                self.note_tx(ifindex);
                self.ifs[ifindex]
                    .dev
                    .invoke("netdev", "send", &[Value::Bytes(frame.clone())])?;
                Ok(true)
            }
            AliveLookup::AllDead => {
                self.unreachable += 1;
                Ok(false)
            }
            AliveLookup::NoRoute => {
                self.no_route += 1;
                Ok(false)
            }
        }
    }

    /// Transit path for one inbound frame on interface `rx_if`.
    fn forward_one(&mut self, rx_if: usize, frame: bytes::Bytes) -> Result<bool, ObjError> {
        let Ok((eth, ip_bytes)) = EthHeader::parse(&frame) else {
            self.malformed += 1;
            return Ok(false);
        };
        if eth.ethertype != ETHERTYPE_IPV4 {
            // Non-IP (e.g. ARP handled by a layer below) — deliver locally.
            self.local.push_back(frame);
            self.delivered_local += 1;
            return Ok(false);
        }
        let Ok((ip, _)) = Ipv4Header::parse(ip_bytes) else {
            self.malformed += 1;
            return Ok(false);
        };
        if self.is_local(ip.dst) {
            self.local.push_back(frame);
            self.delivered_local += 1;
            return Ok(false);
        }
        let entry_idx = match self.lookup_alive(ip.dst) {
            AliveLookup::Via { entry, failed_over } => {
                if failed_over {
                    self.failover += 1;
                }
                entry
            }
            AliveLookup::AllDead => {
                self.unreachable += 1;
                return Ok(false);
            }
            AliveLookup::NoRoute => {
                self.no_route += 1;
                return Ok(false);
            }
        };
        let out_if = self.table[entry_idx].ifindex;
        if out_if == rx_if {
            // Routed back where it came from: count it as no-route rather
            // than ping-ponging on the same wire.
            self.no_route += 1;
            return Ok(false);
        }
        if ip.ttl <= 1 {
            self.ttl_expired += 1;
            return Ok(false);
        }
        // Rewrite: TTL-1, fresh IP checksum, our egress MAC as source.
        let mut out = frame.to_vec();
        out[wire::ETH_HLEN + 8] = ip.ttl - 1;
        out[wire::ETH_HLEN + 10] = 0;
        out[wire::ETH_HLEN + 11] = 0;
        let csum = wire::internet_checksum(&out[wire::ETH_HLEN..wire::ETH_HLEN + wire::IPV4_HLEN]);
        out[wire::ETH_HLEN + 10..wire::ETH_HLEN + 12].copy_from_slice(&csum.to_be_bytes());
        out[0..6].copy_from_slice(&wire::MAC_BROADCAST); // Next hop resolves L2.
        out[6..12].copy_from_slice(&self.ifs[out_if].mac);
        let entry = &mut self.table[entry_idx];
        entry.packets += 1;
        entry.bytes += out.len() as u64;
        self.note_tx(out_if);
        self.ifs[out_if]
            .dev
            .invoke("netdev", "send", &[Value::Bytes(bytes::Bytes::from(out))])?;
        self.forwarded += 1;
        Ok(true)
    }
}

/// Extracts the IPv4 destination from an Ethernet frame without full
/// validation (routing only needs the address; checksum verification
/// happens at the receiving host).
fn parse_ipv4_dst(frame: &[u8]) -> Option<u32> {
    let (eth, ip_bytes) = EthHeader::parse(frame).ok()?;
    if eth.ethertype != ETHERTYPE_IPV4 || ip_bytes.len() < wire::IPV4_HLEN {
        return None;
    }
    Some(u32::from_be_bytes(
        ip_bytes[16..20].try_into().expect("4 bytes"),
    ))
}

/// Builds a router over the given interfaces (≥1; two NIC driver
/// instances is the canonical gateway shape).
pub fn make_router(ifs: Vec<RouteIf>) -> ObjRef {
    assert!(!ifs.is_empty(), "router needs at least one interface");
    let health = ifs.iter().map(|_| IfHealth::default()).collect();
    ObjectBuilder::new("router")
        .state(RouterState {
            ifs,
            table: Vec::new(),
            health,
            local: VecDeque::new(),
            next_if: 0,
            forwarded: 0,
            delivered_local: 0,
            no_route: 0,
            ttl_expired: 0,
            malformed: 0,
            failover: 0,
            unreachable: 0,
            dead_marks: 0,
        })
        .interface("netdev", |i| {
            i.method("send", &[TypeTag::Bytes], TypeTag::Unit, |this, args| {
                let frame = args[0].as_bytes()?.clone();
                this.with_state(|s: &mut RouterState| {
                    s.route_out(&frame)?;
                    Ok(Value::Unit)
                })
            })
            .method("recv", &[], TypeTag::Bytes, |this, _| {
                this.with_state(|s: &mut RouterState| {
                    if let Some(frame) = s.local.pop_front() {
                        return Ok(Value::Bytes(frame));
                    }
                    // Round-robin over members, one full cycle.
                    for _ in 0..s.ifs.len() {
                        let idx = s.next_if;
                        s.next_if = (s.next_if + 1) % s.ifs.len();
                        let frame = s.ifs[idx].dev.invoke("netdev", "recv", &[])?;
                        if !frame.as_bytes()?.is_empty() {
                            s.note_rx(idx);
                            return Ok(frame);
                        }
                    }
                    Ok(Value::Bytes(bytes::Bytes::new()))
                })
            })
            .method("pending", &[], TypeTag::Int, |this, _| {
                this.with_state(|s: &mut RouterState| {
                    let mut total = s.local.len() as i64;
                    for rif in &s.ifs {
                        total += rif.dev.invoke("netdev", "pending", &[])?.as_int()?;
                    }
                    Ok(Value::Int(total))
                })
            })
            .method("stats", &[], TypeTag::List, |this, _| {
                // Aggregate member stats element-wise (they share the
                // driver's [rx, tx, rx_bytes, tx_bytes, dropped] shape).
                this.with_state(|s: &mut RouterState| {
                    let mut agg: Vec<i64> = Vec::new();
                    for rif in &s.ifs {
                        let stats = rif.dev.invoke("netdev", "stats", &[])?;
                        for (i, v) in stats.as_list()?.iter().enumerate() {
                            let n = v.as_int().unwrap_or(0);
                            if i < agg.len() {
                                agg[i] += n;
                            } else {
                                agg.push(n);
                            }
                        }
                    }
                    Ok(Value::List(agg.into_iter().map(Value::Int).collect()))
                })
            })
        })
        .interface("route", |i| {
            i.method(
                "add_route",
                &[TypeTag::Int, TypeTag::Int, TypeTag::Int],
                TypeTag::Unit,
                |this, args| {
                    let prefix = args[0].as_int()? as u32;
                    let len = args[1].as_int()?;
                    let ifindex = args[2].as_int()?;
                    if !(0..=32).contains(&len) {
                        return Err(ObjError::failed("prefix length must be 0..=32"));
                    }
                    this.with_state(|s: &mut RouterState| {
                        if ifindex < 0 || ifindex as usize >= s.ifs.len() {
                            return Err(ObjError::failed(format!(
                                "ifindex {ifindex} out of range"
                            )));
                        }
                        let len = len as u8;
                        let entry = RouteEntry {
                            prefix,
                            len,
                            ifindex: ifindex as usize,
                            packets: 0,
                            bytes: 0,
                        };
                        // Keep longest-prefix-first order; replace an
                        // existing entry for the same prefix/len.
                        if let Some(old) = s
                            .table
                            .iter_mut()
                            .find(|r| r.prefix == prefix && r.len == len)
                        {
                            *old = entry;
                        } else {
                            let at = s.table.partition_point(|r| r.len >= len);
                            s.table.insert(at, entry);
                        }
                        Ok(Value::Unit)
                    })
                },
            )
            .method(
                "del_route",
                &[TypeTag::Int, TypeTag::Int],
                TypeTag::Unit,
                |this, args| {
                    let prefix = args[0].as_int()? as u32;
                    let len = args[1].as_int()?;
                    if !(0..=32).contains(&len) {
                        return Err(ObjError::failed("prefix length must be 0..=32"));
                    }
                    this.with_state(|s: &mut RouterState| {
                        let len = len as u8;
                        match s
                            .table
                            .iter()
                            .position(|r| r.prefix == prefix && r.len == len)
                        {
                            Some(at) => {
                                s.table.remove(at);
                                Ok(Value::Unit)
                            }
                            None => Err(ObjError::failed(format!(
                                "no route {prefix:#010x}/{len} to delete"
                            ))),
                        }
                    })
                },
            )
            .method("lookup", &[TypeTag::Int], TypeTag::Int, |this, args| {
                let ip = args[0].as_int()? as u32;
                this.with_state(|s: &mut RouterState| {
                    Ok(Value::Int(match s.lookup(ip) {
                        Some(idx) => s.table[idx].ifindex as i64,
                        None => -1,
                    }))
                })
            })
            .method("forward", &[], TypeTag::Int, |this, _| {
                this.with_state(|s: &mut RouterState| {
                    let mut moved = 0i64;
                    for rx_if in 0..s.ifs.len() {
                        loop {
                            let frame = s.ifs[rx_if].dev.invoke("netdev", "recv", &[])?;
                            let frame = frame.as_bytes()?.clone();
                            if frame.is_empty() {
                                break;
                            }
                            s.note_rx(rx_if);
                            if s.forward_one(rx_if, frame)? {
                                moved += 1;
                            }
                        }
                    }
                    Ok(Value::Int(moved))
                })
            })
            .method("stats", &[], TypeTag::List, |this, _| {
                this.with_state(|s: &mut RouterState| {
                    Ok(Value::List(vec![
                        Value::Int(s.forwarded as i64),
                        Value::Int(s.delivered_local as i64),
                        Value::Int(s.no_route as i64),
                        Value::Int(s.ttl_expired as i64),
                        Value::Int(s.malformed as i64),
                        Value::Int(s.failover as i64),
                        Value::Int(s.unreachable as i64),
                        Value::Int(s.dead_marks as i64),
                    ]))
                })
            })
            // Closes one dead-gateway probe window (see [`IfHealth`]):
            // an interface that transmitted all window without receiving
            // takes a miss; `DEAD_AFTER_WINDOWS` consecutive misses mark
            // it dead. Returns how many interfaces are currently dead.
            .method("probe_window", &[], TypeTag::Int, |this, _| {
                this.with_state(|s: &mut RouterState| {
                    let mut dead = 0i64;
                    let mut marks = 0u64;
                    for h in &mut s.health {
                        if !h.dead && h.tx_win > 0 && h.rx_win == 0 {
                            h.misses += 1;
                            if h.misses >= DEAD_AFTER_WINDOWS {
                                h.dead = true;
                                marks += 1;
                            }
                        } else if h.rx_win > 0 {
                            h.misses = 0;
                        }
                        h.tx_win = 0;
                        h.rx_win = 0;
                        dead += i64::from(h.dead);
                    }
                    s.dead_marks += marks;
                    Ok(Value::Int(dead))
                })
            })
            // Administrative override for drills and operators: force an
            // interface dead (as a NIC blackout would eventually be
            // detected) or alive (clean slate, misses cleared).
            .method(
                "set_if_up",
                &[TypeTag::Int, TypeTag::Bool],
                TypeTag::Unit,
                |this, args| {
                    let ifindex = args[0].as_int()?;
                    let up = args[1].as_bool()?;
                    this.with_state(|s: &mut RouterState| {
                        let idx = usize::try_from(ifindex)
                            .ok()
                            .filter(|&i| i < s.ifs.len())
                            .ok_or_else(|| {
                                ObjError::failed(format!("ifindex {ifindex} out of range"))
                            })?;
                        let h = &mut s.health[idx];
                        if up {
                            h.dead = false;
                            h.misses = 0;
                        } else if !h.dead {
                            h.dead = true;
                            s.dead_marks += 1;
                        }
                        Ok(Value::Unit)
                    })
                },
            )
            // Per-interface health rows: `[ifindex, dead, misses]`.
            .method("if_health", &[], TypeTag::List, |this, _| {
                this.with_state(|s: &mut RouterState| {
                    Ok(Value::List(
                        s.health
                            .iter()
                            .enumerate()
                            .map(|(i, h)| {
                                Value::List(vec![
                                    Value::Int(i as i64),
                                    Value::Int(i64::from(h.dead)),
                                    Value::Int(i64::from(h.misses)),
                                ])
                            })
                            .collect(),
                    ))
                })
            })
            .method("route_stats", &[], TypeTag::List, |this, _| {
                this.with_state(|s: &mut RouterState| {
                    Ok(Value::List(
                        s.table
                            .iter()
                            .map(|r| {
                                Value::List(vec![
                                    Value::Int(i64::from(r.prefix)),
                                    Value::Int(i64::from(r.len)),
                                    Value::Int(r.ifindex as i64),
                                    Value::Int(r.packets as i64),
                                    Value::Int(r.bytes as i64),
                                ])
                            })
                            .collect(),
                    ))
                })
            })
        })
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simlink::{make_simlink, LinkConfig};
    use paramecium_machine::Machine;
    use parking_lot::Mutex;
    use std::sync::Arc;

    const IF0_IP: u32 = 0x0A00_0001; // 10.0.0.1
    const IF1_IP: u32 = 0x0A01_0001; // 10.1.0.1
    const NET0_HOST: u32 = 0x0A00_0002; // 10.0.0.2
    const NET1_HOST: u32 = 0x0A01_0002; // 10.1.0.2

    /// Two links, a router in the middle, the far ends returned for
    /// observation: `(machine, router, far0, far1)`.
    fn gateway() -> (Arc<Mutex<Machine>>, ObjRef, ObjRef, ObjRef) {
        let machine = Arc::new(Mutex::new(Machine::new()));
        let (near0, far0) = make_simlink(machine.clone(), LinkConfig::perfect(1));
        let (near1, far1) = make_simlink(machine.clone(), LinkConfig::perfect(2));
        let router = make_router(vec![
            RouteIf {
                dev: near0,
                ip: IF0_IP,
                mac: [2, 0, 0, 0, 0, 0x10],
            },
            RouteIf {
                dev: near1,
                ip: IF1_IP,
                mac: [2, 0, 0, 0, 0, 0x11],
            },
        ]);
        let add = |prefix: u32, len: i64, ifi: i64| {
            router
                .invoke(
                    "route",
                    "add_route",
                    &[
                        Value::Int(i64::from(prefix)),
                        Value::Int(len),
                        Value::Int(ifi),
                    ],
                )
                .unwrap();
        };
        add(0x0A00_0000, 24, 0); // 10.0.0.0/24 -> if0
        add(0x0A01_0000, 24, 1); // 10.1.0.0/24 -> if1
        (machine, router, far0, far1)
    }

    fn send_via(dev: &ObjRef, frame: Vec<u8>) {
        dev.invoke("netdev", "send", &[Value::Bytes(bytes::Bytes::from(frame))])
            .unwrap();
    }

    fn drain(dev: &ObjRef) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        loop {
            let f = dev.invoke("netdev", "recv", &[]).unwrap();
            let b = f.as_bytes().unwrap();
            if b.is_empty() {
                break;
            }
            out.push(b.to_vec());
        }
        out
    }

    #[test]
    fn longest_prefix_wins() {
        let (_m, router, _f0, _f1) = gateway();
        // A /32 host route overriding the /24.
        router
            .invoke(
                "route",
                "add_route",
                &[
                    Value::Int(i64::from(NET0_HOST)),
                    Value::Int(32),
                    Value::Int(1),
                ],
            )
            .unwrap();
        let lookup = |ip: u32| {
            router
                .invoke("route", "lookup", &[Value::Int(i64::from(ip))])
                .unwrap()
                .as_int()
                .unwrap()
        };
        assert_eq!(lookup(NET0_HOST), 1, "/32 beats /24");
        assert_eq!(lookup(0x0A00_0003), 0, "rest of 10.0.0.0/24 unaffected");
        assert_eq!(lookup(NET1_HOST), 1);
        assert_eq!(lookup(0x0808_0808), -1, "no default route");
    }

    #[test]
    fn egress_send_picks_interface_by_destination() {
        let (machine, router, far0, far1) = gateway();
        let f0 = wire::build_udp_frame([9; 6], [8; 6], IF0_IP, NET0_HOST, 1, 2, b"to-net0");
        let f1 = wire::build_udp_frame([9; 6], [8; 6], IF1_IP, NET1_HOST, 1, 2, b"to-net1");
        send_via(&router, f0.clone());
        send_via(&router, f1.clone());
        machine.lock().tick(10);
        assert_eq!(drain(&far0), vec![f0]);
        assert_eq!(drain(&far1), vec![f1]);
    }

    #[test]
    fn transit_forwarding_decrements_ttl_and_rewrites() {
        let (machine, router, far0, far1) = gateway();
        // A host on net0 sends to a host on net1 via the gateway.
        let frame = wire::build_udp_frame(
            [9; 6],
            [2, 0, 0, 0, 0, 0x10],
            NET0_HOST,
            NET1_HOST,
            1111,
            2222,
            b"across",
        );
        far0.invoke("netdev", "send", &[Value::Bytes(bytes::Bytes::from(frame))])
            .unwrap();
        machine.lock().tick(10);
        let moved = router.invoke("route", "forward", &[]).unwrap();
        assert_eq!(moved, Value::Int(1));
        machine.lock().tick(10);
        let out = drain(&far1);
        assert_eq!(out.len(), 1);
        let (ip, udp, payload) = wire::parse_udp_frame(&out[0]).unwrap();
        assert_eq!(ip.ttl, 63, "TTL decremented");
        assert_eq!(ip.dst, NET1_HOST);
        assert_eq!(udp.dst_port, 2222);
        assert_eq!(payload, b"across");
        assert_eq!(&out[0][6..12], &[2, 0, 0, 0, 0, 0x11], "egress MAC");
        let rstats = router.invoke("route", "stats", &[]).unwrap();
        assert_eq!(rstats.as_list().unwrap()[0], Value::Int(1), "forwarded");
    }

    #[test]
    fn local_frames_surface_through_recv() {
        let (machine, router, far0, _f1) = gateway();
        let frame = wire::build_udp_frame(
            [9; 6],
            [2, 0, 0, 0, 0, 0x10],
            NET0_HOST,
            IF0_IP,
            5,
            6,
            b"for-router",
        );
        far0.invoke(
            "netdev",
            "send",
            &[Value::Bytes(bytes::Bytes::from(frame.clone()))],
        )
        .unwrap();
        machine.lock().tick(10);
        router.invoke("route", "forward", &[]).unwrap();
        assert_eq!(drain(&router), vec![frame]);
        let rstats = router.invoke("route", "stats", &[]).unwrap();
        assert_eq!(rstats.as_list().unwrap()[1], Value::Int(1), "local");
    }

    #[test]
    fn ttl_expiry_and_no_route_are_counted_not_forwarded() {
        let (machine, router, far0, far1) = gateway();
        // TTL 1: must die at the gateway.
        let mut dying = wire::build_udp_frame([9; 6], [2; 6], NET0_HOST, NET1_HOST, 1, 2, b"dying");
        dying[wire::ETH_HLEN + 8] = 1;
        let csum_off = wire::ETH_HLEN + 10;
        dying[csum_off] = 0;
        dying[csum_off + 1] = 0;
        let csum =
            wire::internet_checksum(&dying[wire::ETH_HLEN..wire::ETH_HLEN + wire::IPV4_HLEN]);
        dying[csum_off..csum_off + 2].copy_from_slice(&csum.to_be_bytes());
        // No route: destination outside both nets.
        let lost = wire::build_udp_frame([9; 6], [2; 6], NET0_HOST, 0x0808_0808, 1, 2, b"lost");
        for f in [dying, lost] {
            far0.invoke("netdev", "send", &[Value::Bytes(bytes::Bytes::from(f))])
                .unwrap();
        }
        machine.lock().tick(10);
        assert_eq!(
            router.invoke("route", "forward", &[]).unwrap(),
            Value::Int(0)
        );
        machine.lock().tick(10);
        assert!(drain(&far1).is_empty());
        let rstats = router.invoke("route", "stats", &[]).unwrap();
        let s = rstats.as_list().unwrap().to_vec();
        assert_eq!(s[2], Value::Int(1), "no_route");
        assert_eq!(s[3], Value::Int(1), "ttl_expired");
    }

    #[test]
    fn del_route_removes_at_runtime() {
        let (_m, router, _f0, _f1) = gateway();
        let lookup = |ip: u32| {
            router
                .invoke("route", "lookup", &[Value::Int(i64::from(ip))])
                .unwrap()
                .as_int()
                .unwrap()
        };
        assert_eq!(lookup(NET1_HOST), 1);
        router
            .invoke(
                "route",
                "del_route",
                &[Value::Int(0x0A01_0000), Value::Int(24)],
            )
            .unwrap();
        assert_eq!(lookup(NET1_HOST), -1, "flapped away");
        // Deleting twice is an error; re-adding restores service.
        assert!(router
            .invoke(
                "route",
                "del_route",
                &[Value::Int(0x0A01_0000), Value::Int(24)],
            )
            .is_err());
        router
            .invoke(
                "route",
                "add_route",
                &[Value::Int(0x0A01_0000), Value::Int(24), Value::Int(1)],
            )
            .unwrap();
        assert_eq!(lookup(NET1_HOST), 1, "flapped back");
    }

    #[test]
    fn dead_gateway_fails_over_and_heals_on_rx() {
        let (machine, router, far0, far1) = gateway();
        // A default route through if1 is the failover path.
        router
            .invoke(
                "route",
                "add_route",
                &[Value::Int(0), Value::Int(0), Value::Int(1)],
            )
            .unwrap();
        let probe = || {
            router
                .invoke("route", "probe_window", &[])
                .unwrap()
                .as_int()
                .unwrap()
        };
        let to_net0 = wire::build_udp_frame([9; 6], [8; 6], IF0_IP, NET0_HOST, 1, 2, b"ping");
        // Three windows of tx-without-rx on if0 mark it dead.
        for w in 0..DEAD_AFTER_WINDOWS {
            send_via(&router, to_net0.clone());
            let dead = probe();
            assert_eq!(dead, i64::from(w + 1 == DEAD_AFTER_WINDOWS));
        }
        machine.lock().tick(10);
        drain(&far0); // The pre-death transmissions did reach the wire.
                      // Dead: the /24's traffic fails over to the default route.
        send_via(&router, to_net0.clone());
        machine.lock().tick(10);
        assert!(drain(&far0).is_empty(), "if0 skipped while dead");
        assert_eq!(drain(&far1).len(), 1, "failed over to if1");
        let s = router.invoke("route", "stats", &[]).unwrap();
        let s = s.as_list().unwrap().to_vec();
        assert_eq!(s[5], Value::Int(1), "failover counted");
        assert_eq!(s[7], Value::Int(1), "one dead mark");
        // A frame arriving on if0 is proof of life: instant heal.
        let inbound = wire::build_udp_frame(
            [9; 6],
            [2, 0, 0, 0, 0, 0x10],
            NET0_HOST,
            IF0_IP,
            5,
            6,
            b"alive",
        );
        far0.invoke(
            "netdev",
            "send",
            &[Value::Bytes(bytes::Bytes::from(inbound))],
        )
        .unwrap();
        machine.lock().tick(10);
        assert!(!drain(&router).is_empty());
        assert_eq!(probe(), 0, "healed");
        send_via(&router, to_net0);
        machine.lock().tick(10);
        assert_eq!(drain(&far0).len(), 1, "traffic back on the best route");
    }

    #[test]
    fn zero_healthy_routes_is_unreachable_not_a_panic() {
        let (machine, router, far0, far1) = gateway();
        for ifi in [0i64, 1] {
            router
                .invoke("route", "set_if_up", &[Value::Int(ifi), Value::Bool(false)])
                .unwrap();
        }
        let f = wire::build_udp_frame([9; 6], [8; 6], IF0_IP, NET0_HOST, 1, 2, b"void");
        send_via(&router, f); // Must return cleanly, not panic.
        machine.lock().tick(10);
        assert!(drain(&far0).is_empty() && drain(&far1).is_empty());
        let s = router.invoke("route", "stats", &[]).unwrap();
        let s = s.as_list().unwrap().to_vec();
        assert_eq!(s[6], Value::Int(1), "unreachable counted");
        assert_eq!(s[2], Value::Int(0), "distinct from no_route");
        let health = router.invoke("route", "if_health", &[]).unwrap();
        for row in health.as_list().unwrap() {
            assert_eq!(row.as_list().unwrap()[1], Value::Int(1), "marked dead");
        }
        // set_if_up(true) restores service without probe cycles.
        router
            .invoke("route", "set_if_up", &[Value::Int(0), Value::Bool(true)])
            .unwrap();
        let f = wire::build_udp_frame([9; 6], [8; 6], IF0_IP, NET0_HOST, 1, 2, b"back");
        send_via(&router, f);
        machine.lock().tick(10);
        assert_eq!(drain(&far0).len(), 1);
    }

    #[test]
    fn per_route_stats_account_traffic() {
        let (_m, router, _f0, _f1) = gateway();
        let f = wire::build_udp_frame([9; 6], [8; 6], IF0_IP, NET0_HOST, 1, 2, b"x");
        let len = f.len() as i64;
        send_via(&router, f.clone());
        send_via(&router, f);
        let rs = router.invoke("route", "route_stats", &[]).unwrap();
        let rows: Vec<Vec<Value>> = rs
            .as_list()
            .unwrap()
            .iter()
            .map(|r| r.as_list().unwrap().to_vec())
            .collect();
        let net0 = rows
            .iter()
            .find(|r| r[0] == Value::Int(0x0A00_0000))
            .unwrap();
        assert_eq!(net0[3], Value::Int(2), "packets");
        assert_eq!(net0[4], Value::Int(2 * len), "bytes");
    }
}
