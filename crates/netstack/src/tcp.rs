//! A minimal-but-correct TCP endpoint object.
//!
//! [`make_tcp`] layers a TCP state machine on any object exporting the
//! `netdev` interface — a NIC driver, the ARP layer, a monitor, a router
//! or a simulated lossy link — and exports a `tcp` interface:
//!
//! - `listen(port: int)`, `connect(ip: int, port: int) -> int` (id),
//!   `accept(port: int) -> int` (id, `-1` when the backlog is empty),
//! - `send(id: int, data: bytes) -> int` (bytes accepted into the send
//!   buffer), `recv(id: int, max: int) -> bytes`, `close(id: int)`,
//! - `state(id: int) -> str`, `error(id: int) -> str` (why a dead
//!   connection died: `"reset"`, `"user-timeout"`,
//!   `"keepalive-timeout"`, `"retries-exhausted"`, or `""`),
//! - `set_user_timeout(id: int, cycles: int)` — RFC 5482 bound on how
//!   long data may sit unacknowledged before the connection aborts
//!   cleanly (default [`DEFAULT_USER_TIMEOUT`], 0 disables),
//! - `set_keepalive(id: int, interval: int)` — probe an idle
//!   connection every `interval` cycles; [`KEEPALIVE_PROBES`]
//!   unanswered probes abort it (0 disables),
//! - `set_backlog(port: int, n: int)` — cap the accept queue (default
//!   [`DEFAULT_BACKLOG`]); handshakes completing against a full queue
//!   are refused with an RST and counted in `backlog_dropped`,
//! - `stats() -> list`, `set_filter(handle)`,
//! - `pump() -> int` — the engine: drains the lower netdev, runs the
//!   retransmission timers against the machine's **virtual clock**, and
//!   emits whatever segments are due (data within the peer's window,
//!   pure ACKs, FINs, zero-window probes). Everything is driven by
//!   explicit `pump` calls, so a whole multi-host exchange is a
//!   deterministic function of the machine clock and the link seed.
//!
//! The implementation covers the three-way handshake, sequence/ack
//! tracking, retransmission with exponential RTO backoff, sliding-window
//! flow control (including zero-window probes), out-of-order reassembly
//! and the FIN teardown handshake with TIME-WAIT. Sequence arithmetic is
//! done on unsigned 64-bit *stream offsets* relative to the ISS/IRS, so
//! 32-bit wire wrap-around cannot corrupt the state machine.
//!
//! Every transmitted and received segment is folded into an FNV-1a
//! digest exposed through `stats`, which is what the determinism tests
//! compare across replays.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;

use paramecium_machine::Machine;
use paramecium_obj::{ObjError, ObjRef, ObjectBuilder, TypeTag, Value};
use parking_lot::Mutex;

use crate::arp::resolve_or_broadcast;
use crate::wire::{self, tcp_flags, Mac, TcpHeader, MAC_BROADCAST};

/// Maximum segment payload.
pub const TCP_MSS: usize = 1000;
/// Send-buffer capacity per connection.
pub const SEND_BUF_MAX: usize = 64 * 1024;
/// Receive window per connection.
pub const RECV_WND: usize = 16 * 1024;
/// Initial retransmission timeout, in machine cycles.
pub const BASE_RTO: u64 = 200_000;
/// RTO ceiling (backoff stops doubling here).
pub const MAX_RTO: u64 = BASE_RTO << 8;
/// Retransmissions before the connection is aborted.
pub const MAX_RETRIES: u32 = 12;
/// TIME-WAIT linger, in machine cycles.
pub const TIME_WAIT_CYCLES: u64 = 800_000;
/// Default user timeout (RFC 5482), in machine cycles: a connection
/// with data continuously unacknowledged for this long is aborted into
/// a clean `"user-timeout"` error state. Zero disables the timer;
/// `set_user_timeout` adjusts it per connection.
pub const DEFAULT_USER_TIMEOUT: u64 = 100_000_000;
/// Unanswered keepalive probes before an idle connection is aborted.
pub const KEEPALIVE_PROBES: u32 = 3;
/// Default cap on established-but-unaccepted connections per listening
/// port; completions beyond it are refused with an RST.
pub const DEFAULT_BACKLOG: usize = 64;

/// Connection states (RFC 793 names).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum State {
    SynSent,
    SynRcvd,
    Established,
    FinWait1,
    FinWait2,
    CloseWait,
    Closing,
    LastAck,
    TimeWait,
    Closed,
}

impl State {
    fn name(self) -> &'static str {
        match self {
            State::SynSent => "syn-sent",
            State::SynRcvd => "syn-rcvd",
            State::Established => "established",
            State::FinWait1 => "fin-wait-1",
            State::FinWait2 => "fin-wait-2",
            State::CloseWait => "close-wait",
            State::Closing => "closing",
            State::LastAck => "last-ack",
            State::TimeWait => "time-wait",
            State::Closed => "closed",
        }
    }
}

/// One connection. All sequence bookkeeping is in u64 stream offsets:
/// byte `i` of our outgoing stream has wire sequence `iss + 1 + i`
/// (wrapping), and symmetrically for the peer via `irs`.
struct Conn {
    state: State,
    peer_ip: u32,
    peer_port: u16,
    local_port: u16,
    peer_mac: Option<Mac>,
    iss: u32,
    irs: u32,
    /// Lowest unacknowledged stream offset.
    snd_una: u64,
    /// Next stream offset to transmit.
    snd_nxt: u64,
    /// Bytes from offset `snd_una` onward not yet acknowledged.
    send_buf: VecDeque<u8>,
    /// Stream length once `close` fixes it; our FIN occupies this offset.
    stream_end: Option<u64>,
    fin_sent: bool,
    fin_acked: bool,
    /// Right edge of the peer's advertised window as a stream offset
    /// (kept monotonic: a receiver may not revoke window it granted).
    peer_wnd_edge: u64,
    /// Next expected incoming stream offset.
    rcv_nxt: u64,
    /// In-order bytes ready for the application.
    recv_buf: VecDeque<u8>,
    /// Out-of-order segments keyed by stream offset.
    ooo: BTreeMap<u64, Vec<u8>>,
    /// Offset of the peer's FIN, once seen.
    peer_fin: Option<u64>,
    peer_fin_rcvd: bool,
    ack_pending: bool,
    rto: u64,
    rtx_at: Option<u64>,
    retries: u32,
    timewait_at: u64,
    /// User timeout (RFC 5482), cycles; 0 disables.
    user_timeout: u64,
    /// Clock reading when data first went unacknowledged; rearmed on
    /// every forward ack so only a *continuous* stall trips the timer.
    stalled_since: Option<u64>,
    /// Keepalive probe interval, cycles; 0 disables.
    keepalive: u64,
    /// Clock reading of the last keepalive probe sent.
    ka_sent_at: u64,
    /// Probes sent since the peer was last heard from.
    ka_probes: u32,
    /// Clock reading of the last segment received on this connection.
    last_rx: u64,
    /// Why the connection died, for `error(id)`; `None` while healthy
    /// or after a clean close.
    err: Option<&'static str>,
}

impl Conn {
    fn new(peer_ip: u32, peer_port: u16, local_port: u16, iss: u32, state: State) -> Conn {
        Conn {
            state,
            peer_ip,
            peer_port,
            local_port,
            peer_mac: None,
            iss,
            irs: 0,
            snd_una: 0,
            snd_nxt: 0,
            send_buf: VecDeque::new(),
            stream_end: None,
            fin_sent: false,
            fin_acked: false,
            peer_wnd_edge: 0,
            rcv_nxt: 0,
            recv_buf: VecDeque::new(),
            ooo: BTreeMap::new(),
            peer_fin: None,
            peer_fin_rcvd: false,
            ack_pending: false,
            rto: BASE_RTO,
            rtx_at: None,
            retries: 0,
            timewait_at: 0,
            user_timeout: DEFAULT_USER_TIMEOUT,
            stalled_since: None,
            keepalive: 0,
            ka_sent_at: 0,
            ka_probes: 0,
            last_rx: 0,
            err: None,
        }
    }

    /// Transition to `Closed` with a diagnostic reason. Idempotent: a
    /// connection that already died keeps its first cause.
    fn abort(&mut self, reason: &'static str) -> bool {
        if self.state == State::Closed {
            return false;
        }
        self.state = State::Closed;
        self.rtx_at = None;
        self.err = Some(reason);
        true
    }

    /// Wire sequence number for stream offset `off`.
    fn wire_seq(&self, off: u64) -> u32 {
        self.iss.wrapping_add(1).wrapping_add(off as u32)
    }

    /// Wire ack number acknowledging everything up to `rcv_nxt`.
    fn wire_ack(&self) -> u32 {
        self.irs.wrapping_add(1).wrapping_add(self.rcv_nxt as u32)
    }

    /// Maps an incoming wire sequence number to a stream offset near
    /// `rcv_nxt` (wrap-safe). Negative offsets (ancient duplicates far
    /// behind the window) come back as `None`.
    fn seq_to_off(&self, seq: u32) -> Option<u64> {
        let off32 = seq.wrapping_sub(self.irs.wrapping_add(1));
        let diff = i64::from(off32.wrapping_sub(self.rcv_nxt as u32) as i32);
        let off = self.rcv_nxt as i64 + diff;
        u64::try_from(off).ok()
    }

    /// Maps an incoming wire ack number to a stream offset near
    /// `snd_una` (wrap-safe).
    fn ack_to_off(&self, ack: u32) -> Option<u64> {
        let off32 = ack.wrapping_sub(self.iss.wrapping_add(1));
        let diff = i64::from(off32.wrapping_sub(self.snd_una as u32) as i32);
        let off = self.snd_una as i64 + diff;
        u64::try_from(off).ok()
    }

    /// Window we advertise: free receive-buffer space.
    fn adv_window(&self) -> u16 {
        let used = self.recv_buf.len();
        RECV_WND.saturating_sub(used).min(usize::from(u16::MAX)) as u16
    }
}

/// Aggregate endpoint counters; `digest` folds every segment on the wire
/// (both directions) through FNV-1a and is the replay fingerprint.
#[derive(Default)]
struct TcpStats {
    segs_tx: u64,
    segs_rx: u64,
    bytes_tx: u64,
    bytes_rx: u64,
    retransmits: u64,
    malformed: u64,
    filtered: u64,
    rst_tx: u64,
    aborted: u64,
    digest: u64,
    backlog_dropped: u64,
}

impl TcpStats {
    fn fold(&mut self, frame: &[u8]) {
        let mut h = if self.digest == 0 {
            0xcbf2_9ce4_8422_2325
        } else {
            self.digest
        };
        for &b in frame {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.digest = h;
    }
}

struct TcpState {
    machine: Arc<Mutex<Machine>>,
    lower: ObjRef,
    ip: u32,
    mac: Mac,
    filter: Option<ObjRef>,
    /// Keyed by connection id. `pump` sorts the ids before servicing so
    /// segment emission order is deterministic (replay tests compare
    /// segment traces bit-for-bit) without paying tree-map lookups on
    /// every data-path access — with ~1k live connections that cost was
    /// measurable in `b14_netstack`.
    conns: HashMap<i64, Conn>,
    /// (peer ip, peer port, local port) -> connection id.
    demux: HashMap<(u32, u16, u16), i64>,
    /// Listening port -> accept queue.
    listeners: HashMap<u16, Listener>,
    next_id: i64,
    next_port: u16,
    stats: TcpStats,
}

/// One listening port: established-but-unaccepted connections queue
/// here until `accept`, and completions past `cap` are refused with an
/// RST so a slow acceptor sheds load instead of growing without bound.
struct Listener {
    backlog: VecDeque<i64>,
    cap: usize,
}

impl Default for Listener {
    fn default() -> Listener {
        Listener {
            backlog: VecDeque::new(),
            cap: DEFAULT_BACKLOG,
        }
    }
}

/// Deterministic initial sequence number for connection `id`.
fn isn(id: i64) -> u32 {
    ((id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as u32
}

impl TcpState {
    fn now(&self) -> u64 {
        self.machine.lock().now()
    }

    fn dst_mac(&mut self, id: i64) -> Result<Mac, ObjError> {
        let conn = self.conns.get(&id).expect("conn exists");
        if let Some(mac) = conn.peer_mac {
            return Ok(mac);
        }
        let peer_ip = conn.peer_ip;
        let mac = if self.lower.has_interface("arp") {
            resolve_or_broadcast(&self.lower, peer_ip)?
        } else {
            MAC_BROADCAST
        };
        if mac != MAC_BROADCAST {
            self.conns.get_mut(&id).expect("conn exists").peer_mac = Some(mac);
        }
        Ok(mac)
    }

    /// Builds and transmits one segment for connection `id`.
    fn emit(&mut self, id: i64, flags: u8, seq: u32, payload: &[u8]) -> Result<(), ObjError> {
        let dst_mac = self.dst_mac(id)?;
        let conn = self.conns.get_mut(&id).expect("conn exists");
        let hdr = TcpHeader {
            src_port: conn.local_port,
            dst_port: conn.peer_port,
            seq,
            ack: if flags & tcp_flags::ACK != 0 {
                conn.wire_ack()
            } else {
                0
            },
            flags,
            window: conn.adv_window(),
        };
        let peer_ip = conn.peer_ip;
        conn.ack_pending = false;
        let frame = wire::build_tcp_frame(self.mac, dst_mac, self.ip, peer_ip, &hdr, payload);
        self.stats.segs_tx += 1;
        self.stats.bytes_tx += payload.len() as u64;
        self.stats.fold(&frame);
        self.lower
            .invoke("netdev", "send", &[Value::Bytes(bytes::Bytes::from(frame))])?;
        Ok(())
    }

    /// Sends an RST in reply to a stray segment.
    fn emit_rst(&mut self, peer_mac: Mac, peer_ip: u32, hdr: &TcpHeader) -> Result<(), ObjError> {
        let rst = TcpHeader {
            src_port: hdr.dst_port,
            dst_port: hdr.src_port,
            seq: hdr.ack,
            ack: hdr.seq.wrapping_add(1),
            flags: tcp_flags::RST | tcp_flags::ACK,
            window: 0,
        };
        let frame = wire::build_tcp_frame(self.mac, peer_mac, self.ip, peer_ip, &rst, &[]);
        self.stats.segs_tx += 1;
        self.stats.rst_tx += 1;
        self.stats.fold(&frame);
        self.lower
            .invoke("netdev", "send", &[Value::Bytes(bytes::Bytes::from(frame))])?;
        Ok(())
    }

    fn arm_rtx(&mut self, id: i64, now: u64) {
        let conn = self.conns.get_mut(&id).expect("conn exists");
        conn.rtx_at = Some(now + conn.rto);
    }

    /// Our FIN was acknowledged — advance the close handshake.
    fn on_fin_acked(&mut self, id: i64, now: u64) {
        let conn = self.conns.get_mut(&id).expect("conn exists");
        conn.fin_acked = true;
        match conn.state {
            State::FinWait1 => conn.state = State::FinWait2,
            State::Closing => {
                conn.state = State::TimeWait;
                conn.timewait_at = now + TIME_WAIT_CYCLES;
            }
            State::LastAck => {
                conn.state = State::Closed;
            }
            _ => {}
        }
    }

    /// The peer's FIN has been consumed in order — advance teardown.
    fn on_peer_fin(&mut self, id: i64, now: u64) {
        let conn = self.conns.get_mut(&id).expect("conn exists");
        conn.peer_fin_rcvd = true;
        match conn.state {
            State::SynRcvd | State::Established => conn.state = State::CloseWait,
            State::FinWait1 => {
                if conn.fin_acked {
                    conn.state = State::TimeWait;
                    conn.timewait_at = now + TIME_WAIT_CYCLES;
                } else {
                    conn.state = State::Closing;
                }
            }
            State::FinWait2 => {
                conn.state = State::TimeWait;
                conn.timewait_at = now + TIME_WAIT_CYCLES;
            }
            _ => {}
        }
    }

    /// Handles one parsed inbound segment addressed to connection `id`.
    fn segment_in(
        &mut self,
        id: i64,
        hdr: &TcpHeader,
        payload: &[u8],
        now: u64,
    ) -> Result<(), ObjError> {
        let conn = self.conns.get_mut(&id).expect("conn exists");
        conn.last_rx = now;
        conn.ka_probes = 0;
        if hdr.flags & tcp_flags::RST != 0 {
            if conn.abort("reset") {
                self.stats.aborted += 1;
            }
            return Ok(());
        }

        // Handshake states first.
        match conn.state {
            State::SynSent => {
                let syn_ack = tcp_flags::SYN | tcp_flags::ACK;
                if hdr.flags & syn_ack == syn_ack && hdr.ack == conn.iss.wrapping_add(1) {
                    conn.irs = hdr.seq;
                    conn.rcv_nxt = 0;
                    conn.peer_wnd_edge = u64::from(hdr.window);
                    conn.state = State::Established;
                    conn.ack_pending = true;
                    conn.rtx_at = None;
                    conn.rto = BASE_RTO;
                    conn.retries = 0;
                }
                // Anything else in SYN-SENT (e.g. a delayed duplicate) is
                // dropped; the SYN retransmit timer covers us.
                return Ok(());
            }
            State::SynRcvd => {
                if hdr.flags & tcp_flags::SYN != 0 {
                    // Duplicate SYN: re-ack it via the SYN-ACK timer.
                    return Ok(());
                }
                if hdr.flags & tcp_flags::ACK == 0 || hdr.ack != conn.iss.wrapping_add(1) {
                    return Ok(());
                }
                let port = conn.local_port;
                let key = (conn.peer_ip, conn.peer_port, port);
                let peer_mac = conn.peer_mac.unwrap_or(MAC_BROADCAST);
                let peer_ip = conn.peer_ip;
                let lst = self.listeners.entry(port).or_default();
                if lst.backlog.len() >= lst.cap {
                    // Accept queue full: refuse the completed handshake
                    // with an RST so the peer fails fast instead of
                    // sitting established against a stalled acceptor.
                    self.stats.backlog_dropped += 1;
                    self.conns.remove(&id);
                    self.demux.remove(&key);
                    return self.emit_rst(peer_mac, peer_ip, hdr);
                }
                lst.backlog.push_back(id);
                let conn = self.conns.get_mut(&id).expect("conn exists");
                conn.state = State::Established;
                conn.peer_wnd_edge = u64::from(hdr.window);
                conn.rtx_at = None;
                conn.rto = BASE_RTO;
                conn.retries = 0;
                // Fall through to process any piggybacked payload.
            }
            State::Closed => return Ok(()),
            _ => {}
        }

        let conn = self.conns.get_mut(&id).expect("conn exists");

        // A retransmitted SYN/SYN-ACK means our ACK was lost: re-ack.
        if hdr.flags & tcp_flags::SYN != 0 {
            conn.ack_pending = true;
        }

        // ACK processing: advance snd_una, free send buffer, reset RTO.
        let mut fin_acked_now = false;
        if hdr.flags & tcp_flags::ACK != 0 {
            if let Some(ack_off) = conn.ack_to_off(hdr.ack) {
                let limit = conn.snd_nxt;
                if ack_off > conn.snd_una && ack_off <= limit {
                    let data_acked =
                        (ack_off - conn.snd_una).min(conn.send_buf.len() as u64) as usize;
                    conn.send_buf.drain(..data_acked);
                    conn.snd_una = ack_off;
                    conn.rto = BASE_RTO;
                    conn.retries = 0;
                    // Forward progress restarts the user timeout.
                    conn.stalled_since = None;
                    if let Some(end) = conn.stream_end {
                        if conn.fin_sent && ack_off == end + 1 {
                            fin_acked_now = true;
                        }
                    }
                    conn.rtx_at = if conn.snd_una == conn.snd_nxt {
                        None
                    } else {
                        Some(now + conn.rto)
                    };
                }
                // Window update (right edge is monotonic).
                let edge = ack_off + u64::from(hdr.window);
                conn.peer_wnd_edge = conn.peer_wnd_edge.max(edge);
            }
        }

        // Payload processing: in-order append, out-of-order buffering,
        // duplicate trimming — all within our advertised window.
        if !payload.is_empty() {
            if let Some(off) = conn.seq_to_off(hdr.seq) {
                let limit = conn.rcv_nxt + (RECV_WND - conn.recv_buf.len()) as u64;
                let end = (off + payload.len() as u64).min(limit);
                if end > conn.rcv_nxt && off < limit {
                    if off <= conn.rcv_nxt {
                        // Overlaps the expected offset: take the new part.
                        let skip = (conn.rcv_nxt - off) as usize;
                        let take = (end - conn.rcv_nxt) as usize;
                        conn.recv_buf.extend(&payload[skip..skip + take]);
                        conn.rcv_nxt = end;
                        // Drain any out-of-order data that now fits.
                        while let Some((&o, _)) = conn.ooo.iter().next() {
                            if o > conn.rcv_nxt {
                                break;
                            }
                            let (o, seg) = conn.ooo.pop_first().expect("checked");
                            let seg_end = o + seg.len() as u64;
                            if seg_end > conn.rcv_nxt {
                                let skip = (conn.rcv_nxt - o) as usize;
                                conn.recv_buf.extend(&seg[skip..]);
                                conn.rcv_nxt = seg_end;
                            }
                        }
                    } else {
                        let take = (end - off) as usize;
                        conn.ooo
                            .entry(off)
                            .or_insert_with(|| payload[..take].to_vec());
                    }
                }
            }
            // Data (new, duplicate or out of order) always provokes an ACK.
            conn.ack_pending = true;
            self.stats.bytes_rx += payload.len() as u64;
        }

        // FIN processing: the FIN occupies the offset right after the
        // segment's payload and is consumed only once in order.
        let mut peer_fin_now = false;
        if hdr.flags & tcp_flags::FIN != 0 {
            if let Some(off) = conn.seq_to_off(hdr.seq) {
                conn.peer_fin = Some(off + payload.len() as u64);
            }
        }
        if let Some(fin_off) = conn.peer_fin {
            if !conn.peer_fin_rcvd && conn.rcv_nxt == fin_off {
                conn.rcv_nxt = fin_off + 1;
                conn.ack_pending = true;
                peer_fin_now = true;
            } else if conn.peer_fin_rcvd && hdr.flags & tcp_flags::FIN != 0 {
                // Retransmitted FIN: our final ACK was lost — re-ack.
                conn.ack_pending = true;
            }
        }

        if fin_acked_now {
            self.on_fin_acked(id, now);
        }
        if peer_fin_now {
            self.on_peer_fin(id, now);
        }
        Ok(())
    }

    /// Drains the lower netdev, demultiplexes, counts malformed traffic.
    /// Returns frames consumed.
    fn pump_rx(&mut self, now: u64) -> Result<i64, ObjError> {
        let mut handled = 0i64;
        loop {
            let frame = self.lower.invoke("netdev", "recv", &[])?;
            let frame = frame.as_bytes()?.clone();
            if frame.is_empty() {
                break;
            }
            handled += 1;
            if let Some(f) = &self.filter {
                let ok = f
                    .invoke("filter", "check", &[Value::Bytes(frame.clone())])?
                    .as_bool()?;
                if !ok {
                    self.stats.filtered += 1;
                    continue;
                }
            }
            let parsed = wire::parse_tcp_frame(&frame);
            let Ok((ip, hdr, payload)) = parsed else {
                self.stats.malformed += 1;
                continue;
            };
            if ip.dst != self.ip {
                self.stats.malformed += 1;
                continue;
            }
            self.stats.segs_rx += 1;
            self.stats.fold(&frame);
            let key = (ip.src, hdr.src_port, hdr.dst_port);
            if let Some(&id) = self.demux.get(&key) {
                self.segment_in(id, &hdr, payload, now)?;
                continue;
            }
            // No connection: a SYN to a listening port opens one.
            if hdr.flags & tcp_flags::SYN != 0
                && hdr.flags & tcp_flags::ACK == 0
                && self.listeners.contains_key(&hdr.dst_port)
            {
                let id = self.next_id;
                self.next_id += 1;
                let mut conn =
                    Conn::new(ip.src, hdr.src_port, hdr.dst_port, isn(id), State::SynRcvd);
                conn.irs = hdr.seq;
                conn.rcv_nxt = 0;
                conn.peer_wnd_edge = u64::from(hdr.window);
                let src_mac: Mac = frame[6..12].try_into().expect("6 bytes");
                conn.peer_mac = Some(src_mac);
                self.conns.insert(id, conn);
                self.demux.insert(key, id);
                // SYN-ACK, covered by the retransmit timer.
                let seq = isn(id);
                self.emit(id, tcp_flags::SYN | tcp_flags::ACK, seq, &[])?;
                self.arm_rtx(id, now);
                continue;
            }
            if hdr.flags & tcp_flags::RST == 0 {
                let src_mac: Mac = frame[6..12].try_into().expect("6 bytes");
                self.emit_rst(src_mac, ip.src, &hdr)?;
            }
        }
        Ok(handled)
    }

    /// Retransmission / TIME-WAIT / user-timeout / keepalive timer pass
    /// for one connection.
    fn pump_timer(&mut self, id: i64, now: u64) -> Result<(), ObjError> {
        let conn = self.conns.get_mut(&id).expect("conn exists");
        if conn.state == State::TimeWait && now >= conn.timewait_at {
            conn.state = State::Closed;
            return Ok(());
        }
        if conn.state == State::Closed {
            return Ok(());
        }
        // User timeout (RFC 5482): the timer runs only while data is
        // continuously unacknowledged, so an idle-but-healthy
        // connection is never at risk.
        if conn.user_timeout > 0 && conn.snd_una < conn.snd_nxt {
            let since = *conn.stalled_since.get_or_insert(now);
            if now.saturating_sub(since) >= conn.user_timeout {
                if conn.abort("user-timeout") {
                    self.stats.aborted += 1;
                }
                return Ok(());
            }
        } else {
            conn.stalled_since = None;
        }
        // Keepalive: probe an idle established connection; too many
        // unanswered probes abort it into a clean error state. The
        // probe carries one byte just below `snd_una`, which the peer
        // discards as a duplicate but must acknowledge.
        if conn.keepalive > 0 && conn.state == State::Established && conn.snd_una == conn.snd_nxt {
            let due = conn.last_rx.max(conn.ka_sent_at) + conn.keepalive;
            if now >= due {
                if conn.ka_probes >= KEEPALIVE_PROBES {
                    if conn.abort("keepalive-timeout") {
                        self.stats.aborted += 1;
                    }
                    return Ok(());
                }
                conn.ka_probes += 1;
                conn.ka_sent_at = now;
                let seq = conn.wire_seq(conn.snd_una).wrapping_sub(1);
                self.emit(id, tcp_flags::ACK, seq, &[0])?;
            }
        }
        let conn = self.conns.get_mut(&id).expect("conn exists");
        let Some(due) = conn.rtx_at else {
            return Ok(());
        };
        if now < due {
            return Ok(());
        }
        conn.retries += 1;
        if conn.retries > MAX_RETRIES {
            if conn.abort("retries-exhausted") {
                self.stats.aborted += 1;
            }
            return Ok(());
        }
        conn.rto = (conn.rto * 2).min(MAX_RTO);
        conn.rtx_at = Some(now + conn.rto);
        self.stats.retransmits += 1;
        let state = conn.state;
        match state {
            State::SynSent => {
                let seq = conn.iss;
                self.emit(id, tcp_flags::SYN, seq, &[])?;
            }
            State::SynRcvd => {
                let seq = conn.iss;
                self.emit(id, tcp_flags::SYN | tcp_flags::ACK, seq, &[])?;
            }
            _ => {
                // Resend from snd_una: one MSS of data, or the FIN.
                let (seq, chunk, fin) = {
                    let conn = self.conns.get_mut(&id).expect("conn exists");
                    let unacked =
                        (conn.snd_nxt - conn.snd_una).min(conn.send_buf.len() as u64) as usize;
                    if unacked > 0 {
                        let take = unacked.min(TCP_MSS);
                        let chunk: Vec<u8> = conn.send_buf.iter().take(take).copied().collect();
                        (conn.wire_seq(conn.snd_una), chunk, false)
                    } else if conn.fin_sent && !conn.fin_acked {
                        let end = conn.stream_end.expect("fin implies stream end");
                        (conn.wire_seq(end), Vec::new(), true)
                    } else {
                        // Zero-window probe: nothing in flight but data
                        // is queued — push one byte past the edge.
                        let take = conn.send_buf.len().min(1);
                        if take == 0 {
                            conn.rtx_at = None;
                            return Ok(());
                        }
                        let chunk = vec![conn.send_buf[0]];
                        let seq = conn.wire_seq(conn.snd_una);
                        conn.snd_nxt = conn.snd_nxt.max(conn.snd_una + 1);
                        (seq, chunk, false)
                    }
                };
                let flags = if fin {
                    tcp_flags::FIN | tcp_flags::ACK
                } else {
                    tcp_flags::ACK | tcp_flags::PSH
                };
                self.emit(id, flags, seq, &chunk)?;
            }
        }
        Ok(())
    }

    /// Output pass: new data within the peer's window, the FIN once the
    /// stream is drained, else a pure ACK if one is owed.
    fn pump_tx(&mut self, id: i64, now: u64) -> Result<i64, ObjError> {
        let mut sent = 0i64;
        loop {
            let conn = self.conns.get_mut(&id).expect("conn exists");
            if matches!(conn.state, State::Closed | State::SynSent | State::SynRcvd) {
                break;
            }
            if conn.state == State::TimeWait {
                // Only re-acks (e.g. for a retransmitted FIN) leave here.
                if conn.ack_pending {
                    let seq = conn.wire_seq(conn.snd_nxt);
                    self.emit(id, tcp_flags::ACK, seq, &[])?;
                    sent += 1;
                }
                break;
            }
            let data_end = conn.snd_una + conn.send_buf.len() as u64;
            let usable = conn.peer_wnd_edge.saturating_sub(conn.snd_nxt);
            if conn.snd_nxt < data_end && usable > 0 && !conn.fin_sent {
                let start = (conn.snd_nxt - conn.snd_una) as usize;
                let take = ((data_end - conn.snd_nxt).min(usable) as usize).min(TCP_MSS);
                let chunk: Vec<u8> = conn
                    .send_buf
                    .iter()
                    .skip(start)
                    .take(take)
                    .copied()
                    .collect();
                let seq = conn.wire_seq(conn.snd_nxt);
                conn.snd_nxt += take as u64;
                self.emit(id, tcp_flags::ACK | tcp_flags::PSH, seq, &chunk)?;
                self.arm_rtx(id, now);
                sent += 1;
                continue;
            }
            if let Some(end) = conn.stream_end {
                if !conn.fin_sent && conn.snd_nxt == end {
                    conn.fin_sent = true;
                    conn.snd_nxt = end + 1;
                    match conn.state {
                        State::Established => conn.state = State::FinWait1,
                        State::CloseWait => conn.state = State::LastAck,
                        _ => {}
                    }
                    let seq = conn.wire_seq(end);
                    self.emit(id, tcp_flags::FIN | tcp_flags::ACK, seq, &[])?;
                    self.arm_rtx(id, now);
                    sent += 1;
                    continue;
                }
            }
            // Queued data but a closed window and nothing in flight:
            // arm the probe timer so we learn when it reopens.
            if conn.snd_nxt == conn.snd_una && !conn.send_buf.is_empty() && conn.rtx_at.is_none() {
                conn.rtx_at = Some(now + conn.rto);
            }
            if conn.ack_pending {
                let seq = conn.wire_seq(conn.snd_nxt);
                self.emit(id, tcp_flags::ACK, seq, &[])?;
                sent += 1;
            }
            break;
        }
        Ok(sent)
    }

    fn pump(&mut self) -> Result<i64, ObjError> {
        let now = self.now();
        let mut handled = self.pump_rx(now)?;
        // Sorted so timers and transmissions are serviced in id order no
        // matter what the hash map's iteration order is — determinism of
        // the segment trace is part of the endpoint's contract.
        let mut ids: Vec<i64> = self.conns.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            self.pump_timer(id, now)?;
            handled += self.pump_tx(id, now)?;
        }
        Ok(handled)
    }

    fn conn_mut(&mut self, id: i64) -> Result<&mut Conn, ObjError> {
        self.conns
            .get_mut(&id)
            .ok_or_else(|| ObjError::failed(format!("no such connection {id}")))
    }
}

/// Builds a TCP endpoint object over `lower` (any `netdev`), owning IP
/// address `ip` and hardware address `mac`. If `lower` also exports the
/// `arp` interface, destination MACs are resolved through it; otherwise
/// segments go out link-broadcast.
pub fn make_tcp(machine: Arc<Mutex<Machine>>, lower: ObjRef, ip: u32, mac: Mac) -> ObjRef {
    ObjectBuilder::new("tcp")
        .state(TcpState {
            machine,
            lower,
            ip,
            mac,
            filter: None,
            conns: HashMap::new(),
            demux: HashMap::new(),
            listeners: HashMap::new(),
            next_id: 1,
            next_port: 49152,
            stats: TcpStats::default(),
        })
        .interface("tcp", |i| {
            i.method("listen", &[TypeTag::Int], TypeTag::Unit, |this, args| {
                let port = args[0].as_int()?;
                let port =
                    u16::try_from(port).map_err(|_| ObjError::failed("port out of range"))?;
                this.with_state(|s: &mut TcpState| {
                    s.listeners.entry(port).or_default();
                    Ok(Value::Unit)
                })
            })
            .method(
                "connect",
                &[TypeTag::Int, TypeTag::Int],
                TypeTag::Int,
                |this, args| {
                    let dst_ip = args[0].as_int()? as u32;
                    let dst_port = u16::try_from(args[1].as_int()?)
                        .map_err(|_| ObjError::failed("port out of range"))?;
                    this.with_state(|s: &mut TcpState| {
                        let id = s.next_id;
                        s.next_id += 1;
                        let local_port = s.next_port;
                        s.next_port = s.next_port.wrapping_add(1).max(49152);
                        let conn = Conn::new(dst_ip, dst_port, local_port, isn(id), State::SynSent);
                        s.conns.insert(id, conn);
                        s.demux.insert((dst_ip, dst_port, local_port), id);
                        let now = s.now();
                        let seq = isn(id);
                        s.emit(id, tcp_flags::SYN, seq, &[])?;
                        s.arm_rtx(id, now);
                        Ok(Value::Int(id))
                    })
                },
            )
            .method("accept", &[TypeTag::Int], TypeTag::Int, |this, args| {
                let port = u16::try_from(args[0].as_int()?)
                    .map_err(|_| ObjError::failed("port out of range"))?;
                this.with_state(|s: &mut TcpState| {
                    let id = s
                        .listeners
                        .get_mut(&port)
                        .and_then(|l| l.backlog.pop_front())
                        .unwrap_or(-1);
                    Ok(Value::Int(id))
                })
            })
            .method(
                "send",
                &[TypeTag::Int, TypeTag::Bytes],
                TypeTag::Int,
                |this, args| {
                    let id = args[0].as_int()?;
                    let data = args[1].as_bytes()?.clone();
                    this.with_state(|s: &mut TcpState| {
                        let conn = s.conn_mut(id)?;
                        if conn.stream_end.is_some()
                            || !matches!(
                                conn.state,
                                State::SynSent
                                    | State::SynRcvd
                                    | State::Established
                                    | State::CloseWait
                            )
                        {
                            return Err(ObjError::failed("connection not writable"));
                        }
                        let room = SEND_BUF_MAX - conn.send_buf.len();
                        let take = room.min(data.len());
                        conn.send_buf.extend(&data[..take]);
                        Ok(Value::Int(take as i64))
                    })
                },
            )
            .method(
                "recv",
                &[TypeTag::Int, TypeTag::Int],
                TypeTag::Bytes,
                |this, args| {
                    let id = args[0].as_int()?;
                    let max = usize::try_from(args[1].as_int()?)
                        .map_err(|_| ObjError::failed("max must be non-negative"))?;
                    this.with_state(|s: &mut TcpState| {
                        let conn = s.conn_mut(id)?;
                        let take = conn.recv_buf.len().min(max);
                        let out: Vec<u8> = conn.recv_buf.drain(..take).collect();
                        if take > 0 {
                            // Freed window: owe the peer an update.
                            conn.ack_pending = true;
                        }
                        Ok(Value::Bytes(bytes::Bytes::from(out)))
                    })
                },
            )
            .method("close", &[TypeTag::Int], TypeTag::Unit, |this, args| {
                let id = args[0].as_int()?;
                this.with_state(|s: &mut TcpState| {
                    let conn = s.conn_mut(id)?;
                    if conn.stream_end.is_none() {
                        conn.stream_end = Some(conn.snd_una + conn.send_buf.len() as u64);
                    }
                    Ok(Value::Unit)
                })
            })
            .method("state", &[TypeTag::Int], TypeTag::Str, |this, args| {
                let id = args[0].as_int()?;
                this.with_state(|s: &mut TcpState| {
                    Ok(Value::Str(s.conn_mut(id)?.state.name().into()))
                })
            })
            .method("error", &[TypeTag::Int], TypeTag::Str, |this, args| {
                let id = args[0].as_int()?;
                this.with_state(|s: &mut TcpState| {
                    Ok(Value::Str(s.conn_mut(id)?.err.unwrap_or("").into()))
                })
            })
            .method(
                "set_user_timeout",
                &[TypeTag::Int, TypeTag::Int],
                TypeTag::Unit,
                |this, args| {
                    let id = args[0].as_int()?;
                    let cycles = u64::try_from(args[1].as_int()?)
                        .map_err(|_| ObjError::failed("timeout must be non-negative"))?;
                    this.with_state(|s: &mut TcpState| {
                        let conn = s.conn_mut(id)?;
                        conn.user_timeout = cycles;
                        conn.stalled_since = None;
                        Ok(Value::Unit)
                    })
                },
            )
            .method(
                "set_keepalive",
                &[TypeTag::Int, TypeTag::Int],
                TypeTag::Unit,
                |this, args| {
                    let id = args[0].as_int()?;
                    let interval = u64::try_from(args[1].as_int()?)
                        .map_err(|_| ObjError::failed("interval must be non-negative"))?;
                    this.with_state(|s: &mut TcpState| {
                        let now = s.now();
                        let conn = s.conn_mut(id)?;
                        conn.keepalive = interval;
                        conn.ka_probes = 0;
                        // Start the idle clock here, not at connection
                        // birth, so the first probe is one full
                        // interval out.
                        conn.last_rx = conn.last_rx.max(now);
                        Ok(Value::Unit)
                    })
                },
            )
            .method(
                "set_backlog",
                &[TypeTag::Int, TypeTag::Int],
                TypeTag::Unit,
                |this, args| {
                    let port = u16::try_from(args[0].as_int()?)
                        .map_err(|_| ObjError::failed("port out of range"))?;
                    let cap = usize::try_from(args[1].as_int()?)
                        .map_err(|_| ObjError::failed("backlog must be non-negative"))?;
                    this.with_state(|s: &mut TcpState| {
                        s.listeners.entry(port).or_default().cap = cap;
                        Ok(Value::Unit)
                    })
                },
            )
            .method("pump", &[], TypeTag::Int, |this, _| {
                this.with_state(|s: &mut TcpState| Ok(Value::Int(s.pump()?)))
            })
            .method(
                "set_filter",
                &[TypeTag::Handle],
                TypeTag::Unit,
                |this, args| {
                    let f = args[0].as_handle()?.clone();
                    this.with_state(|s: &mut TcpState| {
                        s.filter = Some(f.clone());
                        Ok(Value::Unit)
                    })
                },
            )
            .method("stats", &[], TypeTag::List, |this, _| {
                this.with_state(|s: &mut TcpState| {
                    let st = &s.stats;
                    Ok(Value::List(vec![
                        Value::Int(st.segs_tx as i64),
                        Value::Int(st.segs_rx as i64),
                        Value::Int(st.bytes_tx as i64),
                        Value::Int(st.bytes_rx as i64),
                        Value::Int(st.retransmits as i64),
                        Value::Int(st.malformed as i64),
                        Value::Int(st.filtered as i64),
                        Value::Int(st.rst_tx as i64),
                        Value::Int(st.aborted as i64),
                        Value::Int(st.digest as i64),
                        Value::Int(st.backlog_dropped as i64),
                    ]))
                })
            })
        })
        .build()
}

/// Position of the digest in the `stats` list (for tests).
pub const STAT_DIGEST: usize = 9;
/// Position of the malformed counter in the `stats` list.
pub const STAT_MALFORMED: usize = 5;
/// Position of the retransmit counter in the `stats` list.
pub const STAT_RETRANSMITS: usize = 4;
/// Position of the aborted-connections counter in the `stats` list.
pub const STAT_ABORTED: usize = 8;
/// Position of the backlog-overflow counter in the `stats` list.
pub const STAT_BACKLOG_DROPPED: usize = 10;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simlink::{make_simlink, LinkConfig};

    const IP_A: u32 = 0x0A00_0001;
    const IP_B: u32 = 0x0A00_0002;
    const MAC_A: Mac = [2, 0, 0, 0, 0, 0xAA];
    const MAC_B: Mac = [2, 0, 0, 0, 0, 0xBB];

    fn pair(cfg: LinkConfig) -> (Arc<Mutex<Machine>>, ObjRef, ObjRef) {
        let (machine, a, b, _, _) = pair_with_link(cfg);
        (machine, a, b)
    }

    /// Like `pair`, but also returns the raw link endpoints so tests
    /// can partition / heal directions at runtime via `set_config`.
    fn pair_with_link(cfg: LinkConfig) -> (Arc<Mutex<Machine>>, ObjRef, ObjRef, ObjRef, ObjRef) {
        let machine = Arc::new(Mutex::new(Machine::new()));
        let (end_a, end_b) = make_simlink(machine.clone(), cfg);
        let a = make_tcp(machine.clone(), end_a.clone(), IP_A, MAC_A);
        let b = make_tcp(machine.clone(), end_b.clone(), IP_B, MAC_B);
        (machine, a, b, end_a, end_b)
    }

    /// Sets the drop rate of `end`'s transmit direction, leaving the
    /// other knobs as configured.
    fn set_drop(end: &ObjRef, permille: i64) {
        let knobs = end.invoke("link", "config", &[]).unwrap();
        let mut knobs = knobs.as_list().unwrap().to_vec();
        knobs[0] = Value::Int(permille);
        end.invoke("link", "set_config", &[Value::List(knobs)])
            .unwrap();
    }

    fn establish(machine: &Arc<Mutex<Machine>>, a: &ObjRef, b: &ObjRef, port: i64) -> (i64, i64) {
        b.invoke("tcp", "listen", &[Value::Int(port)]).unwrap();
        let id_a = a
            .invoke(
                "tcp",
                "connect",
                &[Value::Int(IP_B as i64), Value::Int(port)],
            )
            .unwrap()
            .as_int()
            .unwrap();
        pump_net(machine, &[a, b], 4);
        let id_b = b
            .invoke("tcp", "accept", &[Value::Int(port)])
            .unwrap()
            .as_int()
            .unwrap();
        assert!(id_b >= 0, "handshake completes");
        (id_a, id_b)
    }

    fn conn_state(ep: &ObjRef, id: i64) -> String {
        ep.invoke("tcp", "state", &[Value::Int(id)])
            .unwrap()
            .as_str()
            .unwrap()
            .to_string()
    }

    fn conn_error(ep: &ObjRef, id: i64) -> String {
        ep.invoke("tcp", "error", &[Value::Int(id)])
            .unwrap()
            .as_str()
            .unwrap()
            .to_string()
    }

    fn pump_net(machine: &Arc<Mutex<Machine>>, eps: &[&ObjRef], rounds: usize) {
        for _ in 0..rounds {
            for ep in eps {
                ep.invoke("tcp", "pump", &[]).unwrap();
            }
            machine.lock().tick(BASE_RTO / 4);
        }
    }

    fn tcp_stats(ep: &ObjRef) -> Vec<i64> {
        ep.invoke("tcp", "stats", &[])
            .unwrap()
            .as_list()
            .unwrap()
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect()
    }

    #[test]
    fn handshake_data_exchange_and_teardown() {
        let (machine, a, b) = pair(LinkConfig::perfect(7));
        b.invoke("tcp", "listen", &[Value::Int(80)]).unwrap();
        let id_a = a
            .invoke("tcp", "connect", &[Value::Int(IP_B as i64), Value::Int(80)])
            .unwrap()
            .as_int()
            .unwrap();
        pump_net(&machine, &[&a, &b], 4);
        let id_b = b
            .invoke("tcp", "accept", &[Value::Int(80)])
            .unwrap()
            .as_int()
            .unwrap();
        assert!(id_b >= 0, "handshake completes");
        assert_eq!(
            a.invoke("tcp", "state", &[Value::Int(id_a)]).unwrap(),
            Value::Str("established".into())
        );

        // A large message: forces segmentation (> MSS).
        let msg: Vec<u8> = (0..3500u32).map(|i| (i % 251) as u8).collect();
        let accepted = a
            .invoke(
                "tcp",
                "send",
                &[
                    Value::Int(id_a),
                    Value::Bytes(bytes::Bytes::from(msg.clone())),
                ],
            )
            .unwrap()
            .as_int()
            .unwrap();
        assert_eq!(accepted, msg.len() as i64);
        pump_net(&machine, &[&a, &b], 8);
        let got = b
            .invoke("tcp", "recv", &[Value::Int(id_b), Value::Int(1 << 20)])
            .unwrap();
        assert_eq!(got.as_bytes().unwrap().to_vec(), msg);

        // Full close in both directions.
        a.invoke("tcp", "close", &[Value::Int(id_a)]).unwrap();
        b.invoke("tcp", "close", &[Value::Int(id_b)]).unwrap();
        pump_net(&machine, &[&a, &b], 12);
        machine.lock().tick(TIME_WAIT_CYCLES + 1);
        pump_net(&machine, &[&a, &b], 2);
        let sa = a.invoke("tcp", "state", &[Value::Int(id_a)]).unwrap();
        let sb = b.invoke("tcp", "state", &[Value::Int(id_b)]).unwrap();
        assert_eq!(sa, Value::Str("closed".into()));
        assert_eq!(sb, Value::Str("closed".into()));
    }

    #[test]
    fn data_survives_a_lossy_link_via_retransmission() {
        let mut cfg = LinkConfig::perfect(21);
        cfg.drop_permille = 250;
        cfg.dup_permille = 100;
        cfg.reorder_permille = 100;
        let (machine, a, b) = pair(cfg);
        b.invoke("tcp", "listen", &[Value::Int(9)]).unwrap();
        let id_a = a
            .invoke("tcp", "connect", &[Value::Int(IP_B as i64), Value::Int(9)])
            .unwrap()
            .as_int()
            .unwrap();
        let msg: Vec<u8> = (0..8000u32).map(|i| (i * 7 % 256) as u8).collect();
        a.invoke(
            "tcp",
            "send",
            &[
                Value::Int(id_a),
                Value::Bytes(bytes::Bytes::from(msg.clone())),
            ],
        )
        .unwrap();
        let mut got = Vec::new();
        let mut id_b = -1;
        for _ in 0..400 {
            pump_net(&machine, &[&a, &b], 1);
            if id_b < 0 {
                id_b = b
                    .invoke("tcp", "accept", &[Value::Int(9)])
                    .unwrap()
                    .as_int()
                    .unwrap();
            }
            if id_b >= 0 {
                let chunk = b
                    .invoke("tcp", "recv", &[Value::Int(id_b), Value::Int(4096)])
                    .unwrap();
                got.extend_from_slice(chunk.as_bytes().unwrap());
                if got.len() == msg.len() {
                    break;
                }
            }
        }
        assert_eq!(got, msg, "stream is exact despite loss/dup/reorder");
        assert!(
            tcp_stats(&a)[STAT_RETRANSMITS] > 0,
            "loss actually exercised the retransmit path"
        );
    }

    #[test]
    fn same_seed_yields_identical_digest() {
        let run = |seed: u64| -> (Vec<i64>, Vec<i64>) {
            let mut cfg = LinkConfig::perfect(seed);
            cfg.drop_permille = 120;
            cfg.reorder_permille = 80;
            let (machine, a, b) = pair(cfg);
            b.invoke("tcp", "listen", &[Value::Int(5)]).unwrap();
            let id = a
                .invoke("tcp", "connect", &[Value::Int(IP_B as i64), Value::Int(5)])
                .unwrap()
                .as_int()
                .unwrap();
            let msg = vec![0x5A; 4000];
            a.invoke(
                "tcp",
                "send",
                &[Value::Int(id), Value::Bytes(bytes::Bytes::from(msg))],
            )
            .unwrap();
            pump_net(&machine, &[&a, &b], 40);
            (tcp_stats(&a), tcp_stats(&b))
        };
        assert_eq!(run(99), run(99), "replay is bit-identical");
        assert_ne!(
            run(99).0[STAT_DIGEST],
            run(100).0[STAT_DIGEST],
            "different seed takes a different trace"
        );
    }

    #[test]
    fn corrupted_segments_count_malformed_and_never_deliver() {
        let mut cfg = LinkConfig::perfect(33);
        cfg.corrupt_permille = 200;
        let (machine, a, b) = pair(cfg);
        b.invoke("tcp", "listen", &[Value::Int(5)]).unwrap();
        let id_a = a
            .invoke("tcp", "connect", &[Value::Int(IP_B as i64), Value::Int(5)])
            .unwrap()
            .as_int()
            .unwrap();
        let msg: Vec<u8> = (0..6000u32).map(|i| (i % 256) as u8).collect();
        a.invoke(
            "tcp",
            "send",
            &[
                Value::Int(id_a),
                Value::Bytes(bytes::Bytes::from(msg.clone())),
            ],
        )
        .unwrap();
        let mut got = Vec::new();
        let mut id_b = -1;
        for _ in 0..400 {
            pump_net(&machine, &[&a, &b], 1);
            if id_b < 0 {
                id_b = b
                    .invoke("tcp", "accept", &[Value::Int(5)])
                    .unwrap()
                    .as_int()
                    .unwrap();
            }
            if id_b >= 0 {
                let chunk = b
                    .invoke("tcp", "recv", &[Value::Int(id_b), Value::Int(4096)])
                    .unwrap();
                got.extend_from_slice(chunk.as_bytes().unwrap());
                if got.len() == msg.len() {
                    break;
                }
            }
        }
        assert_eq!(got, msg, "corruption never corrupts the stream");
        let malformed: i64 = tcp_stats(&a)[STAT_MALFORMED] + tcp_stats(&b)[STAT_MALFORMED];
        assert!(
            malformed > 0,
            "corrupted frames were counted, not delivered"
        );
    }

    #[test]
    fn listen_backlog_overflow_draws_rst_and_counts() {
        let (machine, a, b) = pair(LinkConfig::perfect(11));
        b.invoke("tcp", "listen", &[Value::Int(80)]).unwrap();
        b.invoke("tcp", "set_backlog", &[Value::Int(80), Value::Int(2)])
            .unwrap();
        let ids: Vec<i64> = (0..4)
            .map(|_| {
                a.invoke("tcp", "connect", &[Value::Int(IP_B as i64), Value::Int(80)])
                    .unwrap()
                    .as_int()
                    .unwrap()
            })
            .collect();
        pump_net(&machine, &[&a, &b], 6);
        assert_eq!(
            tcp_stats(&b)[STAT_BACKLOG_DROPPED],
            2,
            "completions past the cap were shed"
        );
        let reset: Vec<i64> = ids
            .iter()
            .copied()
            .filter(|&id| conn_state(&a, id) == "closed")
            .collect();
        assert_eq!(reset.len(), 2, "exactly the overflow was refused");
        for id in reset {
            assert_eq!(conn_error(&a, id), "reset", "refusal is a clean error");
        }
        for _ in 0..2 {
            let id = b
                .invoke("tcp", "accept", &[Value::Int(80)])
                .unwrap()
                .as_int()
                .unwrap();
            assert!(id >= 0, "queued connections still accept");
        }
        assert_eq!(
            b.invoke("tcp", "accept", &[Value::Int(80)])
                .unwrap()
                .as_int()
                .unwrap(),
            -1,
            "nothing beyond the cap was queued"
        );
    }

    #[test]
    fn user_timeout_aborts_a_partitioned_connection_cleanly() {
        let (machine, a, b, end_a, _end_b) = pair_with_link(LinkConfig::perfect(17));
        let (id_a, _id_b) = establish(&machine, &a, &b, 80);
        a.invoke(
            "tcp",
            "set_user_timeout",
            &[Value::Int(id_a), Value::Int(1_000_000)],
        )
        .unwrap();
        // Partition the A->B direction mid-stream: B never acks again.
        set_drop(&end_a, 1000);
        a.invoke(
            "tcp",
            "send",
            &[
                Value::Int(id_a),
                Value::Bytes(bytes::Bytes::from(vec![7u8; 2000])),
            ],
        )
        .unwrap();
        for _ in 0..40 {
            pump_net(&machine, &[&a, &b], 1);
            if conn_state(&a, id_a) == "closed" {
                break;
            }
        }
        assert_eq!(conn_state(&a, id_a), "closed");
        assert_eq!(conn_error(&a, id_a), "user-timeout");
        assert_eq!(tcp_stats(&a)[STAT_ABORTED], 1);
        assert!(
            tcp_stats(&a)[STAT_RETRANSMITS] > 0,
            "the stall was a real retransmit stall, not instant death"
        );
        // Further pumps must not re-abort, and healing the link must
        // not resurrect the dead connection.
        set_drop(&end_a, 0);
        pump_net(&machine, &[&a, &b], 6);
        assert_eq!(tcp_stats(&a)[STAT_ABORTED], 1);
        assert_eq!(conn_state(&a, id_a), "closed");
        assert_eq!(conn_error(&a, id_a), "user-timeout");
    }

    #[test]
    fn keepalive_probes_detect_a_dead_peer_but_spare_a_live_one() {
        let (machine, a, b, end_a, end_b) = pair_with_link(LinkConfig::perfect(23));
        let (id_a, _id_b) = establish(&machine, &a, &b, 80);
        a.invoke(
            "tcp",
            "set_keepalive",
            &[Value::Int(id_a), Value::Int(300_000)],
        )
        .unwrap();
        // Live peer: probes are answered, the idle connection survives
        // far past several keepalive intervals.
        pump_net(&machine, &[&a, &b], 30);
        assert_eq!(conn_state(&a, id_a), "established");
        // Dead peer: full partition. Probes go unanswered and the
        // connection aborts into a clean error state.
        set_drop(&end_a, 1000);
        set_drop(&end_b, 1000);
        for _ in 0..60 {
            pump_net(&machine, &[&a, &b], 1);
            if conn_state(&a, id_a) == "closed" {
                break;
            }
        }
        assert_eq!(conn_state(&a, id_a), "closed");
        assert_eq!(conn_error(&a, id_a), "keepalive-timeout");
        assert_eq!(tcp_stats(&a)[STAT_ABORTED], 1);
    }

    #[test]
    fn user_timeout_during_teardown_does_not_double_free_the_conn() {
        let (machine, a, b, end_a, _end_b) = pair_with_link(LinkConfig::perfect(29));
        let (id_a, _id_b) = establish(&machine, &a, &b, 80);
        a.invoke(
            "tcp",
            "set_user_timeout",
            &[Value::Int(id_a), Value::Int(800_000)],
        )
        .unwrap();
        // Partition, then close with data still queued: the connection
        // walks into FIN-WAIT-1 retransmitting against a dead link.
        set_drop(&end_a, 1000);
        a.invoke(
            "tcp",
            "send",
            &[
                Value::Int(id_a),
                Value::Bytes(bytes::Bytes::from(vec![9u8; 1500])),
            ],
        )
        .unwrap();
        a.invoke("tcp", "close", &[Value::Int(id_a)]).unwrap();
        for _ in 0..40 {
            pump_net(&machine, &[&a, &b], 1);
            if conn_state(&a, id_a) == "closed" {
                break;
            }
        }
        assert_eq!(conn_state(&a, id_a), "closed");
        assert_eq!(conn_error(&a, id_a), "user-timeout");
        assert_eq!(tcp_stats(&a)[STAT_ABORTED], 1);
        // The id stays valid — state/error remain callable and extra
        // timer passes neither re-abort nor panic.
        pump_net(&machine, &[&a, &b], 6);
        assert_eq!(tcp_stats(&a)[STAT_ABORTED], 1);
        assert_eq!(conn_state(&a, id_a), "closed");
        // Healing the link does not resurrect the dead connection.
        set_drop(&end_a, 0);
        pump_net(&machine, &[&a, &b], 6);
        assert_eq!(conn_state(&a, id_a), "closed");
        assert_eq!(conn_error(&a, id_a), "user-timeout");
    }

    #[test]
    fn user_timeout_never_fires_in_time_wait() {
        let (machine, a, b) = pair(LinkConfig::perfect(31));
        let (id_a, id_b) = establish(&machine, &a, &b, 80);
        a.invoke(
            "tcp",
            "set_user_timeout",
            &[Value::Int(id_a), Value::Int(150_000)],
        )
        .unwrap();
        a.invoke("tcp", "close", &[Value::Int(id_a)]).unwrap();
        b.invoke("tcp", "close", &[Value::Int(id_b)]).unwrap();
        pump_net(&machine, &[&a, &b], 8);
        assert_eq!(conn_state(&a, id_a), "time-wait");
        // Sit in TIME-WAIT for several user-timeout periods: with no
        // data outstanding the timer must never fire.
        pump_net(&machine, &[&a, &b], 10);
        assert_eq!(conn_state(&a, id_a), "time-wait");
        assert_eq!(conn_error(&a, id_a), "");
        machine.lock().tick(TIME_WAIT_CYCLES + 1);
        pump_net(&machine, &[&a, &b], 2);
        assert_eq!(conn_state(&a, id_a), "closed");
        assert_eq!(
            conn_error(&a, id_a),
            "",
            "expiry is a clean close, not an abort"
        );
        assert_eq!(tcp_stats(&a)[STAT_ABORTED], 0);
    }

    #[test]
    fn stray_segment_draws_rst() {
        let (machine, a, b) = pair(LinkConfig::perfect(3));
        // No listener on B: A's SYN must be refused.
        let id = a
            .invoke("tcp", "connect", &[Value::Int(IP_B as i64), Value::Int(7)])
            .unwrap()
            .as_int()
            .unwrap();
        pump_net(&machine, &[&a, &b], 4);
        assert_eq!(
            a.invoke("tcp", "state", &[Value::Int(id)]).unwrap(),
            Value::Str("closed".into())
        );
        assert!(tcp_stats(&b)[7] > 0, "B sent an RST");
    }
}
