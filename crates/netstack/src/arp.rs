//! The ARP object: address resolution as an interposable netdev layer.
//!
//! [`make_arp`] wraps any `netdev`-exporting object (the NIC driver, a
//! monitor, a [`crate::simlink`] endpoint) and exports **both** the same
//! `netdev` interface and an `arp` interface. Protocol objects above it
//! (`udp`, `tcp`) keep talking plain `netdev`; ARP traffic never reaches
//! them — requests addressed to this host are answered in-line from
//! `recv`, replies and gratuitous announcements populate the cache, and
//! everything else passes through untouched.
//!
//! The `arp` interface:
//! - `resolve(ip: int) -> bytes` — 6-byte MAC on a cache hit; on a miss
//!   broadcasts a request and returns empty (poll again after the reply
//!   has had time to arrive),
//! - `lookup(ip: int) -> bytes` — cache-only probe, no traffic,
//! - `insert(ip: int, mac: bytes) -> unit` — static entry,
//! - `announce() -> unit` — gratuitous ARP for our own address,
//! - `stats() -> list [requests_tx, replies_tx, replies_rx, hits, misses,
//!   entries]`.

use std::collections::HashMap;

use paramecium_obj::{ObjError, ObjRef, ObjectBuilder, TypeTag, Value};

use crate::wire::{self, ArpPacket, EthHeader, Mac, ARP_OP_REPLY, ARP_OP_REQUEST, ETHERTYPE_ARP};

/// ARP layer state.
struct ArpState {
    lower: ObjRef,
    ip: u32,
    mac: Mac,
    cache: HashMap<u32, Mac>,
    requests_tx: u64,
    replies_tx: u64,
    replies_rx: u64,
    hits: u64,
    misses: u64,
}

impl ArpState {
    fn send_lower(&self, frame: Vec<u8>) -> Result<(), ObjError> {
        self.lower
            .invoke("netdev", "send", &[Value::Bytes(bytes::Bytes::from(frame))])?;
        Ok(())
    }

    /// Handles an inbound ARP payload. Returns `true` if it was consumed.
    fn absorb(&mut self, payload: &[u8]) -> Result<bool, ObjError> {
        let Ok(pkt) = ArpPacket::parse(payload) else {
            // Malformed ARP is consumed (counted nowhere to deliver it).
            return Ok(true);
        };
        // Every valid ARP packet teaches us the sender's binding.
        self.cache.insert(pkt.sender_ip, pkt.sender_mac);
        match pkt.op {
            ARP_OP_REQUEST if pkt.target_ip == self.ip => {
                let reply = ArpPacket {
                    op: ARP_OP_REPLY,
                    sender_mac: self.mac,
                    sender_ip: self.ip,
                    target_mac: pkt.sender_mac,
                    target_ip: pkt.sender_ip,
                }
                .to_frame(self.mac, pkt.sender_mac);
                self.send_lower(reply)?;
                self.replies_tx += 1;
            }
            ARP_OP_REPLY => self.replies_rx += 1,
            _ => {}
        }
        Ok(true)
    }
}

/// Builds the ARP layer over `lower`, owning protocol address `ip` with
/// hardware address `mac`.
pub fn make_arp(lower: ObjRef, ip: u32, mac: Mac) -> ObjRef {
    ObjectBuilder::new("arp")
        .state(ArpState {
            lower,
            ip,
            mac,
            cache: HashMap::new(),
            requests_tx: 0,
            replies_tx: 0,
            replies_rx: 0,
            hits: 0,
            misses: 0,
        })
        .interface("netdev", |i| {
            i.method("send", &[TypeTag::Bytes], TypeTag::Unit, |this, args| {
                let lower = this.with_state(|s: &mut ArpState| Ok(s.lower.clone()))?;
                lower.invoke("netdev", "send", args)
            })
            .method("recv", &[], TypeTag::Bytes, |this, _| {
                // Pull from below until a non-ARP frame (or nothing) shows
                // up; ARP frames are absorbed into the cache / answered.
                let lower = this.with_state(|s: &mut ArpState| Ok(s.lower.clone()))?;
                loop {
                    let frame = lower.invoke("netdev", "recv", &[])?;
                    let bytes = frame.as_bytes()?;
                    if bytes.is_empty() {
                        return Ok(frame);
                    }
                    let is_arp = matches!(
                        EthHeader::parse(bytes),
                        Ok((eth, _)) if eth.ethertype == ETHERTYPE_ARP
                    );
                    if !is_arp {
                        return Ok(frame);
                    }
                    let payload = bytes.slice(wire::ETH_HLEN..bytes.len());
                    this.with_state(|s: &mut ArpState| s.absorb(&payload))?;
                }
            })
            .method("pending", &[], TypeTag::Int, |this, _| {
                let lower = this.with_state(|s: &mut ArpState| Ok(s.lower.clone()))?;
                lower.invoke("netdev", "pending", &[])
            })
            .method("stats", &[], TypeTag::List, |this, _| {
                let lower = this.with_state(|s: &mut ArpState| Ok(s.lower.clone()))?;
                lower.invoke("netdev", "stats", &[])
            })
        })
        .interface("arp", |i| {
            i.method("resolve", &[TypeTag::Int], TypeTag::Bytes, |this, args| {
                let ip = args[0].as_int()? as u32;
                this.with_state(|s: &mut ArpState| {
                    if let Some(mac) = s.cache.get(&ip) {
                        s.hits += 1;
                        return Ok(Value::Bytes(bytes::Bytes::copy_from_slice(mac)));
                    }
                    s.misses += 1;
                    let req = ArpPacket {
                        op: ARP_OP_REQUEST,
                        sender_mac: s.mac,
                        sender_ip: s.ip,
                        target_mac: [0; 6],
                        target_ip: ip,
                    }
                    .to_frame(s.mac, wire::MAC_BROADCAST);
                    s.send_lower(req)?;
                    s.requests_tx += 1;
                    Ok(Value::Bytes(bytes::Bytes::new()))
                })
            })
            .method("lookup", &[TypeTag::Int], TypeTag::Bytes, |this, args| {
                let ip = args[0].as_int()? as u32;
                this.with_state(|s: &mut ArpState| {
                    Ok(match s.cache.get(&ip) {
                        Some(mac) => Value::Bytes(bytes::Bytes::copy_from_slice(mac)),
                        None => Value::Bytes(bytes::Bytes::new()),
                    })
                })
            })
            .method(
                "insert",
                &[TypeTag::Int, TypeTag::Bytes],
                TypeTag::Unit,
                |this, args| {
                    let ip = args[0].as_int()? as u32;
                    let mac_bytes = args[1].as_bytes()?;
                    let mac: Mac = mac_bytes
                        .as_ref()
                        .try_into()
                        .map_err(|_| ObjError::failed("mac must be 6 bytes"))?;
                    this.with_state(|s: &mut ArpState| {
                        s.cache.insert(ip, mac);
                        Ok(Value::Unit)
                    })
                },
            )
            .method("announce", &[], TypeTag::Unit, |this, _| {
                this.with_state(|s: &mut ArpState| {
                    let gratuitous = ArpPacket {
                        op: ARP_OP_REQUEST,
                        sender_mac: s.mac,
                        sender_ip: s.ip,
                        target_mac: [0; 6],
                        target_ip: s.ip,
                    }
                    .to_frame(s.mac, wire::MAC_BROADCAST);
                    s.send_lower(gratuitous)?;
                    s.requests_tx += 1;
                    Ok(Value::Unit)
                })
            })
            .method("stats", &[], TypeTag::List, |this, _| {
                this.with_state(|s: &mut ArpState| {
                    Ok(Value::List(vec![
                        Value::Int(s.requests_tx as i64),
                        Value::Int(s.replies_tx as i64),
                        Value::Int(s.replies_rx as i64),
                        Value::Int(s.hits as i64),
                        Value::Int(s.misses as i64),
                        Value::Int(s.cache.len() as i64),
                    ]))
                })
            })
        })
        .build()
}

/// Resolves `ip` through an object exporting `arp`, returning the MAC to
/// address a frame to: the cached binding, or broadcast while resolution
/// is still in flight. Shared by the UDP and TCP layers.
pub fn resolve_or_broadcast(arp: &ObjRef, ip: u32) -> Result<Mac, ObjError> {
    let mac = arp.invoke("arp", "resolve", &[Value::Int(i64::from(ip))])?;
    let mac = mac.as_bytes()?;
    Ok(match mac.as_ref().try_into() {
        Ok(mac) => mac,
        Err(_) => wire::MAC_BROADCAST,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simlink::{make_simlink, LinkConfig};
    use paramecium_machine::Machine;
    use parking_lot::Mutex;
    use std::sync::Arc;

    const IP_A: u32 = 0x0A00_0001;
    const IP_B: u32 = 0x0A00_0002;
    const MAC_A: Mac = [2, 0, 0, 0, 0, 1];
    const MAC_B: Mac = [2, 0, 0, 0, 0, 2];

    fn two_hosts() -> (Arc<Mutex<Machine>>, ObjRef, ObjRef) {
        let machine = Arc::new(Mutex::new(Machine::new()));
        let (la, lb) = make_simlink(machine.clone(), LinkConfig::perfect(3));
        let a = make_arp(la, IP_A, MAC_A);
        let b = make_arp(lb, IP_B, MAC_B);
        (machine, a, b)
    }

    fn resolve(host: &ObjRef, ip: u32) -> Vec<u8> {
        host.invoke("arp", "resolve", &[Value::Int(i64::from(ip))])
            .unwrap()
            .as_bytes()
            .unwrap()
            .to_vec()
    }

    fn pump(host: &ObjRef) {
        // Drain the netdev until idle; ARP frames are absorbed in-line.
        loop {
            let f = host.invoke("netdev", "recv", &[]).unwrap();
            if f.as_bytes().unwrap().is_empty() {
                break;
            }
        }
    }

    #[test]
    fn request_reply_populates_both_caches() {
        let (machine, a, b) = two_hosts();
        // Miss: request goes out, nothing cached yet.
        assert!(resolve(&a, IP_B).is_empty());
        machine.lock().tick(10);
        pump(&b); // B absorbs the request, learns A, replies.
        machine.lock().tick(10);
        pump(&a); // A absorbs the reply.
        assert_eq!(resolve(&a, IP_B), MAC_B.to_vec());
        // B learned A's binding from the request itself.
        assert_eq!(resolve(&b, IP_A), MAC_A.to_vec());
        let stats = a.invoke("arp", "stats", &[]).unwrap();
        let s = stats.as_list().unwrap().to_vec();
        assert_eq!(s[0], Value::Int(1)); // one request sent
        assert_eq!(s[2], Value::Int(1)); // one reply received
        assert_eq!(s[3], Value::Int(1)); // one later hit (on A)
        assert_eq!(s[4], Value::Int(1)); // one initial miss
    }

    #[test]
    fn non_arp_traffic_passes_through() {
        let (machine, a, b) = two_hosts();
        let frame = wire::build_udp_frame(MAC_A, MAC_B, IP_A, IP_B, 1, 2, b"data");
        a.invoke(
            "netdev",
            "send",
            &[Value::Bytes(bytes::Bytes::from(frame.clone()))],
        )
        .unwrap();
        machine.lock().tick(10);
        let got = b.invoke("netdev", "recv", &[]).unwrap();
        assert_eq!(got.as_bytes().unwrap().as_ref(), &frame[..]);
    }

    #[test]
    fn gratuitous_announce_preloads_peers() {
        let (machine, a, b) = two_hosts();
        a.invoke("arp", "announce", &[]).unwrap();
        machine.lock().tick(10);
        pump(&b);
        // B resolved A without any request of its own.
        assert_eq!(resolve(&b, IP_A), MAC_A.to_vec());
        let s = b.invoke("arp", "stats", &[]).unwrap();
        assert_eq!(s.as_list().unwrap()[0], Value::Int(0), "no request sent");
    }

    #[test]
    fn insert_and_lookup_are_cache_only() {
        let (_machine, a, _b) = two_hosts();
        assert!(a
            .invoke("arp", "lookup", &[Value::Int(i64::from(IP_B))])
            .unwrap()
            .as_bytes()
            .unwrap()
            .is_empty());
        a.invoke(
            "arp",
            "insert",
            &[
                Value::Int(i64::from(IP_B)),
                Value::Bytes(bytes::Bytes::copy_from_slice(&MAC_B)),
            ],
        )
        .unwrap();
        assert_eq!(
            a.invoke("arp", "lookup", &[Value::Int(i64::from(IP_B))])
                .unwrap()
                .as_bytes()
                .unwrap()
                .as_ref(),
            &MAC_B[..]
        );
        assert_eq!(resolve_or_broadcast(&a, IP_B).unwrap(), MAC_B);
        assert_eq!(
            resolve_or_broadcast(&a, 0x0909_0909).unwrap(),
            wire::MAC_BROADCAST
        );
    }
}
