//! The ARP object: address resolution as an interposable netdev layer.
//!
//! [`make_arp`] wraps any `netdev`-exporting object (the NIC driver, a
//! monitor, a [`crate::simlink`] endpoint) and exports **both** the same
//! `netdev` interface and an `arp` interface. Protocol objects above it
//! (`udp`, `tcp`) keep talking plain `netdev`; ARP traffic never reaches
//! them — requests addressed to this host are answered in-line from
//! `recv`, replies and gratuitous announcements populate the cache, and
//! everything else passes through untouched.
//!
//! Outbound IPv4 frames addressed to the link-broadcast MAC — the
//! signature of an upper layer that could not resolve its next hop —
//! are **parked** per destination IP rather than flooded: the layer
//! drives resolution itself and releases the queue rewritten to the
//! learned unicast MAC when the reply lands. Each per-IP queue is
//! bounded at [`ARP_PENDING_MAX`] frames, dropping the oldest beyond
//! that, so an unresolvable peer costs bounded memory.
//!
//! The `arp` interface:
//! - `resolve(ip: int) -> bytes` — 6-byte MAC on a cache hit; on a miss
//!   broadcasts a request and returns empty (poll again after the reply
//!   has had time to arrive),
//! - `lookup(ip: int) -> bytes` — cache-only probe, no traffic,
//! - `insert(ip: int, mac: bytes) -> unit` — static entry,
//! - `announce() -> unit` — gratuitous ARP for our own address,
//! - `stats() -> list [requests_tx, replies_tx, replies_rx, hits, misses,
//!   entries, pending, pending_dropped]`.

use std::collections::{HashMap, VecDeque};

use paramecium_obj::{ObjError, ObjRef, ObjectBuilder, TypeTag, Value};

use crate::wire::{
    self, ArpPacket, EthHeader, Ipv4Header, Mac, ARP_OP_REPLY, ARP_OP_REQUEST, ETHERTYPE_ARP,
    ETHERTYPE_IPV4, MAC_BROADCAST,
};

/// Cap on frames parked per unresolved IP; the oldest is dropped to
/// admit a newer one beyond this.
pub const ARP_PENDING_MAX: usize = 16;

/// ARP layer state.
struct ArpState {
    lower: ObjRef,
    ip: u32,
    mac: Mac,
    cache: HashMap<u32, Mac>,
    /// Outbound frames awaiting resolution, keyed by destination IP.
    pending: HashMap<u32, VecDeque<bytes::Bytes>>,
    requests_tx: u64,
    replies_tx: u64,
    replies_rx: u64,
    hits: u64,
    misses: u64,
    pending_dropped: u64,
}

impl ArpState {
    fn send_lower(&self, frame: Vec<u8>) -> Result<(), ObjError> {
        self.lower
            .invoke("netdev", "send", &[Value::Bytes(bytes::Bytes::from(frame))])?;
        Ok(())
    }

    /// Outbound frame: IPv4 going out link-broadcast is parked until
    /// its destination resolves; everything else passes straight down.
    fn send_out(&mut self, frame: bytes::Bytes) -> Result<(), ObjError> {
        let dst_ip = match EthHeader::parse(&frame) {
            Ok((eth, payload)) if eth.ethertype == ETHERTYPE_IPV4 && eth.dst == MAC_BROADCAST => {
                match Ipv4Header::parse(payload) {
                    // Genuine broadcast IP traffic is meant to flood.
                    Ok((ip, _)) if ip.dst != u32::MAX => Some(ip.dst),
                    _ => None,
                }
            }
            _ => None,
        };
        let Some(dst_ip) = dst_ip else {
            return self.send_lower(frame.to_vec());
        };
        if let Some(mac) = self.cache.get(&dst_ip) {
            // Late cache hit: rewrite to unicast and send now.
            let mut out = frame.to_vec();
            out[0..6].copy_from_slice(mac);
            return self.send_lower(out);
        }
        let queue = self.pending.entry(dst_ip).or_default();
        if queue.len() >= ARP_PENDING_MAX {
            queue.pop_front();
            self.pending_dropped += 1;
        }
        let first = queue.is_empty();
        queue.push_back(frame);
        if first {
            // Drive resolution for a queue that just became non-empty.
            let req = ArpPacket {
                op: ARP_OP_REQUEST,
                sender_mac: self.mac,
                sender_ip: self.ip,
                target_mac: [0; 6],
                target_ip: dst_ip,
            }
            .to_frame(self.mac, wire::MAC_BROADCAST);
            self.send_lower(req)?;
            self.requests_tx += 1;
        }
        Ok(())
    }

    /// Handles an inbound ARP payload. Returns `true` if it was consumed.
    fn absorb(&mut self, payload: &[u8]) -> Result<bool, ObjError> {
        let Ok(pkt) = ArpPacket::parse(payload) else {
            // Malformed ARP is consumed (counted nowhere to deliver it).
            return Ok(true);
        };
        // Every valid ARP packet teaches us the sender's binding —
        // and releases any frames parked on it, rewritten to unicast.
        self.cache.insert(pkt.sender_ip, pkt.sender_mac);
        if let Some(queue) = self.pending.remove(&pkt.sender_ip) {
            for frame in queue {
                let mut frame = frame.to_vec();
                frame[0..6].copy_from_slice(&pkt.sender_mac);
                self.send_lower(frame)?;
            }
        }
        match pkt.op {
            ARP_OP_REQUEST if pkt.target_ip == self.ip => {
                let reply = ArpPacket {
                    op: ARP_OP_REPLY,
                    sender_mac: self.mac,
                    sender_ip: self.ip,
                    target_mac: pkt.sender_mac,
                    target_ip: pkt.sender_ip,
                }
                .to_frame(self.mac, pkt.sender_mac);
                self.send_lower(reply)?;
                self.replies_tx += 1;
            }
            ARP_OP_REPLY => self.replies_rx += 1,
            _ => {}
        }
        Ok(true)
    }
}

/// Builds the ARP layer over `lower`, owning protocol address `ip` with
/// hardware address `mac`.
pub fn make_arp(lower: ObjRef, ip: u32, mac: Mac) -> ObjRef {
    ObjectBuilder::new("arp")
        .state(ArpState {
            lower,
            ip,
            mac,
            cache: HashMap::new(),
            pending: HashMap::new(),
            requests_tx: 0,
            replies_tx: 0,
            replies_rx: 0,
            hits: 0,
            misses: 0,
            pending_dropped: 0,
        })
        .interface("netdev", |i| {
            i.method("send", &[TypeTag::Bytes], TypeTag::Unit, |this, args| {
                let frame = args[0].as_bytes()?.clone();
                this.with_state(|s: &mut ArpState| {
                    s.send_out(frame)?;
                    Ok(Value::Unit)
                })
            })
            .method("recv", &[], TypeTag::Bytes, |this, _| {
                // Pull from below until a non-ARP frame (or nothing) shows
                // up; ARP frames are absorbed into the cache / answered.
                let lower = this.with_state(|s: &mut ArpState| Ok(s.lower.clone()))?;
                loop {
                    let frame = lower.invoke("netdev", "recv", &[])?;
                    let bytes = frame.as_bytes()?;
                    if bytes.is_empty() {
                        return Ok(frame);
                    }
                    let is_arp = matches!(
                        EthHeader::parse(bytes),
                        Ok((eth, _)) if eth.ethertype == ETHERTYPE_ARP
                    );
                    if !is_arp {
                        return Ok(frame);
                    }
                    let payload = bytes.slice(wire::ETH_HLEN..bytes.len());
                    this.with_state(|s: &mut ArpState| s.absorb(&payload))?;
                }
            })
            .method("pending", &[], TypeTag::Int, |this, _| {
                let lower = this.with_state(|s: &mut ArpState| Ok(s.lower.clone()))?;
                lower.invoke("netdev", "pending", &[])
            })
            .method("stats", &[], TypeTag::List, |this, _| {
                let lower = this.with_state(|s: &mut ArpState| Ok(s.lower.clone()))?;
                lower.invoke("netdev", "stats", &[])
            })
        })
        .interface("arp", |i| {
            i.method("resolve", &[TypeTag::Int], TypeTag::Bytes, |this, args| {
                let ip = args[0].as_int()? as u32;
                this.with_state(|s: &mut ArpState| {
                    if let Some(mac) = s.cache.get(&ip) {
                        s.hits += 1;
                        return Ok(Value::Bytes(bytes::Bytes::copy_from_slice(mac)));
                    }
                    s.misses += 1;
                    let req = ArpPacket {
                        op: ARP_OP_REQUEST,
                        sender_mac: s.mac,
                        sender_ip: s.ip,
                        target_mac: [0; 6],
                        target_ip: ip,
                    }
                    .to_frame(s.mac, wire::MAC_BROADCAST);
                    s.send_lower(req)?;
                    s.requests_tx += 1;
                    Ok(Value::Bytes(bytes::Bytes::new()))
                })
            })
            .method("lookup", &[TypeTag::Int], TypeTag::Bytes, |this, args| {
                let ip = args[0].as_int()? as u32;
                this.with_state(|s: &mut ArpState| {
                    Ok(match s.cache.get(&ip) {
                        Some(mac) => Value::Bytes(bytes::Bytes::copy_from_slice(mac)),
                        None => Value::Bytes(bytes::Bytes::new()),
                    })
                })
            })
            .method(
                "insert",
                &[TypeTag::Int, TypeTag::Bytes],
                TypeTag::Unit,
                |this, args| {
                    let ip = args[0].as_int()? as u32;
                    let mac_bytes = args[1].as_bytes()?;
                    let mac: Mac = mac_bytes
                        .as_ref()
                        .try_into()
                        .map_err(|_| ObjError::failed("mac must be 6 bytes"))?;
                    this.with_state(|s: &mut ArpState| {
                        s.cache.insert(ip, mac);
                        Ok(Value::Unit)
                    })
                },
            )
            .method("announce", &[], TypeTag::Unit, |this, _| {
                this.with_state(|s: &mut ArpState| {
                    let gratuitous = ArpPacket {
                        op: ARP_OP_REQUEST,
                        sender_mac: s.mac,
                        sender_ip: s.ip,
                        target_mac: [0; 6],
                        target_ip: s.ip,
                    }
                    .to_frame(s.mac, wire::MAC_BROADCAST);
                    s.send_lower(gratuitous)?;
                    s.requests_tx += 1;
                    Ok(Value::Unit)
                })
            })
            .method("stats", &[], TypeTag::List, |this, _| {
                this.with_state(|s: &mut ArpState| {
                    Ok(Value::List(vec![
                        Value::Int(s.requests_tx as i64),
                        Value::Int(s.replies_tx as i64),
                        Value::Int(s.replies_rx as i64),
                        Value::Int(s.hits as i64),
                        Value::Int(s.misses as i64),
                        Value::Int(s.cache.len() as i64),
                        Value::Int(s.pending.values().map(VecDeque::len).sum::<usize>() as i64),
                        Value::Int(s.pending_dropped as i64),
                    ]))
                })
            })
        })
        .build()
}

/// Resolves `ip` through an object exporting `arp`, returning the MAC to
/// address a frame to: the cached binding, or broadcast while resolution
/// is still in flight. Shared by the UDP and TCP layers.
pub fn resolve_or_broadcast(arp: &ObjRef, ip: u32) -> Result<Mac, ObjError> {
    let mac = arp.invoke("arp", "resolve", &[Value::Int(i64::from(ip))])?;
    let mac = mac.as_bytes()?;
    Ok(match mac.as_ref().try_into() {
        Ok(mac) => mac,
        Err(_) => wire::MAC_BROADCAST,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simlink::{make_simlink, LinkConfig};
    use paramecium_machine::Machine;
    use parking_lot::Mutex;
    use std::sync::Arc;

    const IP_A: u32 = 0x0A00_0001;
    const IP_B: u32 = 0x0A00_0002;
    const MAC_A: Mac = [2, 0, 0, 0, 0, 1];
    const MAC_B: Mac = [2, 0, 0, 0, 0, 2];

    fn two_hosts() -> (Arc<Mutex<Machine>>, ObjRef, ObjRef) {
        let machine = Arc::new(Mutex::new(Machine::new()));
        let (la, lb) = make_simlink(machine.clone(), LinkConfig::perfect(3));
        let a = make_arp(la, IP_A, MAC_A);
        let b = make_arp(lb, IP_B, MAC_B);
        (machine, a, b)
    }

    fn resolve(host: &ObjRef, ip: u32) -> Vec<u8> {
        host.invoke("arp", "resolve", &[Value::Int(i64::from(ip))])
            .unwrap()
            .as_bytes()
            .unwrap()
            .to_vec()
    }

    fn pump(host: &ObjRef) {
        // Drain the netdev until idle; ARP frames are absorbed in-line.
        loop {
            let f = host.invoke("netdev", "recv", &[]).unwrap();
            if f.as_bytes().unwrap().is_empty() {
                break;
            }
        }
    }

    #[test]
    fn request_reply_populates_both_caches() {
        let (machine, a, b) = two_hosts();
        // Miss: request goes out, nothing cached yet.
        assert!(resolve(&a, IP_B).is_empty());
        machine.lock().tick(10);
        pump(&b); // B absorbs the request, learns A, replies.
        machine.lock().tick(10);
        pump(&a); // A absorbs the reply.
        assert_eq!(resolve(&a, IP_B), MAC_B.to_vec());
        // B learned A's binding from the request itself.
        assert_eq!(resolve(&b, IP_A), MAC_A.to_vec());
        let stats = a.invoke("arp", "stats", &[]).unwrap();
        let s = stats.as_list().unwrap().to_vec();
        assert_eq!(s[0], Value::Int(1)); // one request sent
        assert_eq!(s[2], Value::Int(1)); // one reply received
        assert_eq!(s[3], Value::Int(1)); // one later hit (on A)
        assert_eq!(s[4], Value::Int(1)); // one initial miss
    }

    #[test]
    fn non_arp_traffic_passes_through() {
        let (machine, a, b) = two_hosts();
        let frame = wire::build_udp_frame(MAC_A, MAC_B, IP_A, IP_B, 1, 2, b"data");
        a.invoke(
            "netdev",
            "send",
            &[Value::Bytes(bytes::Bytes::from(frame.clone()))],
        )
        .unwrap();
        machine.lock().tick(10);
        let got = b.invoke("netdev", "recv", &[]).unwrap();
        assert_eq!(got.as_bytes().unwrap().as_ref(), &frame[..]);
    }

    #[test]
    fn gratuitous_announce_preloads_peers() {
        let (machine, a, b) = two_hosts();
        a.invoke("arp", "announce", &[]).unwrap();
        machine.lock().tick(10);
        pump(&b);
        // B resolved A without any request of its own.
        assert_eq!(resolve(&b, IP_A), MAC_A.to_vec());
        let s = b.invoke("arp", "stats", &[]).unwrap();
        assert_eq!(s.as_list().unwrap()[0], Value::Int(0), "no request sent");
    }

    fn arp_stats(host: &ObjRef) -> Vec<i64> {
        host.invoke("arp", "stats", &[])
            .unwrap()
            .as_list()
            .unwrap()
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect()
    }

    #[test]
    fn unresolved_frames_park_then_flush_unicast_on_reply() {
        let (machine, a, b) = two_hosts();
        // An upper layer that failed to resolve sends link-broadcast.
        let frame = wire::build_udp_frame(MAC_A, wire::MAC_BROADCAST, IP_A, IP_B, 1, 2, b"held");
        a.invoke("netdev", "send", &[Value::Bytes(bytes::Bytes::from(frame))])
            .unwrap();
        assert_eq!(arp_stats(&a)[6], 1, "frame parked awaiting resolution");
        machine.lock().tick(10);
        pump(&b); // B absorbs the request and replies; no data yet.
        machine.lock().tick(10);
        pump(&a); // A absorbs the reply and releases the parked frame.
        assert_eq!(arp_stats(&a)[6], 0, "queue drained on learn");
        machine.lock().tick(10);
        let got = b.invoke("netdev", "recv", &[]).unwrap();
        let got = got.as_bytes().unwrap();
        assert_eq!(&got[0..6], &MAC_B[..], "released frame went out unicast");
        assert_eq!(&got[got.len() - 4..], b"held");
    }

    #[test]
    fn pending_queue_is_bounded_dropping_oldest() {
        let (machine, a, b) = two_hosts();
        for i in 0..(ARP_PENDING_MAX as u8 + 3) {
            let frame = wire::build_udp_frame(MAC_A, wire::MAC_BROADCAST, IP_A, IP_B, 1, 2, &[i]);
            a.invoke("netdev", "send", &[Value::Bytes(bytes::Bytes::from(frame))])
                .unwrap();
        }
        let s = arp_stats(&a);
        assert_eq!(s[6], ARP_PENDING_MAX as i64, "queue capped");
        assert_eq!(s[7], 3, "overflow counted as dropped");
        assert_eq!(s[0], 1, "one request per unresolved destination");
        // Resolution releases the survivors — the oldest three are gone.
        machine.lock().tick(10);
        pump(&b);
        machine.lock().tick(10);
        pump(&a);
        machine.lock().tick(10);
        let mut payloads = Vec::new();
        loop {
            let f = b.invoke("netdev", "recv", &[]).unwrap();
            let f = f.as_bytes().unwrap();
            if f.is_empty() {
                break;
            }
            payloads.push(f[f.len() - 1]);
        }
        let expect: Vec<u8> = (3..ARP_PENDING_MAX as u8 + 3).collect();
        assert_eq!(
            payloads, expect,
            "drop-oldest kept the newest frames in order"
        );
    }

    #[test]
    fn insert_and_lookup_are_cache_only() {
        let (_machine, a, _b) = two_hosts();
        assert!(a
            .invoke("arp", "lookup", &[Value::Int(i64::from(IP_B))])
            .unwrap()
            .as_bytes()
            .unwrap()
            .is_empty());
        a.invoke(
            "arp",
            "insert",
            &[
                Value::Int(i64::from(IP_B)),
                Value::Bytes(bytes::Bytes::copy_from_slice(&MAC_B)),
            ],
        )
        .unwrap();
        assert_eq!(
            a.invoke("arp", "lookup", &[Value::Int(i64::from(IP_B))])
                .unwrap()
                .as_bytes()
                .unwrap()
                .as_ref(),
            &MAC_B[..]
        );
        assert_eq!(resolve_or_broadcast(&a, IP_B).unwrap(), MAC_B);
        assert_eq!(
            resolve_or_broadcast(&a, 0x0909_0909).unwrap(),
            wire::MAC_BROADCAST
        );
    }
}
