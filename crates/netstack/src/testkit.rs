//! Shared test support for the network stack.
//!
//! Every layer's unit tests — and the workspace integration tests — used
//! to carry their own copy of "boot a machine, claim the NIC, build a
//! canonical UDP frame, poke it into the receive ring". This module is
//! the single copy: canonical addresses, machine/driver bootstrap, and
//! frame injection against the machine's virtual NIC.
//!
//! It is an ordinary public module (not `#[cfg(test)]`) so integration
//! tests and benches can reach it as `paramecium_netstack::testkit`;
//! nothing in it is used by the production objects.

use std::sync::Arc;

use paramecium_core::{domain::KERNEL_DOMAIN, memsvc::MemService};
use paramecium_machine::{dev::nic::Nic, Machine};
use paramecium_obj::ObjRef;
use parking_lot::Mutex;

use crate::driver::make_driver;
use crate::wire::{self, Mac};

/// The IP the local endpoint owns in canonical test topologies.
pub const MY_IP: u32 = 0x0A00_0001;
/// The canonical remote peer.
pub const PEER_IP: u32 = 0x0A00_0002;
/// MAC of the local endpoint.
pub const MY_MAC: Mac = [2, 0, 0, 0, 0, 1];
/// MAC the canonical peer sends from.
pub const PEER_MAC: Mac = [2, 0, 0, 0, 0, 9];
/// Source port the canonical peer sends from.
pub const PEER_PORT: u16 = 4444;

/// A booted machine wrapped for sharing.
pub fn test_machine() -> Arc<Mutex<Machine>> {
    Arc::new(Mutex::new(Machine::new()))
}

/// Machine + memory service + NIC driver claimed in the kernel domain —
/// the smallest real `netdev` stack.
pub fn test_driver() -> (Arc<MemService>, ObjRef) {
    let mem = Arc::new(MemService::new(test_machine()));
    let driver = make_driver(&mem, KERNEL_DOMAIN).expect("driver claims the NIC");
    (mem, driver)
}

/// Injects a raw frame into the machine's NIC receive ring and ticks the
/// clock so interrupt-driven paths observe it.
pub fn inject_frame(machine: &Arc<Mutex<Machine>>, frame: Vec<u8>) {
    let mut m = machine.lock();
    m.device_mut::<Nic>("nic")
        .expect("nic present")
        .inject_rx(frame);
    m.tick(1);
}

/// Builds the canonical UDP test frame: `PEER -> MY_IP:dst_port`.
pub fn udp_frame_to(dst_port: u16, payload: &[u8]) -> Vec<u8> {
    wire::build_udp_frame(
        PEER_MAC, MY_MAC, PEER_IP, MY_IP, PEER_PORT, dst_port, payload,
    )
}

/// Injects the canonical UDP test frame.
pub fn inject_udp(machine: &Arc<Mutex<Machine>>, dst_port: u16, payload: &[u8]) {
    inject_frame(machine, udp_frame_to(dst_port, payload));
}

/// Takes the next transmitted frame off the NIC, if any.
pub fn tx_take(machine: &Arc<Mutex<Machine>>) -> Option<Vec<u8>> {
    machine
        .lock()
        .device_mut::<Nic>("nic")
        .expect("nic present")
        .tx_take()
        .map(|f| f.to_vec())
}
