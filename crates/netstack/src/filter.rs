//! Packet filters — the downloadable protocol-processing components.
//!
//! "For example, inserting application components for fast protocol
//! processing into a shared network device driver is close to impossible
//! [under software-only protection]" (paper, section 1). These filters are
//! those application components. All export the `filter` interface:
//!
//! - `check(frame: bytes) -> bool` — should this frame be delivered?
//! - `stats() -> list [checked, accepted]`
//!
//! Three flavours:
//! - a **native** filter (Rust, part of the toolbox),
//! - a **bytecode** filter program written in the verifiable idiom
//!   (constant-offset loads), which a type-safe-compiler certifier will
//!   sign — and an adapter wrapping any loaded bytecode component object
//!   into the `filter` interface.

use paramecium_obj::{ObjRef, ObjectBuilder, TypeTag, Value};
use paramecium_sfi::{asm::Asm, bytecode::Program, Reg};

use crate::wire;

/// Filter statistics.
#[derive(Default)]
struct FilterState {
    port: u16,
    checked: u64,
    accepted: u64,
}

/// Builds a native filter accepting UDP datagrams to `port`.
pub fn make_native_port_filter(port: u16) -> ObjRef {
    ObjectBuilder::new("port-filter")
        .state(FilterState {
            port,
            ..FilterState::default()
        })
        .interface("filter", |i| {
            i.method("check", &[TypeTag::Bytes], TypeTag::Bool, |this, args| {
                let frame = args[0].as_bytes()?.clone();
                this.with_state(|s: &mut FilterState| {
                    s.checked += 1;
                    let ok = matches!(
                        wire::parse_udp_frame(&frame),
                        Ok((_, udp, _)) if udp.dst_port == s.port
                    );
                    if ok {
                        s.accepted += 1;
                    }
                    Ok(Value::Bool(ok))
                })
            })
            .method("stats", &[], TypeTag::List, |this, _| {
                this.with_state(|s: &mut FilterState| {
                    Ok(Value::List(vec![
                        Value::Int(s.checked as i64),
                        Value::Int(s.accepted as i64),
                    ]))
                })
            })
        })
        .build()
}

/// Builds a native filter accepting TCP segments *or* UDP datagrams to
/// `port`. Like the bytecode filter it reads the headers at fixed
/// offsets (both L4 protocols keep the destination port at the same
/// place), so it is cheap enough to sit in front of a TCP endpoint's
/// receive path.
pub fn make_l4_port_filter(port: u16) -> ObjRef {
    ObjectBuilder::new("l4-port-filter")
        .state(FilterState {
            port,
            ..FilterState::default()
        })
        .interface("filter", |i| {
            i.method("check", &[TypeTag::Bytes], TypeTag::Bool, |this, args| {
                let frame = args[0].as_bytes()?.clone();
                this.with_state(|s: &mut FilterState| {
                    s.checked += 1;
                    let ok = frame.len() >= DST_PORT_OFF as usize + 2
                        && frame[12..14] == wire::ETHERTYPE_IPV4.to_be_bytes()
                        && matches!(frame[23], wire::IPPROTO_TCP | wire::IPPROTO_UDP)
                        && frame[DST_PORT_OFF as usize..DST_PORT_OFF as usize + 2]
                            == s.port.to_be_bytes();
                    if ok {
                        s.accepted += 1;
                    }
                    Ok(Value::Bool(ok))
                })
            })
            .method("stats", &[], TypeTag::List, |this, _| {
                this.with_state(|s: &mut FilterState| {
                    Ok(Value::List(vec![
                        Value::Int(s.checked as i64),
                        Value::Int(s.accepted as i64),
                    ]))
                })
            })
        })
        .build()
}

/// Byte offset of the L4 destination port in an Ethernet/IPv4/{UDP,TCP}
/// frame with no IP options (the port sits at the same offset in both).
const DST_PORT_OFF: i64 = (wire::ETH_HLEN + wire::IPV4_HLEN + 2) as i64;

/// Data-segment size for filter programs (must hold a max-size frame; a
/// power of two for the verified idiom).
pub const FILTER_SEGMENT: u32 = 2048;

/// Builds a *verifiable* bytecode UDP-port filter: returns 1 in `r0` when
/// the frame in its data segment is addressed to `port`.
///
/// All loads use compile-time-constant addresses, so the load-time
/// verifier proves it safe — this is the component a type-safe-compiler
/// certifier signs automatically.
pub fn udp_port_filter_program(port: u16) -> Program {
    let r = Reg::new;
    let mut a = Asm::new(FILTER_SEGMENT);
    // r2 = frame[36] << 8 | frame[37] (big-endian dst port).
    a.li(r(1), DST_PORT_OFF);
    a.ldb(r(2), r(1), 0);
    a.li(r(3), 8);
    a.raw(paramecium_sfi::Insn::Shl {
        rd: r(2),
        rs1: r(2),
        rs2: r(3),
    });
    a.ldb(r(4), r(1), 1);
    a.raw(paramecium_sfi::Insn::Or {
        rd: r(2),
        rs1: r(2),
        rs2: r(4),
    });
    a.li(r(5), i64::from(port));
    a.li(r(0), 0);
    a.bne(r(2), r(5), "reject");
    a.li(r(0), 1);
    a.label("reject");
    a.halt();
    a.finish().expect("static labels")
}

/// Builds an *unverifiable* bytecode filter that additionally checksums
/// the whole frame with raw pointer arithmetic (accepts any non-zero-sum
/// frame to `port`). The verifier rejects it; only certification (or SFI)
/// gets it into the kernel.
pub fn checksumming_filter_program(port: u16) -> Program {
    let r = Reg::new;
    let mut a = Asm::new(FILTER_SEGMENT);
    // First the port check, as above.
    a.li(r(1), DST_PORT_OFF);
    a.ldb(r(2), r(1), 0);
    a.li(r(3), 8);
    a.raw(paramecium_sfi::Insn::Shl {
        rd: r(2),
        rs1: r(2),
        rs2: r(3),
    });
    a.ldb(r(4), r(1), 1);
    a.raw(paramecium_sfi::Insn::Or {
        rd: r(2),
        rs1: r(2),
        rs2: r(4),
    });
    a.li(r(5), i64::from(port));
    a.li(r(0), 0);
    a.bne(r(2), r(5), "reject");
    // Then a raw byte-sum over the first 64 bytes (r1 is a moving
    // pointer: unverifiable).
    a.li(r(1), 0);
    a.li(r(6), 64);
    a.li(r(7), 0);
    a.label("sum");
    a.ldb(r(8), r(1), 0);
    a.add(r(7), r(7), r(8));
    a.addi(r(1), r(1), 1);
    a.bltu(r(1), r(6), "sum");
    a.li(r(9), 0);
    a.li(r(0), 0);
    a.beq(r(7), r(9), "reject");
    a.li(r(0), 1);
    a.label("reject");
    a.halt();
    a.finish().expect("static labels")
}

/// Wraps a loaded bytecode component object (exporting `component`) into
/// the `filter` interface, so the UDP stack can use native and bytecode
/// filters interchangeably.
pub fn adapt_bytecode_filter(component: ObjRef) -> ObjRef {
    ObjectBuilder::new(format!("filter-adapter<{}>", component.class()))
        .state(component)
        .interface("filter", |i| {
            i.method("check", &[TypeTag::Bytes], TypeTag::Bool, |this, args| {
                let frame = args[0].clone();
                let component = this.with_state(|c: &mut ObjRef| Ok(c.clone()))?;
                let r = component.invoke("component", "run", &[frame, Value::Int(0)])?;
                Ok(Value::Bool(r.as_int()? != 0))
            })
            .method("stats", &[], TypeTag::List, |this, _| {
                let component = this.with_state(|c: &mut ObjRef| Ok(c.clone()))?;
                let steps = component.invoke("component", "steps", &[])?;
                Ok(Value::List(vec![steps]))
            })
        })
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::udp_frame_to;
    use paramecium_sfi::{interp::Interp, verifier};

    fn frame_to(port: u16) -> Vec<u8> {
        udp_frame_to(port, b"payload")
    }

    #[test]
    fn native_filter_matches_port() {
        let f = make_native_port_filter(53);
        let yes = f
            .invoke(
                "filter",
                "check",
                &[Value::Bytes(bytes::Bytes::from(frame_to(53)))],
            )
            .unwrap();
        let no = f
            .invoke(
                "filter",
                "check",
                &[Value::Bytes(bytes::Bytes::from(frame_to(80)))],
            )
            .unwrap();
        assert_eq!(yes, Value::Bool(true));
        assert_eq!(no, Value::Bool(false));
        let stats = f.invoke("filter", "stats", &[]).unwrap();
        assert_eq!(stats, Value::List(vec![Value::Int(2), Value::Int(1)]));
    }

    #[test]
    fn native_filter_rejects_garbage() {
        let f = make_native_port_filter(53);
        let r = f
            .invoke(
                "filter",
                "check",
                &[Value::Bytes(bytes::Bytes::from(vec![0u8; 10]))],
            )
            .unwrap();
        assert_eq!(r, Value::Bool(false));
    }

    #[test]
    fn bytecode_port_filter_is_verifiable_and_correct() {
        let p = udp_port_filter_program(53);
        verifier::verify(&p).expect("port filter must verify");
        for (port, want) in [(53u16, 1u64), (80, 0)] {
            let mut i = Interp::new(&p);
            i.load_data(0, &frame_to(port));
            assert_eq!(i.run(10_000).unwrap().result, want, "port {port}");
        }
    }

    #[test]
    fn checksumming_filter_is_not_verifiable_but_works() {
        let p = checksumming_filter_program(53);
        assert!(verifier::verify(&p).is_err());
        let mut i = Interp::new(&p);
        i.load_data(0, &frame_to(53));
        assert_eq!(i.run(10_000).unwrap().result, 1);
        let mut i = Interp::new(&p);
        i.load_data(0, &frame_to(80));
        assert_eq!(i.run(10_000).unwrap().result, 0);
    }

    #[test]
    fn adapter_bridges_component_to_filter_interface() {
        let machine =
            std::sync::Arc::new(parking_lot::Mutex::new(paramecium_machine::Machine::new()));
        let component = paramecium_core::loader::make_bytecode_object(
            "port-filter-bc",
            udp_port_filter_program(53),
            paramecium_core::loader::Protection::CertifiedNative,
            machine,
            1 << 20,
        );
        let filter = adapt_bytecode_filter(component);
        let yes = filter
            .invoke(
                "filter",
                "check",
                &[Value::Bytes(bytes::Bytes::from(frame_to(53)))],
            )
            .unwrap();
        assert_eq!(yes, Value::Bool(true));
        let no = filter
            .invoke(
                "filter",
                "check",
                &[Value::Bytes(bytes::Bytes::from(frame_to(80)))],
            )
            .unwrap();
        assert_eq!(no, Value::Bool(false));
    }
}
