//! A seeded, adversarial simulated link.
//!
//! [`make_simlink`] builds two endpoint objects joined by a full-duplex
//! "wire". Each endpoint exports the same `netdev` interface as the real
//! NIC driver, so any protocol object (the UDP stack, the TCP object, an
//! interposing monitor) layers on a lossy wire exactly as it layers on
//! hardware — interchangeability is the architecture's point, and this is
//! the object that turns it into an adversarial test fixture.
//!
//! Every impairment — drop, duplication, reordering, corruption, delay —
//! is a pure function of the link's seed and the (deterministic) order of
//! `send` calls, and all delays are expressed in the machine's virtual
//! clock, so a property test that replays the same seed observes
//! bit-identical behaviour down to each corrupted byte.
//!
//! Reordering falls out of randomized per-frame delays; the explicit
//! `reorder_permille` knob additionally holds a frame back long enough
//! that later traffic overtakes it even at a fixed base delay.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;
use rand::{rngs::StdRng, Rng, RngCore, SeedableRng};

use paramecium_machine::Machine;
use paramecium_obj::{ObjRef, ObjectBuilder, TypeTag, Value};

/// Impairment knobs, all in permille (so 100 = 10 %).
#[derive(Clone, Copy, Debug)]
pub struct LinkConfig {
    /// Seed for the link's private RNG; every impairment derives from it.
    pub seed: u64,
    /// Probability a frame is silently dropped.
    pub drop_permille: u16,
    /// Probability a frame is delivered twice.
    pub dup_permille: u16,
    /// Probability a frame is held back behind later traffic.
    pub reorder_permille: u16,
    /// Probability one random byte of the frame is flipped.
    pub corrupt_permille: u16,
    /// Minimum propagation delay in machine cycles.
    pub delay_min: u64,
    /// Maximum propagation delay in machine cycles (inclusive).
    pub delay_max: u64,
}

impl LinkConfig {
    /// A perfect wire: no loss, no reordering, fixed 1-cycle delay.
    pub fn perfect(seed: u64) -> Self {
        LinkConfig {
            seed,
            drop_permille: 0,
            dup_permille: 0,
            reorder_permille: 0,
            corrupt_permille: 0,
            delay_min: 1,
            delay_max: 1,
        }
    }

    /// The adversarial default used by the property suite: 10 % drop,
    /// 10 % duplication, 10 % reordering, plus jittered delay.
    pub fn adversarial(seed: u64) -> Self {
        LinkConfig {
            seed,
            drop_permille: 100,
            dup_permille: 100,
            reorder_permille: 100,
            corrupt_permille: 0,
            delay_min: 10,
            delay_max: 5_000,
        }
    }

    /// A fully partitioned wire: every frame is dropped. Chaos drills
    /// apply this at runtime (via `link set_config`) to cut a link
    /// mid-stream, then restore the saved config to heal it.
    pub fn partitioned(seed: u64) -> Self {
        LinkConfig {
            drop_permille: 1000,
            ..LinkConfig::perfect(seed)
        }
    }

    /// Checks the knobs are meaningful: permille fields are
    /// probabilities (≤ 1000) and the delay envelope is ordered.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("drop_permille", self.drop_permille),
            ("dup_permille", self.dup_permille),
            ("reorder_permille", self.reorder_permille),
            ("corrupt_permille", self.corrupt_permille),
        ] {
            if v > 1000 {
                return Err(format!("{name} = {v} exceeds 1000 (permille)"));
            }
        }
        if self.delay_min > self.delay_max {
            return Err(format!(
                "delay_min {} exceeds delay_max {}",
                self.delay_min, self.delay_max
            ));
        }
        Ok(())
    }

    /// The runtime-settable knobs as the `link config`/`set_config` wire
    /// list: `[drop, dup, reorder, corrupt, delay_min, delay_max]`. The
    /// seed is deliberately absent — a live link's RNG stream never
    /// restarts, so replays stay bit-identical across reconfigs.
    pub fn to_knobs(&self) -> Vec<Value> {
        vec![
            Value::Int(i64::from(self.drop_permille)),
            Value::Int(i64::from(self.dup_permille)),
            Value::Int(i64::from(self.reorder_permille)),
            Value::Int(i64::from(self.corrupt_permille)),
            Value::Int(self.delay_min as i64),
            Value::Int(self.delay_max as i64),
        ]
    }

    /// Parses the `set_config` knob list (see [`LinkConfig::to_knobs`])
    /// onto `self`, validating ranges.
    fn apply_knobs(&mut self, knobs: &[Value]) -> paramecium_obj::ObjResult<()> {
        use paramecium_obj::ObjError;
        if knobs.len() != 6 {
            return Err(ObjError::failed(format!(
                "link config takes 6 knobs, got {}",
                knobs.len()
            )));
        }
        let mut ints = [0i64; 6];
        for (slot, v) in ints.iter_mut().zip(knobs) {
            *slot = v.as_int()?;
            if *slot < 0 {
                return Err(ObjError::failed("link config knobs must be non-negative"));
            }
        }
        let next = LinkConfig {
            seed: self.seed,
            drop_permille: ints[0].min(i64::from(u16::MAX)) as u16,
            dup_permille: ints[1].min(i64::from(u16::MAX)) as u16,
            reorder_permille: ints[2].min(i64::from(u16::MAX)) as u16,
            corrupt_permille: ints[3].min(i64::from(u16::MAX)) as u16,
            delay_min: ints[4] as u64,
            delay_max: ints[5] as u64,
        };
        next.validate().map_err(ObjError::failed)?;
        *self = next;
        Ok(())
    }
}

/// Per-direction counters, readable via `netdev stats` on the *sending*
/// endpoint of the direction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Frames accepted by `send`.
    pub sent: u64,
    /// Frames handed to the receiver by `recv`.
    pub delivered: u64,
    /// Frames the wire dropped.
    pub dropped: u64,
    /// Extra copies the wire created.
    pub duplicated: u64,
    /// Frames held back behind later traffic.
    pub reordered: u64,
    /// Frames with a flipped byte.
    pub corrupted: u64,
}

/// One direction of the wire: frames in flight keyed by delivery time.
/// Each direction owns its impairment config, so drills can impair (or
/// cut) one direction while the other keeps flowing.
struct Direction {
    cfg: LinkConfig,
    rng: StdRng,
    /// `(deliver_at, tiebreak) -> frame`; the tiebreak keeps equal-time
    /// frames in insertion order.
    in_flight: BTreeMap<(u64, u64), bytes::Bytes>,
    next_tiebreak: u64,
    stats: LinkStats,
}

impl Direction {
    fn new(cfg: LinkConfig, seed: u64) -> Self {
        Direction {
            cfg,
            rng: StdRng::seed_from_u64(seed),
            in_flight: BTreeMap::new(),
            next_tiebreak: 0,
            stats: LinkStats::default(),
        }
    }

    fn delay(&mut self, cfg: &LinkConfig) -> u64 {
        if cfg.delay_max > cfg.delay_min {
            self.rng.gen_range(cfg.delay_min..cfg.delay_max + 1)
        } else {
            cfg.delay_min
        }
    }

    fn enqueue(&mut self, deliver_at: u64, frame: bytes::Bytes) {
        let tb = self.next_tiebreak;
        self.next_tiebreak += 1;
        self.in_flight.insert((deliver_at, tb), frame);
    }

    fn transmit(&mut self, now: u64, frame: bytes::Bytes) {
        // Copy out the (Copy) config so the roll closure can borrow the
        // RNG mutably while the knobs are read.
        let cfg = self.cfg;
        let cfg = &cfg;
        self.stats.sent += 1;
        let roll = |rng: &mut StdRng, permille: u16| -> bool {
            permille > 0 && rng.gen_range(0u32..1000) < u32::from(permille)
        };
        if roll(&mut self.rng, cfg.drop_permille) {
            self.stats.dropped += 1;
            return;
        }
        let frame = if roll(&mut self.rng, cfg.corrupt_permille) && !frame.is_empty() {
            self.stats.corrupted += 1;
            let mut bytes = frame.to_vec();
            let idx = self.rng.gen_range(0..bytes.len());
            let mut flip = (self.rng.next_u64() & 0xFF) as u8;
            if flip == 0 {
                flip = 1; // XOR by zero would not corrupt.
            }
            bytes[idx] ^= flip;
            bytes::Bytes::from(bytes)
        } else {
            frame
        };
        let mut delay = self.delay(cfg);
        if roll(&mut self.rng, cfg.reorder_permille) {
            // Hold the frame back past the whole delay envelope so frames
            // sent after it (at any legal delay) overtake it.
            self.stats.reordered += 1;
            delay += cfg.delay_max + 1;
        }
        let deliver_at = now + delay;
        if roll(&mut self.rng, cfg.dup_permille) {
            self.stats.duplicated += 1;
            let dup_delay = self.delay(cfg);
            self.enqueue(now + dup_delay, frame.clone());
        }
        self.enqueue(deliver_at, frame);
    }

    fn deliverable(&self, now: u64) -> usize {
        self.in_flight.range(..=(now, u64::MAX)).count()
    }

    fn receive(&mut self, now: u64) -> Option<bytes::Bytes> {
        let key = *self.in_flight.range(..=(now, u64::MAX)).next()?.0;
        let frame = self.in_flight.remove(&key).expect("key just observed");
        self.stats.delivered += 1;
        Some(frame)
    }
}

/// The shared wire: direction 0 carries endpoint A→B, direction 1 B→A.
struct LinkCore {
    dirs: [Direction; 2],
}

/// Endpoint state: which direction it transmits into.
struct EndpointState {
    core: Arc<Mutex<LinkCore>>,
    machine: Arc<Mutex<Machine>>,
    tx_dir: usize,
}

impl EndpointState {
    fn now(&self) -> u64 {
        self.machine.lock().now()
    }
}

fn stats_value(s: &LinkStats) -> Value {
    Value::List(vec![
        Value::Int(s.sent as i64),
        Value::Int(s.delivered as i64),
        Value::Int(s.dropped as i64),
        Value::Int(s.duplicated as i64),
        Value::Int(s.reordered as i64),
        Value::Int(s.corrupted as i64),
    ])
}

fn make_endpoint(
    core: Arc<Mutex<LinkCore>>,
    machine: Arc<Mutex<Machine>>,
    tx_dir: usize,
) -> ObjRef {
    ObjectBuilder::new("simlink-endpoint")
        .state(EndpointState {
            core,
            machine,
            tx_dir,
        })
        .interface("netdev", |i| {
            i.method("send", &[TypeTag::Bytes], TypeTag::Unit, |this, args| {
                let frame = args[0].as_bytes()?.clone();
                this.with_state(|s: &mut EndpointState| {
                    let now = s.now();
                    let mut core = s.core.lock();
                    core.dirs[s.tx_dir].transmit(now, frame);
                    Ok(Value::Unit)
                })
            })
            .method("recv", &[], TypeTag::Bytes, |this, _| {
                this.with_state(|s: &mut EndpointState| {
                    let now = s.now();
                    let mut core = s.core.lock();
                    let rx_dir = 1 - s.tx_dir;
                    match core.dirs[rx_dir].receive(now) {
                        Some(frame) => Ok(Value::Bytes(frame)),
                        None => Ok(Value::Bytes(bytes::Bytes::new())),
                    }
                })
            })
            .method("pending", &[], TypeTag::Int, |this, _| {
                this.with_state(|s: &mut EndpointState| {
                    let now = s.now();
                    let core = s.core.lock();
                    Ok(Value::Int(core.dirs[1 - s.tx_dir].deliverable(now) as i64))
                })
            })
            .method("stats", &[], TypeTag::List, |this, _| {
                this.with_state(|s: &mut EndpointState| {
                    let core = s.core.lock();
                    Ok(stats_value(&core.dirs[s.tx_dir].stats))
                })
            })
        })
        // Runtime impairment control over this endpoint's *transmit*
        // direction. The RNG stream is untouched by reconfig, so a drill
        // that partitions and heals replays bit-identically.
        .interface("link", |i| {
            i.method(
                "set_config",
                &[TypeTag::List],
                TypeTag::Unit,
                |this, args| {
                    let knobs = args[0].as_list()?.to_vec();
                    this.with_state(|s: &mut EndpointState| {
                        let mut core = s.core.lock();
                        core.dirs[s.tx_dir].cfg.apply_knobs(&knobs)?;
                        Ok(Value::Unit)
                    })
                },
            )
            .method("config", &[], TypeTag::List, |this, _| {
                this.with_state(|s: &mut EndpointState| {
                    let core = s.core.lock();
                    Ok(Value::List(core.dirs[s.tx_dir].cfg.to_knobs()))
                })
            })
        })
        .build()
}

/// Builds the two endpoints of a lossy link. Frames sent on the first
/// endpoint arrive (maybe, eventually, possibly twice or corrupted) at the
/// second, and vice versa; delivery times are measured on `machine`'s
/// virtual clock, so `recv` only yields a frame once the clock has passed
/// its arrival time.
pub fn make_simlink(machine: Arc<Mutex<Machine>>, cfg: LinkConfig) -> (ObjRef, ObjRef) {
    if let Err(e) = cfg.validate() {
        panic!("invalid LinkConfig: {e}");
    }
    let core = Arc::new(Mutex::new(LinkCore {
        dirs: [
            Direction::new(cfg, cfg.seed.wrapping_mul(2).wrapping_add(1)),
            Direction::new(cfg, cfg.seed.wrapping_mul(2).wrapping_add(2)),
        ],
    }));
    let a = make_endpoint(core.clone(), machine.clone(), 0);
    let b = make_endpoint(core, machine, 1);
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(cfg: LinkConfig) -> (Arc<Mutex<Machine>>, ObjRef, ObjRef) {
        let machine = Arc::new(Mutex::new(Machine::new()));
        let (a, b) = make_simlink(machine.clone(), cfg);
        (machine, a, b)
    }

    fn send(dev: &ObjRef, frame: &[u8]) {
        dev.invoke(
            "netdev",
            "send",
            &[Value::Bytes(bytes::Bytes::copy_from_slice(frame))],
        )
        .unwrap();
    }

    fn recv(dev: &ObjRef) -> Vec<u8> {
        dev.invoke("netdev", "recv", &[])
            .unwrap()
            .as_bytes()
            .unwrap()
            .to_vec()
    }

    #[test]
    fn perfect_link_delivers_in_order_after_delay() {
        let (machine, a, b) = setup(LinkConfig::perfect(7));
        send(&a, &[1]);
        send(&a, &[2]);
        // Nothing deliverable before the clock advances.
        assert!(recv(&b).is_empty());
        machine.lock().tick(10);
        assert_eq!(b.invoke("netdev", "pending", &[]).unwrap(), Value::Int(2));
        assert_eq!(recv(&b), vec![1]);
        assert_eq!(recv(&b), vec![2]);
        assert!(recv(&b).is_empty());
    }

    #[test]
    fn directions_are_independent() {
        let (machine, a, b) = setup(LinkConfig::perfect(7));
        send(&a, &[1]);
        send(&b, &[9]);
        machine.lock().tick(10);
        assert_eq!(recv(&b), vec![1]);
        assert_eq!(recv(&a), vec![9]);
        assert!(recv(&b).is_empty());
    }

    #[test]
    fn same_seed_same_fate() {
        let run = |seed: u64| -> (Vec<Vec<u8>>, LinkStats) {
            let (machine, a, b) = setup(LinkConfig {
                corrupt_permille: 100,
                ..LinkConfig::adversarial(seed)
            });
            for i in 0..200u32 {
                send(&a, &i.to_be_bytes());
            }
            machine.lock().tick(100_000);
            let mut got = Vec::new();
            loop {
                let f = recv(&b);
                if f.is_empty() {
                    break;
                }
                got.push(f);
            }
            let stats = {
                let core_stats = a.invoke("netdev", "stats", &[]).unwrap();
                let l = core_stats.as_list().unwrap().to_vec();
                LinkStats {
                    sent: l[0].as_int().unwrap() as u64,
                    delivered: l[1].as_int().unwrap() as u64,
                    dropped: l[2].as_int().unwrap() as u64,
                    duplicated: l[3].as_int().unwrap() as u64,
                    reordered: l[4].as_int().unwrap() as u64,
                    corrupted: l[5].as_int().unwrap() as u64,
                }
            };
            (got, stats)
        };
        let (got1, stats1) = run(42);
        let (got2, stats2) = run(42);
        assert_eq!(got1, got2, "same seed must replay bit-identically");
        assert_eq!(stats1, stats2);
        let (got3, stats3) = run(43);
        assert!(
            got3 != got1 || stats3 != stats1,
            "different seeds should take different fates"
        );
        // The adversarial profile actually exercises every impairment.
        assert!(stats1.dropped > 0, "{stats1:?}");
        assert!(stats1.duplicated > 0, "{stats1:?}");
        assert!(stats1.reordered > 0, "{stats1:?}");
        assert!(stats1.corrupted > 0, "{stats1:?}");
        assert_eq!(
            stats1.sent + stats1.duplicated - stats1.dropped,
            stats1.delivered
        );
    }

    #[test]
    fn permille_fields_validate_at_construction() {
        let mut cfg = LinkConfig::perfect(1);
        cfg.drop_permille = 1001;
        assert!(cfg.validate().is_err());
        cfg.drop_permille = 1000;
        assert!(cfg.validate().is_ok());
        cfg.corrupt_permille = 2000;
        assert!(cfg.validate().is_err());
        let mut inverted = LinkConfig::perfect(1);
        inverted.delay_min = 10;
        inverted.delay_max = 5;
        assert!(inverted.validate().is_err());
        assert!(LinkConfig::partitioned(3).validate().is_ok());
        assert_eq!(LinkConfig::partitioned(3).drop_permille, 1000);
    }

    #[test]
    #[should_panic(expected = "invalid LinkConfig")]
    fn make_simlink_rejects_invalid_config() {
        let machine = Arc::new(Mutex::new(Machine::new()));
        let mut cfg = LinkConfig::perfect(1);
        cfg.dup_permille = 9999;
        let _ = make_simlink(machine, cfg);
    }

    #[test]
    fn runtime_set_config_partitions_and_heals_one_direction() {
        let (machine, a, b) = setup(LinkConfig::perfect(5));
        // Save the healthy config, then cut only A→B.
        let healthy = a.invoke("link", "config", &[]).unwrap();
        a.invoke(
            "link",
            "set_config",
            &[Value::List(LinkConfig::partitioned(5).to_knobs())],
        )
        .unwrap();
        send(&a, &[1]);
        send(&b, &[9]);
        machine.lock().tick(10);
        assert!(recv(&b).is_empty(), "A→B is cut");
        assert_eq!(recv(&a), vec![9], "B→A still flows");
        // Heal: restore the saved knobs; traffic resumes.
        a.invoke("link", "set_config", &[healthy]).unwrap();
        send(&a, &[2]);
        machine.lock().tick(10);
        assert_eq!(recv(&b), vec![2]);
        // The partition was counted as drops on the sender's stats.
        let stats = a.invoke("netdev", "stats", &[]).unwrap();
        assert_eq!(stats.as_list().unwrap()[2], Value::Int(1));
    }

    #[test]
    fn runtime_set_config_rejects_bad_knobs() {
        let (_machine, a, _b) = setup(LinkConfig::perfect(5));
        let mut knobs = LinkConfig::perfect(5).to_knobs();
        knobs[0] = Value::Int(1001);
        assert!(a
            .invoke("link", "set_config", &[Value::List(knobs)])
            .is_err());
        let short = vec![Value::Int(0); 3];
        assert!(a
            .invoke("link", "set_config", &[Value::List(short)])
            .is_err());
        // The failed reconfigs left the link untouched.
        assert_eq!(
            a.invoke("link", "config", &[]).unwrap(),
            Value::List(LinkConfig::perfect(5).to_knobs())
        );
    }

    #[test]
    fn reordering_overtakes() {
        // Half the frames are held back past the delay envelope, so with a
        // fixed base delay the delivery order must differ from the send
        // order (while losing and duplicating nothing).
        let (machine, a, b) = setup(LinkConfig {
            seed: 11,
            drop_permille: 0,
            dup_permille: 0,
            reorder_permille: 500,
            corrupt_permille: 0,
            delay_min: 1,
            delay_max: 1,
        });
        let sent: Vec<Vec<u8>> = (0..100u8).map(|i| vec![i]).collect();
        for f in &sent {
            send(&a, f);
        }
        machine.lock().tick(1_000);
        let mut got = Vec::new();
        loop {
            let f = recv(&b);
            if f.is_empty() {
                break;
            }
            got.push(f);
        }
        let mut sorted = got.clone();
        sorted.sort();
        assert_eq!(sorted, sent, "nothing lost or duplicated");
        assert_ne!(got, sent, "delivery order must differ from send order");
    }
}
