//! A small UDP/IP endpoint object.
//!
//! Layers on any object exporting the `netdev` interface (the real driver,
//! a proxy to it, or an interposing monitor — they are interchangeable,
//! which is the point of the architecture). Exports the `udp` interface:
//!
//! - `bind(port: int) -> unit` — open a local port queue,
//! - `send_to(dst_ip: int, dst_port: int, src_port: int, payload: bytes)`,
//! - `pump() -> int` — drain the device, demultiplex to bound ports
//!   (running the installed filter first, if any); returns frames
//!   processed,
//! - `recv_from(port: int) -> list [src_ip, src_port, payload]`
//!   (empty list when the queue is empty),
//! - `set_filter(filter: handle) -> unit` — install a packet filter
//!   (possibly a cross-domain proxy: that is experiment E7),
//! - `stats() -> list [delivered, no_listener, filtered, malformed]`.

use std::collections::{HashMap, VecDeque};

use paramecium_obj::{ObjRef, ObjectBuilder, TypeTag, Value};

use crate::wire;

/// Queued datagram. The payload is a zero-copy view into the received
/// frame, which stays alive (refcounted) until the application reads it.
struct Datagram {
    src_ip: u32,
    src_port: u16,
    payload: bytes::Bytes,
}

/// Stack instance state.
struct StackState {
    netdev: ObjRef,
    mac: wire::Mac,
    ip: u32,
    ports: HashMap<u16, VecDeque<Datagram>>,
    filter: Option<ObjRef>,
    delivered: u64,
    no_listener: u64,
    filtered: u64,
    malformed: u64,
}

/// Builds a UDP stack bound to `netdev`, with local address `ip`/`mac`.
pub fn make_udp_stack(netdev: ObjRef, ip: u32, mac: wire::Mac) -> ObjRef {
    ObjectBuilder::new("udp-stack")
        .state(StackState {
            netdev,
            mac,
            ip,
            ports: HashMap::new(),
            filter: None,
            delivered: 0,
            no_listener: 0,
            filtered: 0,
            malformed: 0,
        })
        .interface("udp", |i| {
            i.method("bind", &[TypeTag::Int], TypeTag::Unit, |this, args| {
                let port = args[0].as_int()? as u16;
                this.with_state(|s: &mut StackState| {
                    s.ports.entry(port).or_default();
                    Ok(Value::Unit)
                })
            })
            .method(
                "send_to",
                &[TypeTag::Int, TypeTag::Int, TypeTag::Int, TypeTag::Bytes],
                TypeTag::Unit,
                |this, args| {
                    let dst_ip = args[0].as_int()? as u32;
                    let dst_port = args[1].as_int()? as u16;
                    let src_port = args[2].as_int()? as u16;
                    let payload = args[3].as_bytes()?.clone();
                    let (netdev, frame) = this.with_state(|s: &mut StackState| {
                        let frame = wire::build_udp_frame(
                            s.mac, [0xFF; 6], // We have no ARP; broadcast MAC.
                            s.ip, dst_ip, src_port, dst_port, &payload,
                        );
                        Ok((s.netdev.clone(), frame))
                    })?;
                    netdev.invoke("netdev", "send", &[Value::Bytes(bytes::Bytes::from(frame))])?;
                    Ok(Value::Unit)
                },
            )
            .method(
                "set_filter",
                &[TypeTag::Handle],
                TypeTag::Unit,
                |this, args| {
                    let f = args[0].as_handle()?.clone();
                    this.with_state(|s: &mut StackState| {
                        s.filter = Some(f);
                        Ok(Value::Unit)
                    })
                },
            )
            .method("clear_filter", &[], TypeTag::Unit, |this, _| {
                this.with_state(|s: &mut StackState| {
                    s.filter = None;
                    Ok(Value::Unit)
                })
            })
            .method("pump", &[], TypeTag::Int, |this, _| {
                let (netdev, filter) =
                    this.with_state(|s: &mut StackState| Ok((s.netdev.clone(), s.filter.clone())))?;
                let mut processed = 0i64;
                loop {
                    let frame = netdev.invoke("netdev", "recv", &[])?;
                    let frame = frame.as_bytes()?.clone();
                    if frame.is_empty() {
                        break;
                    }
                    processed += 1;
                    // The filter sees the raw frame first (it may be a
                    // cross-domain proxy — that crossing is the
                    // experiment).
                    if let Some(f) = &filter {
                        let ok = f
                            .invoke("filter", "check", &[Value::Bytes(frame.clone())])?
                            .as_bool()?;
                        if !ok {
                            this.with_state(|s: &mut StackState| {
                                s.filtered += 1;
                                Ok(())
                            })?;
                            continue;
                        }
                    }
                    this.with_state(|s: &mut StackState| {
                        match wire::parse_udp_frame(&frame) {
                            Ok((ip, udp, payload)) => match s.ports.get_mut(&udp.dst_port) {
                                Some(q) => {
                                    let off = wire::ETH_HLEN + wire::IPV4_HLEN + wire::UDP_HLEN;
                                    q.push_back(Datagram {
                                        src_ip: ip.src,
                                        src_port: udp.src_port,
                                        payload: frame.slice(off..off + payload.len()),
                                    });
                                    s.delivered += 1;
                                }
                                None => s.no_listener += 1,
                            },
                            Err(_) => s.malformed += 1,
                        }
                        Ok(())
                    })?;
                }
                Ok(Value::Int(processed))
            })
            .method("recv_from", &[TypeTag::Int], TypeTag::List, |this, args| {
                let port = args[0].as_int()? as u16;
                this.with_state(|s: &mut StackState| {
                    match s.ports.get_mut(&port).and_then(VecDeque::pop_front) {
                        Some(d) => Ok(Value::List(vec![
                            Value::Int(i64::from(d.src_ip)),
                            Value::Int(i64::from(d.src_port)),
                            Value::Bytes(d.payload),
                        ])),
                        None => Ok(Value::List(vec![])),
                    }
                })
            })
            .method("stats", &[], TypeTag::List, |this, _| {
                this.with_state(|s: &mut StackState| {
                    Ok(Value::List(vec![
                        Value::Int(s.delivered as i64),
                        Value::Int(s.no_listener as i64),
                        Value::Int(s.filtered as i64),
                        Value::Int(s.malformed as i64),
                    ]))
                })
            })
        })
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::make_native_port_filter;
    use crate::testkit::{self, test_driver, MY_IP, MY_MAC};
    use paramecium_core::memsvc::MemService;
    use std::sync::Arc;

    fn setup() -> (Arc<MemService>, ObjRef) {
        let (mem, driver) = test_driver();
        let stack = make_udp_stack(driver, MY_IP, MY_MAC);
        (mem, stack)
    }

    fn inject_udp(mem: &Arc<MemService>, dst_port: u16, payload: &[u8]) {
        testkit::inject_udp(mem.machine(), dst_port, payload);
    }

    #[test]
    fn end_to_end_receive() {
        let (mem, stack) = setup();
        stack.invoke("udp", "bind", &[Value::Int(53)]).unwrap();
        inject_udp(&mem, 53, b"query-1");
        inject_udp(&mem, 53, b"query-2");
        let n = stack.invoke("udp", "pump", &[]).unwrap();
        assert_eq!(n, Value::Int(2));
        let d = stack.invoke("udp", "recv_from", &[Value::Int(53)]).unwrap();
        let items = d.as_list().unwrap();
        assert_eq!(items[0], Value::Int(0x0A00_0002));
        assert_eq!(items[1], Value::Int(4444));
        assert_eq!(items[2].as_bytes().unwrap().as_ref(), b"query-1");
        // Second datagram still queued.
        let d2 = stack.invoke("udp", "recv_from", &[Value::Int(53)]).unwrap();
        assert_eq!(
            d2.as_list().unwrap()[2].as_bytes().unwrap().as_ref(),
            b"query-2"
        );
        // Then empty.
        let d3 = stack.invoke("udp", "recv_from", &[Value::Int(53)]).unwrap();
        assert!(d3.as_list().unwrap().is_empty());
    }

    #[test]
    fn unbound_ports_count_no_listener() {
        let (mem, stack) = setup();
        inject_udp(&mem, 9999, b"nobody-home");
        stack.invoke("udp", "pump", &[]).unwrap();
        let stats = stack.invoke("udp", "stats", &[]).unwrap();
        assert_eq!(stats.as_list().unwrap()[1], Value::Int(1));
    }

    #[test]
    fn malformed_frames_are_counted_not_fatal() {
        let (mem, stack) = setup();
        testkit::inject_frame(mem.machine(), vec![0u8; 20]);
        stack.invoke("udp", "bind", &[Value::Int(53)]).unwrap();
        inject_udp(&mem, 53, b"good");
        stack.invoke("udp", "pump", &[]).unwrap();
        let stats = stack.invoke("udp", "stats", &[]).unwrap();
        let s = stats.as_list().unwrap();
        assert_eq!(s[0], Value::Int(1)); // delivered
        assert_eq!(s[3], Value::Int(1)); // malformed
    }

    #[test]
    fn filter_drops_unmatched_frames() {
        let (mem, stack) = setup();
        stack.invoke("udp", "bind", &[Value::Int(53)]).unwrap();
        stack.invoke("udp", "bind", &[Value::Int(80)]).unwrap();
        let filter = make_native_port_filter(53);
        stack
            .invoke("udp", "set_filter", &[Value::Handle(filter)])
            .unwrap();
        inject_udp(&mem, 53, b"pass");
        inject_udp(&mem, 80, b"drop");
        stack.invoke("udp", "pump", &[]).unwrap();
        let stats = stack.invoke("udp", "stats", &[]).unwrap();
        let s = stats.as_list().unwrap();
        assert_eq!(s[0], Value::Int(1)); // delivered (port 53)
        assert_eq!(s[2], Value::Int(1)); // filtered (port 80)
                                         // clear_filter lets everything through again.
        stack.invoke("udp", "clear_filter", &[]).unwrap();
        inject_udp(&mem, 80, b"now-passes");
        stack.invoke("udp", "pump", &[]).unwrap();
        let stats = stack.invoke("udp", "stats", &[]).unwrap();
        assert_eq!(stats.as_list().unwrap()[0], Value::Int(2));
    }

    #[test]
    fn send_to_emits_parseable_frame() {
        let (mem, stack) = setup();
        stack
            .invoke(
                "udp",
                "send_to",
                &[
                    Value::Int(0x0A00_0002),
                    Value::Int(53),
                    Value::Int(3333),
                    Value::Bytes(bytes::Bytes::from_static(b"hello")),
                ],
            )
            .unwrap();
        let frame = testkit::tx_take(mem.machine()).expect("frame sent");
        let (ip, udp, payload) = wire::parse_udp_frame(&frame).unwrap();
        assert_eq!(ip.src, MY_IP);
        assert_eq!(ip.dst, 0x0A00_0002);
        assert_eq!(udp.src_port, 3333);
        assert_eq!(udp.dst_port, 53);
        assert_eq!(payload, b"hello");
    }
}
