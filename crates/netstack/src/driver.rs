//! The network device driver object.
//!
//! A native component from the toolbox: it claims the NIC's register
//! region (exclusive) and buffer region (shared) through the memory
//! service's I/O-space allocator — "allowing device registers to be mapped
//! privately and on-device buffers to be shared by other contexts" — and
//! exports the `netdev` interface:
//!
//! - `send(frame: bytes) -> unit`
//! - `recv() -> bytes` (empty when nothing is pending)
//! - `pending() -> int`
//! - `stats() -> list [rx_frames, tx_frames, rx_bytes, tx_bytes, dropped]`
//!
//! Registered as `/shared/network`, it is the object the paper's
//! interposing-agent example wraps.

use std::sync::Arc;

use parking_lot::Mutex;

use paramecium_core::{domain::DomainId, memsvc::MemService, CoreResult, Nucleus};
use paramecium_machine::{
    dev::nic::{self, Nic},
    io::{IoRegionId, IoSharing},
    Machine,
};
use paramecium_obj::{ObjError, ObjRef, ObjectBuilder, TypeTag, Value};

/// Driver instance state.
struct DriverState {
    machine: Arc<Mutex<Machine>>,
    mem: Arc<MemService>,
    domain: DomainId,
    nic: String,
    regs: IoRegionId,
    #[allow(dead_code)] // Held to model the shared buffer claim.
    buffers: IoRegionId,
    rx_frames: u64,
    tx_frames: u64,
    rx_bytes: u64,
    tx_bytes: u64,
}

impl DriverState {
    /// Refuses to touch the device unless the driver's domain still holds
    /// its register claim — the I/O-space protection model.
    fn check_claim(&self) -> Result<(), ObjError> {
        if self.mem.io_is_claimant(self.domain, self.regs) {
            Ok(())
        } else {
            Err(ObjError::Denied(format!(
                "domain {} lost its NIC register claim",
                self.domain.0
            )))
        }
    }
}

/// Builds the driver for the machine's primary NIC (device `"nic"`).
pub fn make_driver(mem: &Arc<MemService>, domain: DomainId) -> CoreResult<ObjRef> {
    make_driver_on(mem, domain, "nic")
}

/// Builds a NIC driver object for `domain` over the named NIC device,
/// allocating and claiming its I/O regions. Multi-homed machines register
/// extra [`Nic`]s under their own names and run one driver per device.
pub fn make_driver_on(mem: &Arc<MemService>, domain: DomainId, nic: &str) -> CoreResult<ObjRef> {
    // The NIC's regions exist once per device: reuse them if an earlier
    // driver instance allocated them, so exclusivity is actually contended.
    let existing: Vec<(IoRegionId, IoSharing)> = {
        let machine = mem.machine().clone();
        let m = machine.lock();
        m.io.regions_of(nic)
            .iter()
            .map(|r| (r.id, r.sharing))
            .collect()
    };
    let regs = match existing.iter().find(|(_, s)| *s == IoSharing::Exclusive) {
        Some((id, _)) => *id,
        None => mem.io_allocate(nic, 0x20, IoSharing::Exclusive)?,
    };
    let buffers = match existing.iter().find(|(_, s)| *s == IoSharing::Shared) {
        Some((id, _)) => *id,
        None => mem.io_allocate(nic, nic::RX_RING * nic::MAX_FRAME, IoSharing::Shared)?,
    };
    mem.io_claim(domain, regs)?;
    mem.io_claim(domain, buffers)?;
    let state = DriverState {
        machine: mem.machine().clone(),
        mem: mem.clone(),
        domain,
        nic: nic.to_string(),
        regs,
        buffers,
        rx_frames: 0,
        tx_frames: 0,
        rx_bytes: 0,
        tx_bytes: 0,
    };

    Ok(ObjectBuilder::new("nic-driver")
        .state(state)
        .interface("netdev", |i| {
            i.method("send", &[TypeTag::Bytes], TypeTag::Unit, |this, args| {
                // Refcounted view: no copy of the frame body on this path
                // (the copy *cost* below still models the DMA transfer).
                let frame = args[0].as_bytes()?.clone();
                this.with_state(|s: &mut DriverState| {
                    s.check_claim()?;
                    let mut m = s.machine.lock();
                    // Programmed I/O: register write plus the copy into the
                    // device buffer.
                    let cost = m.cost.io_access + m.cost.copy_cost(frame.len());
                    m.charge(cost);
                    let len = frame.len();
                    m.device_mut::<Nic>(&s.nic)
                        .ok_or_else(|| ObjError::failed("nic device missing"))?
                        .tx(frame)
                        .map_err(|e| ObjError::failed(e.to_string()))?;
                    s.tx_frames += 1;
                    s.tx_bytes += len as u64;
                    Ok(Value::Unit)
                })
            })
            .method("recv", &[], TypeTag::Bytes, |this, _| {
                this.with_state(|s: &mut DriverState| {
                    s.check_claim()?;
                    let mut m = s.machine.lock();
                    let cost = m.cost.io_access;
                    m.charge(cost);
                    match m
                        .device_mut::<Nic>(&s.nic)
                        .ok_or_else(|| ObjError::failed("nic device missing"))?
                        .rx_take()
                    {
                        Some(frame) => {
                            let cost = m.cost.copy_cost(frame.len());
                            m.charge(cost);
                            s.rx_frames += 1;
                            s.rx_bytes += frame.len() as u64;
                            Ok(Value::Bytes(frame))
                        }
                        None => Ok(Value::Bytes(bytes::Bytes::new())),
                    }
                })
            })
            .method("pending", &[], TypeTag::Int, |this, _| {
                this.with_state(|s: &mut DriverState| {
                    s.check_claim()?;
                    let mut m = s.machine.lock();
                    let avail = m
                        .io_read(&s.nic, nic::regs::RX_AVAIL)
                        .map_err(|e| ObjError::failed(e.to_string()))?;
                    Ok(Value::Int(i64::from(avail)))
                })
            })
            .method("stats", &[], TypeTag::List, |this, _| {
                this.with_state(|s: &mut DriverState| {
                    let dropped = {
                        let mut m = s.machine.lock();
                        m.io_read(&s.nic, nic::regs::RX_DROPPED)
                            .map_err(|e| ObjError::failed(e.to_string()))?
                    };
                    Ok(Value::List(vec![
                        Value::Int(s.rx_frames as i64),
                        Value::Int(s.tx_frames as i64),
                        Value::Int(s.rx_bytes as i64),
                        Value::Int(s.tx_bytes as i64),
                        Value::Int(i64::from(dropped)),
                    ]))
                })
            })
        })
        .build())
}

/// Builds the driver in `domain` and registers it at `/shared/network`
/// in that domain's name space.
pub fn install_driver(nucleus: &Nucleus, domain: DomainId) -> CoreResult<ObjRef> {
    let driver = make_driver(&nucleus.mem, domain)?;
    nucleus.register(domain, "/shared/network", driver.clone())?;
    Ok(driver)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{inject_frame, test_driver, tx_take, udp_frame_to};
    use paramecium_core::domain::KERNEL_DOMAIN;

    fn setup() -> (Arc<MemService>, ObjRef) {
        test_driver()
    }

    fn inject(mem: &Arc<MemService>, frame: Vec<u8>) {
        inject_frame(mem.machine(), frame);
    }

    #[test]
    fn recv_returns_injected_frames_in_order() {
        let (mem, driver) = setup();
        inject(&mem, vec![1, 2, 3]);
        inject(&mem, vec![4, 5]);
        assert_eq!(
            driver.invoke("netdev", "pending", &[]).unwrap(),
            Value::Int(2)
        );
        let f1 = driver.invoke("netdev", "recv", &[]).unwrap();
        assert_eq!(f1.as_bytes().unwrap().as_ref(), &[1, 2, 3]);
        let f2 = driver.invoke("netdev", "recv", &[]).unwrap();
        assert_eq!(f2.as_bytes().unwrap().as_ref(), &[4, 5]);
        let empty = driver.invoke("netdev", "recv", &[]).unwrap();
        assert!(empty.as_bytes().unwrap().is_empty());
    }

    #[test]
    fn send_reaches_the_wire() {
        let (mem, driver) = setup();
        let frame = udp_frame_to(20, b"out");
        driver
            .invoke(
                "netdev",
                "send",
                &[Value::Bytes(bytes::Bytes::from(frame.clone()))],
            )
            .unwrap();
        assert_eq!(tx_take(mem.machine()), Some(frame));
    }

    #[test]
    fn stats_track_traffic() {
        let (mem, driver) = setup();
        inject(&mem, vec![0u8; 100]);
        driver.invoke("netdev", "recv", &[]).unwrap();
        driver
            .invoke(
                "netdev",
                "send",
                &[Value::Bytes(bytes::Bytes::from(vec![0u8; 60]))],
            )
            .unwrap();
        let stats = driver.invoke("netdev", "stats", &[]).unwrap();
        let s = stats.as_list().unwrap();
        assert_eq!(s[0], Value::Int(1)); // rx frames
        assert_eq!(s[1], Value::Int(1)); // tx frames
        assert_eq!(s[2], Value::Int(100)); // rx bytes
        assert_eq!(s[3], Value::Int(60)); // tx bytes
    }

    #[test]
    fn second_driver_cannot_claim_registers() {
        let (mem, _driver) = setup();
        assert!(make_driver(&mem, DomainId(5)).is_err());
    }

    #[test]
    fn released_claim_denies_device_access() {
        let (mem, driver) = setup();
        // Find the exclusive register region and revoke the claim.
        let machine = mem.machine().clone();
        let regs = {
            let m = machine.lock();
            m.io.regions_of("nic")
                .into_iter()
                .find(|r| r.sharing == IoSharing::Exclusive)
                .unwrap()
                .id
        };
        mem.io_release(KERNEL_DOMAIN, regs).unwrap();
        let r = driver.invoke("netdev", "recv", &[]);
        assert!(matches!(r, Err(ObjError::Denied(_))));
    }

    #[test]
    fn io_costs_are_charged() {
        let (mem, driver) = setup();
        let machine = mem.machine().clone();
        let before = machine.lock().now();
        driver
            .invoke(
                "netdev",
                "send",
                &[Value::Bytes(bytes::Bytes::from(vec![0u8; 1500]))],
            )
            .unwrap();
        let elapsed = machine.lock().now() - before;
        let floor = {
            let m = machine.lock();
            m.cost.io_access + m.cost.copy_cost(1500)
        };
        assert!(elapsed >= floor);
    }
}
