//! Network components for the Paramecium reproduction.
//!
//! The paper's motivating scenario (section 1) is "inserting application
//! components for fast protocol processing into a shared network device
//! driver" — and the security problem that motivates certification:
//! "software verification of the component cannot easily reveal packet
//! snooping". This crate provides that scenario as a *stack of
//! interchangeable objects*: every layer both consumes and exports the
//! two-method `netdev` interface (`send(bytes)`, `recv() -> bytes`), so
//! any layer can be slid between any other two — including across
//! protection domains — without either side knowing.
//!
//! Bottom to top:
//!
//! - [`wire`] — pure codecs: Ethernet, ARP, IPv4, UDP and TCP headers,
//!   the Internet checksum and the TCP pseudo-header checksum. Every
//!   parser is total (malformed input returns `None`, never panics) and
//!   round-trips with its builder; `tests/wire_codecs.rs` pins both by
//!   property.
//! - **netdev providers** — the objects that put frames on a wire:
//!   [`driver`] (the NIC driver at `/shared/network`, built on the
//!   machine's NIC device through I/O-space claims and interrupts) and
//!   [`simlink`] (a seeded in-memory lossy link that drops, duplicates,
//!   reorders, corrupts and delays frames deterministically — the
//!   adversary the test suites run against).
//! - **netdev interposers** — layers that wrap a lower `netdev` and
//!   export `netdev` themselves: [`arp`] (IPv4↔MAC resolution with
//!   request queuing and reply generation), [`route`] (a longest-prefix
//!   router spanning two or more lower drivers, with per-route counters)
//!   and [`monitor`] (the paper's interposing network monitor, installed
//!   by replacing `/shared/network` in the name space).
//! - **endpoints** — [`stack`] (a UDP/IP endpoint) and [`tcp`] (a
//!   minimal-but-correct TCP: 3-way handshake, sequence/ack tracking,
//!   retransmission with exponential RTO backoff, sliding-window flow
//!   control and FIN teardown, all driven by the machine's virtual
//!   clock so every exchange replays bit-identically).
//! - [`filter`] — packet filters installed *into* an endpoint's receive
//!   path: a native counting filter and a bytecode UDP-port filter (the
//!   downloadable component of the experiments).
//! - [`testkit`] — the shared single-NIC test fixture used by the
//!   in-crate suites and integration tests.
//!
//! Frames travel the whole stack as refcounted [`bytes::Bytes`] views:
//! a received frame is parsed in place and its payload handed to the
//! application as a slice of the original buffer — no copies between
//! the device queue and the socket, pinned by an allocation-counting
//! test (`tests/alloc_counting.rs`).

pub mod arp;
pub mod driver;
pub mod filter;
pub mod monitor;
pub mod route;
pub mod simlink;
pub mod stack;
pub mod tcp;
pub mod testkit;
pub mod wire;

pub use driver::{install_driver, make_driver, make_driver_on};
pub use filter::{make_l4_port_filter, make_native_port_filter, udp_port_filter_program};
pub use monitor::make_network_monitor;
pub use stack::make_udp_stack;
