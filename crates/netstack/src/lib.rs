//! Network components for the Paramecium reproduction.
//!
//! The paper's motivating scenario (section 1) is "inserting application
//! components for fast protocol processing into a shared network device
//! driver" — and the security problem that motivates certification:
//! "software verification of the component cannot easily reveal packet
//! snooping". This crate provides every piece of that scenario as ordinary
//! Paramecium objects:
//!
//! - [`wire`] — Ethernet/IPv4/UDP header codecs and the Internet checksum,
//! - [`driver`] — the NIC driver object (`/shared/network`), built on the
//!   machine's NIC device through I/O-space claims and interrupts,
//! - [`stack`] — a small UDP/IP endpoint object layered on any object that
//!   exports the `netdev` interface,
//! - [`filter`] — packet filters: a native counting filter and a bytecode
//!   UDP-port filter (the downloadable component of the experiments),
//! - [`monitor`] — an interposing network monitor, built with the generic
//!   interposer and installed by replacing `/shared/network` in the name
//!   space.

pub mod driver;
pub mod filter;
pub mod monitor;
pub mod stack;
pub mod wire;

pub use driver::{install_driver, make_driver};
pub use filter::{make_native_port_filter, udp_port_filter_program};
pub use monitor::make_network_monitor;
pub use stack::make_udp_stack;
