//! The interposing network monitor.
//!
//! "building an interposing agent for a network device,
//! `/shared/network`, consists of building an interposing object … and
//! replace the object handle in the name space. All further lookups for
//! `/shared/network` will result in a reference to the interposing agent."
//! (paper, section 2). This module builds that object with the generic
//! [`InterposerBuilder`]; installing it is one
//! [`Nucleus::interpose`](paramecium_core::Nucleus::interpose) call.
//!
//! The monitor is transparent to `netdev` clients and exports an extra
//! `netmon` interface — the "superset of the original object's interfaces".

use std::sync::{
    atomic::{AtomicU64, Ordering},
    Arc,
};

use paramecium_obj::{
    interface::{CallCache, Interface},
    interpose::{interposer_target, InterposerBuilder},
    typeinfo::MethodSig,
    ObjRef, TypeTag, Value,
};

/// Shared monitor counters.
#[derive(Debug, Default)]
pub struct NetMonStats {
    /// Frames seen going out.
    pub tx_frames: AtomicU64,
    /// Bytes seen going out.
    pub tx_bytes: AtomicU64,
    /// Frames seen coming in.
    pub rx_frames: AtomicU64,
    /// Bytes seen coming in.
    pub rx_bytes: AtomicU64,
    /// Size histogram buckets: <128, <512, <1024, >=1024.
    pub size_buckets: [AtomicU64; 4],
}

/// Bumps a monitoring counter with a plain load/store instead of a locked
/// RMW: a `fetch_add` costs more than the rest of a monitor hop on some
/// hosts, and these are statistics — racing writers may drop a count, the
/// values are exact in the deterministic single-threaded simulation.
#[inline]
fn bump(counter: &AtomicU64, by: u64) {
    counter.store(counter.load(Ordering::Relaxed) + by, Ordering::Relaxed);
}

impl NetMonStats {
    fn record_size(&self, len: usize) {
        let idx = match len {
            0..=127 => 0,
            128..=511 => 1,
            512..=1023 => 2,
            _ => 3,
        };
        bump(&self.size_buckets[idx], 1);
    }
}

/// Builds a monitoring agent around a `netdev` object. Returns the agent
/// and its shared counters.
pub fn make_network_monitor(target: ObjRef) -> (ObjRef, Arc<NetMonStats>) {
    let stats = Arc::new(NetMonStats::default());

    // Outbound: `send` is overridden to observe its arguments, then
    // forward. An override (rather than a `before` hook) keeps the hook
    // wrapper off every other method's hot path — `recv` forwards through
    // a bare cached hop.
    let tx_stats = stats.clone();
    // Inbound: `recv` must be overridden (the frame is in the *result*).
    let rx_stats = stats.clone();

    // The extra `netmon` interface (the superset part).
    let mon_stats = stats.clone();
    let mut netmon = Interface::new("netmon");
    netmon.insert_method(
        MethodSig::new("stats", &[], TypeTag::List),
        Arc::new(move |_: &ObjRef, _: &[Value]| {
            Ok(Value::List(vec![
                Value::Int(mon_stats.tx_frames.load(Ordering::Relaxed) as i64),
                Value::Int(mon_stats.tx_bytes.load(Ordering::Relaxed) as i64),
                Value::Int(mon_stats.rx_frames.load(Ordering::Relaxed) as i64),
                Value::Int(mon_stats.rx_bytes.load(Ordering::Relaxed) as i64),
                Value::List(
                    mon_stats
                        .size_buckets
                        .iter()
                        .map(|b| Value::Int(b.load(Ordering::Relaxed) as i64))
                        .collect(),
                ),
            ]))
        }),
    );

    let agent = InterposerBuilder::new(target)
        .class("netmon-agent")
        .override_method("netdev", "send", {
            let cache = CallCache::new();
            move |this, args| {
                if let Some(Value::Bytes(b)) = args.first() {
                    bump(&tx_stats.tx_frames, 1);
                    bump(&tx_stats.tx_bytes, b.len() as u64);
                    tx_stats.record_size(b.len());
                }
                cache.invoke(
                    Some(this),
                    || interposer_target(this),
                    "netdev",
                    "send",
                    args,
                )
            }
        })
        .override_method("netdev", "recv", {
            let cache = CallCache::new();
            move |this, args| {
                let result = cache.invoke(
                    Some(this),
                    || interposer_target(this),
                    "netdev",
                    "recv",
                    args,
                )?;
                if let Value::Bytes(b) = &result {
                    if !b.is_empty() {
                        bump(&rx_stats.rx_frames, 1);
                        bump(&rx_stats.rx_bytes, b.len() as u64);
                        rx_stats.record_size(b.len());
                    }
                }
                Ok(result)
            }
        })
        .extra_interface(netmon)
        .build();

    (agent, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::make_udp_stack;
    use crate::testkit::{inject_frame, test_driver};
    use paramecium_core::memsvc::MemService;

    fn setup() -> (Arc<MemService>, ObjRef, Arc<NetMonStats>) {
        let (mem, driver) = test_driver();
        let (agent, stats) = make_network_monitor(driver);
        (mem, agent, stats)
    }

    fn inject(mem: &Arc<MemService>, len: usize) {
        inject_frame(mem.machine(), vec![0u8; len]);
    }

    #[test]
    fn monitor_counts_both_directions() {
        let (mem, agent, stats) = setup();
        inject(&mem, 100);
        inject(&mem, 600);
        agent.invoke("netdev", "recv", &[]).unwrap();
        agent.invoke("netdev", "recv", &[]).unwrap();
        agent.invoke("netdev", "recv", &[]).unwrap(); // Empty: not counted.
        agent
            .invoke(
                "netdev",
                "send",
                &[Value::Bytes(bytes::Bytes::from(vec![0u8; 64]))],
            )
            .unwrap();
        assert_eq!(stats.rx_frames.load(Ordering::Relaxed), 2);
        assert_eq!(stats.rx_bytes.load(Ordering::Relaxed), 700);
        assert_eq!(stats.tx_frames.load(Ordering::Relaxed), 1);
        assert_eq!(stats.tx_bytes.load(Ordering::Relaxed), 64);
        // Histogram: 64→b0, 100→b0, 600→b2.
        assert_eq!(stats.size_buckets[0].load(Ordering::Relaxed), 2);
        assert_eq!(stats.size_buckets[2].load(Ordering::Relaxed), 1);
    }

    #[test]
    fn netmon_interface_reports_stats() {
        let (mem, agent, _) = setup();
        inject(&mem, 300);
        agent.invoke("netdev", "recv", &[]).unwrap();
        let v = agent.invoke("netmon", "stats", &[]).unwrap();
        let l = v.as_list().unwrap();
        assert_eq!(l[2], Value::Int(1)); // rx frames.
        assert_eq!(l[3], Value::Int(300)); // rx bytes.
    }

    #[test]
    fn monitor_is_transparent_to_a_udp_stack() {
        // The stack works identically through the agent — interposition is
        // invisible to clients.
        let (mem, agent, stats) = setup();
        let stack = make_udp_stack(agent, crate::testkit::MY_IP, crate::testkit::MY_MAC);
        stack.invoke("udp", "bind", &[Value::Int(53)]).unwrap();
        crate::testkit::inject_udp(mem.machine(), 53, b"through-monitor");
        stack.invoke("udp", "pump", &[]).unwrap();
        let d = stack.invoke("udp", "recv_from", &[Value::Int(53)]).unwrap();
        assert_eq!(
            d.as_list().unwrap()[2].as_bytes().unwrap().as_ref(),
            b"through-monitor"
        );
        assert_eq!(stats.rx_frames.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn monitors_stack_on_monitors() {
        let (mem, agent, inner_stats) = setup();
        let (outer, outer_stats) = make_network_monitor(agent);
        inject(&mem, 200);
        outer.invoke("netdev", "recv", &[]).unwrap();
        assert_eq!(inner_stats.rx_frames.load(Ordering::Relaxed), 1);
        assert_eq!(outer_stats.rx_frames.load(Ordering::Relaxed), 1);
    }
}
