//! Component and delegation certificates.
//!
//! "In our system certificates include a message digest of the component so
//! that it is impossible to modify the component after it has been
//! certified." (paper, section 4).

use paramecium_crypto::{
    keys::{PrivateKey, PublicKey},
    rsa,
    sha256::{sha256, Digest},
};

use crate::CertError;

/// A right a certificate can grant to a component.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Right {
    /// May be loaded into a user protection domain.
    RunUser,
    /// May be loaded into the *kernel* protection domain — the right the
    /// whole architecture exists to police.
    RunKernel,
    /// May claim device I/O regions (drivers).
    DeviceAccess,
    /// May replace name-space entries outside its own domain (interposing
    /// on shared services).
    InterposeShared,
}

/// How a component came to be certified — recorded for audit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CertifyMethod {
    /// A human administrator hand-checked it.
    Administrator,
    /// A trusted type-safe compiler produced and verified it.
    TypeSafeCompiler,
    /// An automated correctness prover completed a proof.
    Prover,
    /// A software test team exercised it.
    TestTeam,
}

impl CertifyMethod {
    fn tag(self) -> u8 {
        match self {
            CertifyMethod::Administrator => 0,
            CertifyMethod::TypeSafeCompiler => 1,
            CertifyMethod::Prover => 2,
            CertifyMethod::TestTeam => 3,
        }
    }
}

fn right_tag(r: Right) -> u8 {
    match r {
        Right::RunUser => 0,
        Right::RunKernel => 1,
        Right::DeviceAccess => 2,
        Right::InterposeShared => 3,
    }
}

/// A certificate binding a component image (by digest) to rights, signed
/// by a certifier.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Certificate {
    /// Component (class) name — informational; trust is in the digest.
    pub component: String,
    /// SHA-256 of the component image.
    pub digest: Digest,
    /// Rights granted, sorted and deduplicated.
    pub rights: Vec<Right>,
    /// How the certifier established trust.
    pub method: CertifyMethod,
    /// Fingerprint of the signing key.
    pub issuer: String,
    /// RSA signature over the to-be-signed encoding.
    pub signature: Vec<u8>,
}

impl Certificate {
    /// Builds and signs a certificate.
    pub fn issue(
        component: impl Into<String>,
        image: &[u8],
        mut rights: Vec<Right>,
        method: CertifyMethod,
        issuer_public: &PublicKey,
        issuer_private: &PrivateKey,
    ) -> Result<Certificate, CertError> {
        rights.sort_unstable();
        rights.dedup();
        let mut cert = Certificate {
            component: component.into(),
            digest: sha256(image),
            rights,
            method,
            issuer: issuer_public.fingerprint(),
            signature: Vec::new(),
        };
        let tbs = cert.to_be_signed();
        cert.signature = rsa::sign(issuer_private, &sha256(&tbs))
            .map_err(|e| CertError::Malformed(e.to_string()))?;
        Ok(cert)
    }

    /// The deterministic byte encoding covered by the signature.
    pub fn to_be_signed(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.component.len());
        out.extend_from_slice(b"CERT");
        out.extend_from_slice(&(self.component.len() as u32).to_le_bytes());
        out.extend_from_slice(self.component.as_bytes());
        out.extend_from_slice(&self.digest);
        out.push(self.rights.len() as u8);
        for r in &self.rights {
            out.push(right_tag(*r));
        }
        out.push(self.method.tag());
        out.extend_from_slice(&(self.issuer.len() as u32).to_le_bytes());
        out.extend_from_slice(self.issuer.as_bytes());
        out
    }

    /// Verifies the signature with the (separately authenticated) issuer
    /// key, and that the key matches the recorded fingerprint.
    pub fn verify_signature(&self, issuer_key: &PublicKey) -> Result<(), CertError> {
        if issuer_key.fingerprint() != self.issuer {
            return Err(CertError::BadSignature(format!(
                "certificate for `{}`: issuer key mismatch",
                self.component
            )));
        }
        rsa::verify(issuer_key, &sha256(&self.to_be_signed()), &self.signature)
            .map_err(|_| CertError::BadSignature(format!("certificate for `{}`", self.component)))
    }

    /// True if the certificate grants `right`.
    pub fn grants(&self, right: Right) -> bool {
        self.rights.contains(&right)
    }

    /// Checks that `image` is the exact bytes that were certified.
    pub fn matches_image(&self, image: &[u8]) -> bool {
        sha256(image) == self.digest
    }
}

/// A delegation: the issuer empowers the subject key to certify components
/// with (a subset of) the listed rights.
///
/// Chains of these implement "the certification authority will usually
/// delegate its authority to subordinates".
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DelegationCert {
    /// Human-readable subordinate name (e.g. `"modula3-compiler"`).
    pub subject_name: String,
    /// The subordinate's public key (embedded; authenticated by the
    /// issuer's signature over this certificate).
    pub subject_key: PublicKey,
    /// The rights the subordinate may grant — must attenuate down chains.
    pub powers: Vec<Right>,
    /// Fingerprint of the issuing key.
    pub issuer: String,
    /// RSA signature over the to-be-signed encoding.
    pub signature: Vec<u8>,
}

impl DelegationCert {
    /// Builds and signs a delegation.
    pub fn issue(
        subject_name: impl Into<String>,
        subject_key: PublicKey,
        mut powers: Vec<Right>,
        issuer_public: &PublicKey,
        issuer_private: &PrivateKey,
    ) -> Result<DelegationCert, CertError> {
        powers.sort_unstable();
        powers.dedup();
        let mut d = DelegationCert {
            subject_name: subject_name.into(),
            subject_key,
            powers,
            issuer: issuer_public.fingerprint(),
            signature: Vec::new(),
        };
        let tbs = d.to_be_signed();
        d.signature = rsa::sign(issuer_private, &sha256(&tbs))
            .map_err(|e| CertError::Malformed(e.to_string()))?;
        Ok(d)
    }

    /// The deterministic byte encoding covered by the signature.
    pub fn to_be_signed(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"DELE");
        out.extend_from_slice(&(self.subject_name.len() as u32).to_le_bytes());
        out.extend_from_slice(self.subject_name.as_bytes());
        let key = self.subject_key.to_bytes();
        out.extend_from_slice(&(key.len() as u32).to_le_bytes());
        out.extend_from_slice(&key);
        out.push(self.powers.len() as u8);
        for r in &self.powers {
            out.push(right_tag(*r));
        }
        out.extend_from_slice(&(self.issuer.len() as u32).to_le_bytes());
        out.extend_from_slice(self.issuer.as_bytes());
        out
    }

    /// Verifies the issuer's signature.
    pub fn verify_signature(&self, issuer_key: &PublicKey) -> Result<(), CertError> {
        if issuer_key.fingerprint() != self.issuer {
            return Err(CertError::BadSignature(format!(
                "delegation to `{}`: issuer key mismatch",
                self.subject_name
            )));
        }
        rsa::verify(issuer_key, &sha256(&self.to_be_signed()), &self.signature)
            .map_err(|_| CertError::BadSignature(format!("delegation to `{}`", self.subject_name)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(seed: u64) -> paramecium_crypto::KeyPair {
        crate::testkeys::keypair(seed)
    }

    #[test]
    fn issue_and_verify_certificate() {
        let kp = keys(1);
        let image = b"component image bytes";
        let cert = Certificate::issue(
            "filter",
            image,
            vec![Right::RunKernel, Right::RunUser],
            CertifyMethod::Administrator,
            &kp.public,
            &kp.private,
        )
        .unwrap();
        cert.verify_signature(&kp.public).unwrap();
        assert!(cert.matches_image(image));
        assert!(cert.grants(Right::RunKernel));
        assert!(!cert.grants(Right::DeviceAccess));
    }

    #[test]
    fn modified_component_is_detected() {
        let kp = keys(1);
        let cert = Certificate::issue(
            "filter",
            b"original",
            vec![Right::RunKernel],
            CertifyMethod::Prover,
            &kp.public,
            &kp.private,
        )
        .unwrap();
        assert!(!cert.matches_image(b"trojaned"));
    }

    #[test]
    fn tampered_rights_break_signature() {
        let kp = keys(1);
        let mut cert = Certificate::issue(
            "filter",
            b"image",
            vec![Right::RunUser],
            CertifyMethod::TestTeam,
            &kp.public,
            &kp.private,
        )
        .unwrap();
        // Privilege-escalate the certificate after signing.
        cert.rights.push(Right::RunKernel);
        assert!(cert.verify_signature(&kp.public).is_err());
    }

    #[test]
    fn wrong_issuer_key_rejected() {
        let kp = keys(1);
        let other = keys(2);
        let cert = Certificate::issue(
            "filter",
            b"image",
            vec![Right::RunUser],
            CertifyMethod::Administrator,
            &kp.public,
            &kp.private,
        )
        .unwrap();
        assert!(cert.verify_signature(&other.public).is_err());
    }

    #[test]
    fn rights_are_sorted_and_deduped() {
        let kp = keys(1);
        let cert = Certificate::issue(
            "x",
            b"i",
            vec![Right::RunKernel, Right::RunUser, Right::RunKernel],
            CertifyMethod::Administrator,
            &kp.public,
            &kp.private,
        )
        .unwrap();
        assert_eq!(cert.rights, vec![Right::RunUser, Right::RunKernel]);
    }

    #[test]
    fn delegation_roundtrip_and_tamper() {
        let root = keys(1);
        let sub = keys(2);
        let d = DelegationCert::issue(
            "admin-alice",
            sub.public.clone(),
            vec![Right::RunKernel],
            &root.public,
            &root.private,
        )
        .unwrap();
        d.verify_signature(&root.public).unwrap();
        // Swap in a different subject key: signature must break.
        let mut evil = d.clone();
        evil.subject_key = keys(3).public;
        assert!(evil.verify_signature(&root.public).is_err());
        // Widen the powers: signature must break.
        let mut evil = d;
        evil.powers.push(Right::DeviceAccess);
        assert!(evil.verify_signature(&root.public).is_err());
    }
}
