//! The certification authority and chain validation.
//!
//! The kernel trusts exactly one root key. Everything else — system
//! administrators, trusted compilers, provers, test teams — holds a
//! delegation chain rooted there, with rights attenuating at every link
//! (a subordinate can never grant more than it was granted). This mirrors
//! the Taos "speaks-for" discipline the paper cites.

use paramecium_crypto::{
    keys::{KeyPair, PublicKey},
    rsa,
};
use rand::Rng;

use crate::{
    certificate::{Certificate, DelegationCert, Right},
    CertError,
};

/// A key-holding principal that can issue delegations and certificates.
///
/// Used for the root authority and for every subordinate.
#[derive(Clone, Debug)]
pub struct Authority {
    /// Principal name (audit only).
    pub name: String,
    /// The key pair.
    pub keys: KeyPair,
}

impl Authority {
    /// Creates an authority with a fresh key pair.
    pub fn new<R: Rng + ?Sized>(name: impl Into<String>, rng: &mut R, bits: u32) -> Self {
        Authority {
            name: name.into(),
            keys: rsa::generate(rng, bits),
        }
    }

    /// Creates an authority around an existing key pair (shared or cached
    /// key material — key generation dominates everything else an
    /// authority does).
    pub fn from_keys(name: impl Into<String>, keys: KeyPair) -> Self {
        Authority {
            name: name.into(),
            keys,
        }
    }

    /// The public key.
    pub fn public(&self) -> &PublicKey {
        &self.keys.public
    }

    /// This principal's key fingerprint.
    pub fn fingerprint(&self) -> String {
        self.keys.public.fingerprint()
    }

    /// Issues a delegation empowering `subject` to grant `powers`.
    pub fn delegate(
        &self,
        subject_name: impl Into<String>,
        subject: &PublicKey,
        powers: Vec<Right>,
    ) -> Result<DelegationCert, CertError> {
        DelegationCert::issue(
            subject_name,
            subject.clone(),
            powers,
            &self.keys.public,
            &self.keys.private,
        )
    }

    /// Signs a component certificate with this principal's key.
    pub fn certify(
        &self,
        component: impl Into<String>,
        image: &[u8],
        rights: Vec<Right>,
        method: crate::certificate::CertifyMethod,
    ) -> Result<Certificate, CertError> {
        Certificate::issue(
            component,
            image,
            rights,
            method,
            &self.keys.public,
            &self.keys.private,
        )
    }
}

/// Validates a certificate against the trusted `root` key through a chain
/// of delegations.
///
/// Checks, in order:
/// 1. every delegation signature, starting from the root key;
/// 2. issuer/subject linkage (each link signed by the previous key);
/// 3. rights attenuation (no link grants powers its issuer lacked —
///    the root holds all powers by definition);
/// 4. the component certificate's signature by the final key;
/// 5. that the certificate's rights are within the final key's powers.
///
/// An empty chain means the root signed the certificate directly.
///
/// Returns the number of signature verifications performed (the dominant
/// validation cost, reported for the delegation-depth experiment).
pub fn validate_chain(
    root: &PublicKey,
    chain: &[DelegationCert],
    cert: &Certificate,
) -> Result<u32, CertError> {
    let mut sig_checks = 0u32;
    let mut signer_key = root.clone();
    // The root may grant anything.
    let mut signer_powers: Option<Vec<Right>> = None;

    for (i, link) in chain.iter().enumerate() {
        link.verify_signature(&signer_key)?;
        sig_checks += 1;
        if let Some(powers) = &signer_powers {
            if let Some(escalated) = link.powers.iter().find(|p| !powers.contains(p)) {
                let _ = escalated;
                return Err(CertError::RightsEscalation {
                    at: format!("link {i} (`{}`)", link.subject_name),
                });
            }
        }
        signer_powers = Some(link.powers.clone());
        signer_key = link.subject_key.clone();
    }

    cert.verify_signature(&signer_key)?;
    sig_checks += 1;
    if let Some(powers) = &signer_powers {
        if let Some(r) = cert.rights.iter().find(|r| !powers.contains(r)) {
            return Err(CertError::InsufficientRights(*r));
        }
    }
    Ok(sig_checks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certificate::CertifyMethod;
    use crate::testkeys::authority;

    #[test]
    fn root_signed_certificate_validates_with_empty_chain() {
        let root = authority("root", 1);
        let cert = root
            .certify(
                "svc",
                b"image",
                vec![Right::RunKernel],
                CertifyMethod::Administrator,
            )
            .unwrap();
        assert_eq!(validate_chain(root.public(), &[], &cert).unwrap(), 1);
    }

    #[test]
    fn two_link_chain_validates() {
        let root = authority("root", 1);
        let admin = authority("admin", 2);
        let compiler = authority("compiler", 3);
        let d1 = root
            .delegate(
                "admin",
                admin.public(),
                vec![Right::RunKernel, Right::RunUser],
            )
            .unwrap();
        let d2 = admin
            .delegate("compiler", compiler.public(), vec![Right::RunUser])
            .unwrap();
        let cert = compiler
            .certify(
                "lib",
                b"image",
                vec![Right::RunUser],
                CertifyMethod::TypeSafeCompiler,
            )
            .unwrap();
        let checks = validate_chain(root.public(), &[d1, d2], &cert).unwrap();
        assert_eq!(checks, 3);
    }

    #[test]
    fn escalation_in_chain_is_rejected() {
        let root = authority("root", 1);
        let admin = authority("admin", 2);
        let sub = authority("sub", 3);
        // Admin only holds RunUser…
        let d1 = root
            .delegate("admin", admin.public(), vec![Right::RunUser])
            .unwrap();
        // …but tries to hand out RunKernel.
        let d2 = admin
            .delegate("sub", sub.public(), vec![Right::RunKernel])
            .unwrap();
        let cert = sub
            .certify("svc", b"i", vec![Right::RunKernel], CertifyMethod::Prover)
            .unwrap();
        assert!(matches!(
            validate_chain(root.public(), &[d1, d2], &cert),
            Err(CertError::RightsEscalation { .. })
        ));
    }

    #[test]
    fn leaf_cannot_exceed_its_powers() {
        let root = authority("root", 1);
        let sub = authority("sub", 2);
        let d = root
            .delegate("sub", sub.public(), vec![Right::RunUser])
            .unwrap();
        let cert = sub
            .certify(
                "svc",
                b"i",
                vec![Right::RunKernel],
                CertifyMethod::Administrator,
            )
            .unwrap();
        assert_eq!(
            validate_chain(root.public(), &[d], &cert),
            Err(CertError::InsufficientRights(Right::RunKernel))
        );
    }

    #[test]
    fn broken_link_signature_is_rejected() {
        let root = authority("root", 1);
        let imposter = authority("imposter", 2);
        let sub = authority("sub", 3);
        // Delegation signed by the imposter, not the root.
        let d = imposter
            .delegate("sub", sub.public(), vec![Right::RunUser])
            .unwrap();
        let cert = sub
            .certify(
                "svc",
                b"i",
                vec![Right::RunUser],
                CertifyMethod::Administrator,
            )
            .unwrap();
        assert!(matches!(
            validate_chain(root.public(), &[d], &cert),
            Err(CertError::BadSignature(_))
        ));
    }

    #[test]
    fn certificate_signed_by_wrong_leaf_rejected() {
        let root = authority("root", 1);
        let sub = authority("sub", 2);
        let other = authority("other", 3);
        let d = root
            .delegate("sub", sub.public(), vec![Right::RunUser])
            .unwrap();
        // Certificate signed by a key that is not in the chain.
        let cert = other
            .certify(
                "svc",
                b"i",
                vec![Right::RunUser],
                CertifyMethod::Administrator,
            )
            .unwrap();
        assert!(validate_chain(root.public(), &[d], &cert).is_err());
    }

    #[test]
    fn deep_chains_validate_and_count_checks() {
        let root = authority("root", 1);
        let mut chain = Vec::new();
        let mut prev = root.clone();
        for i in 0..5 {
            let next = authority(&format!("level{i}"), 10 + i as u64);
            chain.push(
                prev.delegate(format!("level{i}"), next.public(), vec![Right::RunKernel])
                    .unwrap(),
            );
            prev = next;
        }
        let cert = prev
            .certify(
                "deep",
                b"i",
                vec![Right::RunKernel],
                CertifyMethod::Administrator,
            )
            .unwrap();
        assert_eq!(validate_chain(root.public(), &chain, &cert).unwrap(), 6);
    }
}
