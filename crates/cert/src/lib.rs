//! The Paramecium certification architecture (paper, section 4).
//!
//! "An authority certifies which components are trustworthy and are
//! therefore permitted to run in the kernel address space. Each component
//! contains a certificate that is validated by the kernel by means of a
//! simple security architecture."
//!
//! The pieces:
//!
//! - [`certificate`] — component certificates embedding a message digest
//!   (so a component cannot be modified after certification) and
//!   *delegation certificates* forming attenuating chains, in the style of
//!   the Taos/Lampson-Abadi authentication work the paper builds on,
//! - [`authority`] — the certification authority: issuing delegations and
//!   validating complete chains,
//! - [`certifier`] — the subordinate kinds the paper enumerates: type-safe
//!   compilers, automated correctness provers, software test teams, and
//!   system administrators ("and even graduate students"),
//! - [`policy`] — ordered subordinates with the *escape hatch*: "if one
//!   subordinate fails to certify a component another can be tried",
//! - [`store`] — the kernel-side certificate store with load-time
//!   validation and an optional validation cache.

pub mod authority;
pub mod certificate;
pub mod certifier;
pub mod policy;
pub mod store;

pub use authority::{validate_chain, Authority};
pub use certificate::{Certificate, CertifyMethod, DelegationCert, Right};
pub use certifier::{
    AdminCertifier, Certifier, CertifyOutcome, CompilerCertifier, ProverCertifier,
    TestTeamCertifier,
};
pub use policy::{CertificationPolicy, PolicyOutcome};
pub use store::CertStore;

/// Errors from certification operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CertError {
    /// A signature on a certificate or delegation failed to verify.
    BadSignature(String),
    /// The component image does not match the certified digest.
    DigestMismatch,
    /// The delegation chain is broken (wrong issuer, empty, cycle…).
    BrokenChain(String),
    /// A link in the chain grants rights its issuer did not hold.
    RightsEscalation {
        /// Where in the chain the escalation happened.
        at: String,
    },
    /// The certificate does not grant the requested right.
    InsufficientRights(Right),
    /// No certificate is known for the component.
    NotCertified,
    /// Every subordinate declined or failed (escape hatch exhausted).
    AllCertifiersDeclined(Vec<String>),
    /// Certificate encoding was malformed.
    Malformed(String),
}

impl std::fmt::Display for CertError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CertError::BadSignature(w) => write!(f, "bad signature on {w}"),
            CertError::DigestMismatch => {
                write!(f, "component image does not match certified digest")
            }
            CertError::BrokenChain(m) => write!(f, "broken delegation chain: {m}"),
            CertError::RightsEscalation { at } => write!(f, "rights escalation at {at}"),
            CertError::InsufficientRights(r) => {
                write!(f, "certificate does not grant right {r:?}")
            }
            CertError::NotCertified => write!(f, "component has no certificate"),
            CertError::AllCertifiersDeclined(trail) => {
                write!(f, "all certifiers declined: {}", trail.join("; "))
            }
            CertError::Malformed(m) => write!(f, "malformed certificate: {m}"),
        }
    }
}

impl std::error::Error for CertError {}

#[cfg(test)]
pub(crate) mod testkeys {
    //! Shared per-seed RSA keys for this crate's unit tests.
    //!
    //! Every test module used to regenerate a 512-bit key pair per seed per
    //! test; keygen dwarfs all other test work, so the cache makes each
    //! (seed → key) generation happen once per test process.

    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};

    use paramecium_crypto::{rsa, KeyPair};
    use rand::{rngs::StdRng, SeedableRng};

    use crate::authority::Authority;

    /// The cached 512-bit key pair for `seed`.
    pub fn keypair(seed: u64) -> KeyPair {
        static CACHE: OnceLock<Mutex<HashMap<u64, KeyPair>>> = OnceLock::new();
        CACHE
            .get_or_init(|| Mutex::new(HashMap::new()))
            .lock()
            .unwrap()
            .entry(seed)
            .or_insert_with(|| rsa::generate(&mut StdRng::seed_from_u64(seed), 512))
            .clone()
    }

    /// An authority holding the cached key pair for `seed`.
    pub fn authority(name: &str, seed: u64) -> Authority {
        Authority::from_keys(name, keypair(seed))
    }
}
