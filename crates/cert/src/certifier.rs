//! Certifier subordinates.
//!
//! "These subordinates may include programs, like type-safe language
//! compilers or automated correctness provers, software test teams, system
//! administrators, and even graduate students." (paper, section 4).
//!
//! Each certifier holds its own [`Authority`] key (empowered by a
//! delegation chain elsewhere) and applies a *different trust technique*
//! before signing. A certifier can also *decline* — the signal the policy
//! layer's escape hatch reacts to.

use paramecium_sfi::{bytecode::Program, interp::Interp, verifier};
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::{
    authority::Authority,
    certificate::{Certificate, CertifyMethod, Right},
};

/// The result of asking a certifier to certify a component.
#[derive(Clone, Debug)]
pub enum CertifyOutcome {
    /// Signed: here is the certificate.
    Certified(Certificate),
    /// This certifier cannot establish trust (try the next subordinate).
    Declined {
        /// Why, for the audit trail.
        reason: String,
    },
}

/// A certification subordinate.
pub trait Certifier: Send + Sync {
    /// The subordinate's name (matches its delegation certificate).
    fn name(&self) -> &str;

    /// The authority (key holder) this certifier signs with.
    fn authority(&self) -> &Authority;

    /// Attempts to certify `image` for `rights`.
    fn try_certify(&self, component: &str, image: &[u8], rights: &[Right]) -> CertifyOutcome;

    /// Simulated effort in cycles the *most recent* attempt cost. The
    /// paper notes certification "will usually be done off-line", so this
    /// is reported separately from load-time validation cost.
    fn last_effort(&self) -> u64;
}

/// A system administrator: signs exactly the images on a hand-checked
/// allowlist (by digest).
pub struct AdminCertifier {
    authority: Authority,
    allowlist: Vec<paramecium_crypto::sha256::Digest>,
    effort: std::sync::atomic::AtomicU64,
}

impl AdminCertifier {
    /// Creates an administrator who has hand-checked the given images.
    pub fn new(authority: Authority, checked_images: &[&[u8]]) -> Self {
        AdminCertifier {
            authority,
            allowlist: checked_images
                .iter()
                .map(|i| paramecium_crypto::sha256(i))
                .collect(),
            effort: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// The administrator hand-checks another image.
    pub fn approve(&mut self, image: &[u8]) {
        self.allowlist.push(paramecium_crypto::sha256(image));
    }
}

impl Certifier for AdminCertifier {
    fn name(&self) -> &str {
        &self.authority.name
    }

    fn authority(&self) -> &Authority {
        &self.authority
    }

    fn try_certify(&self, component: &str, image: &[u8], rights: &[Right]) -> CertifyOutcome {
        // A human decision is ~free in machine cycles.
        self.effort.store(1, std::sync::atomic::Ordering::Relaxed);
        if !self.allowlist.contains(&paramecium_crypto::sha256(image)) {
            return CertifyOutcome::Declined {
                reason: format!("{}: image not on my hand-checked list", self.name()),
            };
        }
        match self.authority.certify(
            component,
            image,
            rights.to_vec(),
            CertifyMethod::Administrator,
        ) {
            Ok(c) => CertifyOutcome::Certified(c),
            Err(e) => CertifyOutcome::Declined {
                reason: e.to_string(),
            },
        }
    }

    fn last_effort(&self) -> u64 {
        self.effort.load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// A trusted type-safe compiler: certifies any image that passes the
/// load-time verifier (its own output always does).
///
/// This is exactly the paper's SPIN integration: "delegating the
/// certification authority to a trusted compiler for that language.
/// Everything compiled by that compiler would then be automatically
/// certified" (section 5).
pub struct CompilerCertifier {
    authority: Authority,
    effort: std::sync::atomic::AtomicU64,
}

impl CompilerCertifier {
    /// Creates the compiler certifier.
    pub fn new(authority: Authority) -> Self {
        CompilerCertifier {
            authority,
            effort: std::sync::atomic::AtomicU64::new(0),
        }
    }
}

impl Certifier for CompilerCertifier {
    fn name(&self) -> &str {
        &self.authority.name
    }

    fn authority(&self) -> &Authority {
        &self.authority
    }

    fn try_certify(&self, component: &str, image: &[u8], rights: &[Right]) -> CertifyOutcome {
        let program = match Program::decode(image) {
            Ok(p) => p,
            Err(e) => {
                return CertifyOutcome::Declined {
                    reason: format!("{}: not bytecode I can check: {e}", self.name()),
                }
            }
        };
        match verifier::verify(&program) {
            Ok(report) => {
                self.effort
                    .store(report.evaluations * 4, std::sync::atomic::Ordering::Relaxed);
                match self.authority.certify(
                    component,
                    image,
                    rights.to_vec(),
                    CertifyMethod::TypeSafeCompiler,
                ) {
                    Ok(c) => CertifyOutcome::Certified(c),
                    Err(e) => CertifyOutcome::Declined {
                        reason: e.to_string(),
                    },
                }
            }
            Err(e) => CertifyOutcome::Declined {
                reason: format!("{}: verification failed: {e}", self.name()),
            },
        }
    }

    fn last_effort(&self) -> u64 {
        self.effort.load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// An automated correctness prover with a bounded effort budget.
///
/// "A certifier may take an arbitrary amount of time to validate a given
/// component … when the automatic program correctness prover decides that
/// it cannot complete the proof, it might turn the problem over to the
/// system administrator." (section 4). The proof effort here is modelled
/// as quadratic in program size; the prover gives up beyond its budget —
/// which is what exercises the escape hatch.
pub struct ProverCertifier {
    authority: Authority,
    /// Maximum proof effort before giving up.
    pub effort_budget: u64,
    effort: std::sync::atomic::AtomicU64,
}

impl ProverCertifier {
    /// Creates a prover with an effort budget.
    pub fn new(authority: Authority, effort_budget: u64) -> Self {
        ProverCertifier {
            authority,
            effort_budget,
            effort: std::sync::atomic::AtomicU64::new(0),
        }
    }
}

impl Certifier for ProverCertifier {
    fn name(&self) -> &str {
        &self.authority.name
    }

    fn authority(&self) -> &Authority {
        &self.authority
    }

    fn try_certify(&self, component: &str, image: &[u8], rights: &[Right]) -> CertifyOutcome {
        let program = match Program::decode(image) {
            Ok(p) => p,
            Err(e) => {
                return CertifyOutcome::Declined {
                    reason: format!("{}: cannot parse: {e}", self.name()),
                }
            }
        };
        // Proof effort: quadratic in program size (object-code provers are
        // expensive — the paper cites Yu's multi-hour proofs).
        let effort = (program.len() as u64).pow(2).max(1);
        self.effort.store(
            effort.min(self.effort_budget),
            std::sync::atomic::Ordering::Relaxed,
        );
        if effort > self.effort_budget {
            return CertifyOutcome::Declined {
                reason: format!(
                    "{}: proof needs {effort} effort, budget is {}; handing over",
                    self.name(),
                    self.effort_budget
                ),
            };
        }
        // Within budget the prover is as strong as the verifier.
        match verifier::verify(&program) {
            Ok(_) => match self.authority.certify(
                component,
                image,
                rights.to_vec(),
                CertifyMethod::Prover,
            ) {
                Ok(c) => CertifyOutcome::Certified(c),
                Err(e) => CertifyOutcome::Declined {
                    reason: e.to_string(),
                },
            },
            Err(e) => CertifyOutcome::Declined {
                reason: format!("{}: proof refuted: {e}", self.name()),
            },
        }
    }

    fn last_effort(&self) -> u64 {
        self.effort.load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// A software test team: runs the component on random inputs and certifies
/// if nothing faults.
///
/// Deliberately the weakest technique — testing can miss input-dependent
/// escapes, which the security tests demonstrate.
pub struct TestTeamCertifier {
    authority: Authority,
    /// Number of random test runs.
    pub test_runs: u32,
    /// Step budget per run.
    pub step_budget: u64,
    seed: u64,
    effort: std::sync::atomic::AtomicU64,
}

impl TestTeamCertifier {
    /// Creates a test team with a deterministic seed.
    pub fn new(authority: Authority, test_runs: u32, step_budget: u64, seed: u64) -> Self {
        TestTeamCertifier {
            authority,
            test_runs,
            step_budget,
            seed,
            effort: std::sync::atomic::AtomicU64::new(0),
        }
    }
}

impl Certifier for TestTeamCertifier {
    fn name(&self) -> &str {
        &self.authority.name
    }

    fn authority(&self) -> &Authority {
        &self.authority
    }

    fn try_certify(&self, component: &str, image: &[u8], rights: &[Right]) -> CertifyOutcome {
        let program = match Program::decode(image) {
            Ok(p) => p,
            Err(e) => {
                return CertifyOutcome::Declined {
                    reason: format!("{}: cannot parse: {e}", self.name()),
                }
            }
        };
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut effort = 0u64;
        for run in 0..self.test_runs {
            let mut interp = Interp::new(&program);
            // Randomise the input registers and data segment.
            for r in 1..4u8 {
                interp.set_reg(paramecium_sfi::Reg::new(r), rng.gen());
            }
            let data: Vec<u8> = (0..program.data_len.min(256)).map(|_| rng.gen()).collect();
            interp.load_data(0, &data);
            match interp.run(self.step_budget) {
                Ok(out) => effort += out.steps,
                Err(paramecium_sfi::InterpError::OutOfSteps) => {
                    effort += self.step_budget;
                }
                Err(e) => {
                    self.effort
                        .store(effort, std::sync::atomic::Ordering::Relaxed);
                    return CertifyOutcome::Declined {
                        reason: format!("{}: run {run} faulted: {e}", self.name()),
                    };
                }
            }
        }
        self.effort
            .store(effort, std::sync::atomic::Ordering::Relaxed);
        match self
            .authority
            .certify(component, image, rights.to_vec(), CertifyMethod::TestTeam)
        {
            Ok(c) => CertifyOutcome::Certified(c),
            Err(e) => CertifyOutcome::Declined {
                reason: e.to_string(),
            },
        }
    }

    fn last_effort(&self) -> u64 {
        self.effort.load(std::sync::atomic::Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkeys::authority;
    use paramecium_sfi::workloads;

    #[test]
    fn admin_signs_only_allowlisted_images() {
        let image = workloads::checksum_loop(64, 1).encode();
        let admin = AdminCertifier::new(authority("alice", 1), &[&image]);
        match admin.try_certify("csum", &image, &[Right::RunKernel]) {
            CertifyOutcome::Certified(c) => {
                assert!(c.matches_image(&image));
                assert_eq!(c.method, CertifyMethod::Administrator);
            }
            CertifyOutcome::Declined { reason } => panic!("declined: {reason}"),
        }
        assert!(matches!(
            admin.try_certify("other", b"unknown image", &[Right::RunUser]),
            CertifyOutcome::Declined { .. }
        ));
    }

    #[test]
    fn compiler_certifies_verifiable_code_only() {
        let compiler = CompilerCertifier::new(authority("m3c", 2));
        let good = workloads::checksum_loop_verified(64, 1).encode();
        assert!(matches!(
            compiler.try_certify("good", &good, &[Right::RunKernel]),
            CertifyOutcome::Certified(_)
        ));
        assert!(compiler.last_effort() > 0);
        let bad = workloads::wild_writer().encode();
        assert!(matches!(
            compiler.try_certify("bad", &bad, &[Right::RunKernel]),
            CertifyOutcome::Declined { .. }
        ));
        assert!(matches!(
            compiler.try_certify("garbage", b"not bytecode", &[Right::RunUser]),
            CertifyOutcome::Declined { .. }
        ));
    }

    #[test]
    fn prover_gives_up_on_big_programs() {
        let small = workloads::checksum_loop_verified(64, 1).encode();
        let prover = ProverCertifier::new(authority("prover", 3), 100_000);
        assert!(matches!(
            prover.try_certify("small", &small, &[Right::RunKernel]),
            CertifyOutcome::Certified(_)
        ));
        // Tiny budget: must hand the problem over.
        let tired = ProverCertifier::new(authority("prover2", 4), 10);
        assert!(matches!(
            tired.try_certify("small", &small, &[Right::RunKernel]),
            CertifyOutcome::Declined { .. }
        ));
    }

    #[test]
    fn test_team_passes_safe_rejects_faulty() {
        let team = TestTeamCertifier::new(authority("qa", 5), 8, 1 << 16, 42);
        let safe = workloads::alu_loop(10).encode();
        assert!(matches!(
            team.try_certify("alu", &safe, &[Right::RunUser]),
            CertifyOutcome::Certified(_)
        ));
        assert!(team.last_effort() > 0);
        let faulty = workloads::wild_writer().encode();
        assert!(matches!(
            team.try_certify("wild", &faulty, &[Right::RunUser]),
            CertifyOutcome::Declined { .. }
        ));
    }

    #[test]
    fn certificates_verify_against_certifier_key() {
        let compiler = CompilerCertifier::new(authority("m3c", 6));
        let image = workloads::alu_loop(3).encode();
        if let CertifyOutcome::Certified(c) = compiler.try_certify("alu", &image, &[Right::RunUser])
        {
            c.verify_signature(compiler.authority().public()).unwrap();
        } else {
            panic!("expected certification");
        }
    }
}
