//! Ordered subordinates with the escape hatch.
//!
//! "These subordinates may be ordered in preference and provide an escape
//! hatch if one of the subordinates fails to certify. For example, when the
//! automatic program correctness prover decides that it cannot complete the
//! proof, it might turn the problem over to the system administrator."
//! (paper, section 4).

use crate::{
    authority::Authority,
    certificate::{Certificate, DelegationCert, Right},
    certifier::{Certifier, CertifyOutcome},
    CertError,
};

/// One subordinate registered with the policy: the certifier plus the
/// delegation chain that empowers its key.
pub struct Subordinate {
    /// The certifier implementation.
    pub certifier: Box<dyn Certifier>,
    /// Delegation chain from the root to this certifier's key.
    pub chain: Vec<DelegationCert>,
}

/// The result of running the policy on a component.
#[derive(Clone, Debug)]
pub struct PolicyOutcome {
    /// The certificate, if anyone signed.
    pub certificate: Certificate,
    /// The delegation chain for the signer.
    pub chain: Vec<DelegationCert>,
    /// Index of the subordinate that signed.
    pub signer_index: usize,
    /// Audit trail: one line per subordinate tried before success.
    pub attempts: Vec<String>,
    /// Total simulated certification effort across all attempts.
    pub total_effort: u64,
}

/// The ordered subordinate list.
pub struct CertificationPolicy {
    subordinates: Vec<Subordinate>,
}

impl Default for CertificationPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl CertificationPolicy {
    /// Creates an empty policy.
    pub fn new() -> Self {
        CertificationPolicy {
            subordinates: Vec::new(),
        }
    }

    /// Appends a subordinate (lowest index = highest preference).
    pub fn add(&mut self, certifier: Box<dyn Certifier>, chain: Vec<DelegationCert>) {
        self.subordinates.push(Subordinate { certifier, chain });
    }

    /// Number of registered subordinates.
    pub fn len(&self) -> usize {
        self.subordinates.len()
    }

    /// True if no subordinates are registered.
    pub fn is_empty(&self) -> bool {
        self.subordinates.is_empty()
    }

    /// Builds the standard three-tier policy from the paper's narrative:
    /// compiler first (cheap, automatic), then prover, then administrator.
    pub fn standard(
        root: &Authority,
        compiler: crate::certifier::CompilerCertifier,
        prover: crate::certifier::ProverCertifier,
        admin: crate::certifier::AdminCertifier,
        powers: Vec<Right>,
    ) -> Result<Self, CertError> {
        let mut policy = CertificationPolicy::new();
        for certifier in [
            Box::new(compiler) as Box<dyn Certifier>,
            Box::new(prover),
            Box::new(admin),
        ] {
            let chain = vec![root.delegate(
                certifier.name().to_owned(),
                certifier.authority().public(),
                powers.clone(),
            )?];
            policy.add(certifier, chain);
        }
        Ok(policy)
    }

    /// Tries each subordinate in preference order until one certifies —
    /// the escape hatch. Returns the full audit trail either way.
    pub fn certify(
        &self,
        component: &str,
        image: &[u8],
        rights: &[Right],
    ) -> Result<PolicyOutcome, CertError> {
        let mut attempts = Vec::new();
        let mut total_effort = 0u64;
        for (i, sub) in self.subordinates.iter().enumerate() {
            match sub.certifier.try_certify(component, image, rights) {
                CertifyOutcome::Certified(certificate) => {
                    total_effort += sub.certifier.last_effort();
                    attempts.push(format!("{}: certified", sub.certifier.name()));
                    return Ok(PolicyOutcome {
                        certificate,
                        chain: sub.chain.clone(),
                        signer_index: i,
                        attempts,
                        total_effort,
                    });
                }
                CertifyOutcome::Declined { reason } => {
                    total_effort += sub.certifier.last_effort();
                    attempts.push(reason);
                }
            }
        }
        Err(CertError::AllCertifiersDeclined(attempts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certifier::{AdminCertifier, CompilerCertifier, ProverCertifier};
    use crate::testkeys::authority;
    use paramecium_sfi::workloads;

    fn standard_policy(admin_images: &[&[u8]]) -> (Authority, CertificationPolicy) {
        let root = authority("root", 1);
        let policy = CertificationPolicy::standard(
            &root,
            CompilerCertifier::new(authority("compiler", 2)),
            ProverCertifier::new(authority("prover", 3), 2_000),
            AdminCertifier::new(authority("admin", 4), admin_images),
            vec![Right::RunKernel, Right::RunUser, Right::DeviceAccess],
        )
        .unwrap();
        (root, policy)
    }

    #[test]
    fn verifiable_code_certified_by_first_subordinate() {
        let image = workloads::checksum_loop_verified(64, 1).encode();
        let (root, policy) = standard_policy(&[]);
        let out = policy.certify("csum", &image, &[Right::RunKernel]).unwrap();
        assert_eq!(out.signer_index, 0);
        assert_eq!(out.attempts.len(), 1);
        // And the produced chain validates against the root.
        crate::authority::validate_chain(root.public(), &out.chain, &out.certificate).unwrap();
    }

    #[test]
    fn escape_hatch_falls_through_to_admin() {
        // Raw pointer arithmetic: compiler declines; program is large
        // enough that the prover gives up; admin has hand-checked it.
        let image = workloads::checksum_loop(64, 4).encode();
        let (root, policy) = standard_policy(&[&image]);
        let out = policy.certify("raw", &image, &[Right::RunKernel]).unwrap();
        assert_eq!(out.signer_index, 2, "trail: {:?}", out.attempts);
        assert_eq!(out.attempts.len(), 3);
        crate::authority::validate_chain(root.public(), &out.chain, &out.certificate).unwrap();
    }

    #[test]
    fn hatch_exhaustion_reports_full_trail() {
        let image = workloads::wild_writer().encode();
        let (_, policy) = standard_policy(&[]); // Admin has checked nothing.
        match policy.certify("wild", &image, &[Right::RunKernel]) {
            Err(CertError::AllCertifiersDeclined(trail)) => {
                assert_eq!(trail.len(), 3);
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn effort_accumulates_across_attempts() {
        let image = workloads::checksum_loop(64, 4).encode();
        let (_, policy) = standard_policy(&[&image]);
        let out = policy.certify("raw", &image, &[Right::RunKernel]).unwrap();
        // The prover at least burned its budget before handing over.
        assert!(out.total_effort > 0);
    }

    #[test]
    fn empty_policy_declines_everything() {
        let policy = CertificationPolicy::new();
        assert!(policy.is_empty());
        assert!(matches!(
            policy.certify("x", b"i", &[Right::RunUser]),
            Err(CertError::AllCertifiersDeclined(t)) if t.is_empty()
        ));
    }
}
