//! The kernel-side certificate store.
//!
//! Holds (certificate, chain) pairs keyed by component digest and performs
//! the *load-time validation* the certification service calls before
//! mapping a component into a protection domain. An optional validation
//! cache remembers digests whose chains already checked out — the ablation
//! knob for the certification-cost experiment.

use std::collections::HashMap;

use paramecium_crypto::{keys::PublicKey, sha256::sha256, sha256::Digest};

use crate::{
    certificate::{Certificate, DelegationCert, Right},
    validate_chain, CertError,
};

/// Statistics for the validation cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Full chain validations performed.
    pub full_validations: u64,
    /// Validations answered from the cache.
    pub cache_hits: u64,
    /// Total RSA signature verifications performed.
    pub signature_checks: u64,
}

/// The certificate store.
pub struct CertStore {
    root: PublicKey,
    entries: HashMap<Digest, (Certificate, Vec<DelegationCert>)>,
    /// Digests whose chains validated, if caching is enabled.
    validated: HashMap<Digest, ()>,
    cache_enabled: bool,
    stats: StoreStats,
}

impl CertStore {
    /// Creates a store trusting `root`.
    pub fn new(root: PublicKey) -> Self {
        CertStore {
            root,
            entries: HashMap::new(),
            validated: HashMap::new(),
            cache_enabled: true,
            stats: StoreStats::default(),
        }
    }

    /// Enables or disables the validation cache (ablation knob).
    pub fn set_cache_enabled(&mut self, enabled: bool) {
        self.cache_enabled = enabled;
        if !enabled {
            self.validated.clear();
        }
    }

    /// Installs a certificate with its delegation chain.
    pub fn install(&mut self, certificate: Certificate, chain: Vec<DelegationCert>) {
        self.validated.remove(&certificate.digest);
        self.entries
            .insert(certificate.digest, (certificate, chain));
    }

    /// Number of installed certificates.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the store holds no certificates.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up the certificate for an image without validating.
    pub fn lookup(&self, image: &[u8]) -> Option<&Certificate> {
        self.entries.get(&sha256(image)).map(|(c, _)| c)
    }

    /// Performs the load-time check: the image must have a certificate
    /// whose digest matches, whose chain validates to the root, and which
    /// grants `right`.
    ///
    /// Returns the validated certificate on success.
    pub fn validate_for(&mut self, image: &[u8], right: Right) -> Result<Certificate, CertError> {
        let digest = sha256(image);
        let (cert, chain) = self.entries.get(&digest).ok_or(CertError::NotCertified)?;
        // Digest equality is implied by the map key, but re-check against
        // the certificate explicitly — the store contents are data, not
        // trust.
        if cert.digest != digest {
            return Err(CertError::DigestMismatch);
        }
        if self.cache_enabled && self.validated.contains_key(&digest) {
            self.stats.cache_hits += 1;
        } else {
            let checks = validate_chain(&self.root, chain, cert)?;
            self.stats.full_validations += 1;
            self.stats.signature_checks += u64::from(checks);
            if self.cache_enabled {
                self.validated.insert(digest, ());
            }
        }
        if !cert.grants(right) {
            return Err(CertError::InsufficientRights(right));
        }
        Ok(cert.clone())
    }

    /// Cache statistics.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{authority::Authority, certificate::CertifyMethod};

    fn root() -> Authority {
        crate::testkeys::authority("root", 1)
    }

    fn store_with(image: &[u8], rights: Vec<Right>) -> (CertStore, Authority) {
        let root = root();
        let cert = root
            .certify("comp", image, rights, CertifyMethod::Administrator)
            .unwrap();
        let mut store = CertStore::new(root.public().clone());
        store.install(cert, vec![]);
        (store, root)
    }

    #[test]
    fn validate_happy_path() {
        let image = b"component";
        let (mut store, _) = store_with(image, vec![Right::RunKernel]);
        let cert = store.validate_for(image, Right::RunKernel).unwrap();
        assert!(cert.matches_image(image));
        assert_eq!(store.stats().full_validations, 1);
    }

    #[test]
    fn uncertified_image_rejected() {
        let (mut store, _) = store_with(b"known", vec![Right::RunKernel]);
        assert_eq!(
            store.validate_for(b"unknown", Right::RunKernel),
            Err(CertError::NotCertified)
        );
    }

    #[test]
    fn insufficient_rights_rejected() {
        let image = b"user-only";
        let (mut store, _) = store_with(image, vec![Right::RunUser]);
        assert_eq!(
            store.validate_for(image, Right::RunKernel),
            Err(CertError::InsufficientRights(Right::RunKernel))
        );
        // But the right it does hold validates.
        assert!(store.validate_for(image, Right::RunUser).is_ok());
    }

    #[test]
    fn cache_avoids_repeat_signature_checks() {
        let image = b"hot component";
        let (mut store, _) = store_with(image, vec![Right::RunKernel]);
        for _ in 0..5 {
            store.validate_for(image, Right::RunKernel).unwrap();
        }
        let s = store.stats();
        assert_eq!(s.full_validations, 1);
        assert_eq!(s.cache_hits, 4);
        assert_eq!(s.signature_checks, 1);
    }

    #[test]
    fn disabling_cache_revalidates_every_time() {
        let image = b"hot component";
        let (mut store, _) = store_with(image, vec![Right::RunKernel]);
        store.set_cache_enabled(false);
        for _ in 0..3 {
            store.validate_for(image, Right::RunKernel).unwrap();
        }
        assert_eq!(store.stats().full_validations, 3);
        assert_eq!(store.stats().cache_hits, 0);
    }

    #[test]
    fn reinstall_invalidates_cache_entry() {
        let image = b"component";
        let root = root();
        let cert = root
            .certify(
                "comp",
                image,
                vec![Right::RunKernel],
                CertifyMethod::Administrator,
            )
            .unwrap();
        let mut store = CertStore::new(root.public().clone());
        store.install(cert.clone(), vec![]);
        store.validate_for(image, Right::RunKernel).unwrap();
        store.install(cert, vec![]);
        store.validate_for(image, Right::RunKernel).unwrap();
        assert_eq!(store.stats().full_validations, 2);
    }

    #[test]
    fn forged_certificate_rejected_at_validation() {
        let image = b"component";
        let root = root();
        let imposter = crate::testkeys::authority("imposter", 9);
        let cert = imposter
            .certify(
                "comp",
                image,
                vec![Right::RunKernel],
                CertifyMethod::Administrator,
            )
            .unwrap();
        let mut store = CertStore::new(root.public().clone());
        store.install(cert, vec![]);
        assert!(matches!(
            store.validate_for(image, Right::RunKernel),
            Err(CertError::BadSignature(_))
        ));
    }
}
