//! RSA key generation, signing and verification.
//!
//! Signatures use PKCS#1 v1.5-style padding over a SHA-256 digest:
//! `0x00 0x01 0xFF…0xFF 0x00 <tag> <digest>`. The deterministic padding
//! makes verification a simple byte comparison after the public-key
//! operation, exactly what a load-time certificate check wants.
//!
//! # CRT signing
//!
//! Generated keys carry [`CrtParams`]: signing computes `m₁ = m^dₚ mod p`
//! and `m₂ = m^d_q mod q` — two exponentiations at half the width and half
//! the exponent length, roughly 4× cheaper than `m^d mod n` — and
//! recombines with Garner's formula `s = m₂ + q · (q⁻¹(m₁ − m₂) mod p)`.
//! Keys deserialised without factors fall back to the plain exponentiation,
//! which remains the differential-testing oracle for the CRT path.

use rand::Rng;

use crate::{
    bignum::Ubig,
    keys::{CrtParams, KeyPair, PrivateKey, PublicKey},
    prime::gen_prime,
    sha256::{Digest, DIGEST_LEN},
    CryptoError,
};

/// Domain-separation tag preceding the digest inside the padding (stands in
/// for the DER AlgorithmIdentifier of real PKCS#1).
const DIGEST_TAG: &[u8; 4] = b"SH56";

/// Minimum modulus size able to hold the padding (3 bytes framing + tag +
/// digest + at least 8 bytes of 0xFF).
pub const MIN_MODULUS_BITS: u32 = ((3 + DIGEST_TAG.len() + DIGEST_LEN + 8) * 8) as u32;

/// Generates an RSA key pair with a modulus of `bits` bits.
///
/// # Panics
///
/// Panics if `bits` is too small to hold a padded digest
/// (see [`MIN_MODULUS_BITS`]).
pub fn generate<R: Rng + ?Sized>(rng: &mut R, bits: u32) -> KeyPair {
    assert!(
        bits >= MIN_MODULUS_BITS,
        "modulus must be at least {MIN_MODULUS_BITS} bits to hold a padded digest"
    );
    let e = Ubig::from(65537u64);
    loop {
        let p = gen_prime(rng, bits / 2);
        let q = gen_prime(rng, bits - bits / 2);
        if p == q {
            continue;
        }
        let n = p.mul(&q);
        if n.bit_len() != bits {
            continue;
        }
        let p_minus_1 = p.sub(&Ubig::one());
        let q_minus_1 = q.sub(&Ubig::one());
        let phi = p_minus_1.mul(&q_minus_1);
        let Some(d) = e.modinv(&phi) else {
            // gcd(e, phi) != 1; try new primes.
            continue;
        };
        let q_inv = q.modinv(&p).expect("distinct primes are coprime");
        let crt = CrtParams {
            d_p: d.rem(&p_minus_1),
            d_q: d.rem(&q_minus_1),
            p,
            q,
            q_inv,
        };
        return KeyPair {
            public: PublicKey { n: n.clone(), e },
            private: PrivateKey {
                n,
                d,
                crt: Some(crt),
            },
        };
    }
}

/// `m^d mod n` via the CRT split: half-width exponentiations mod `p` and
/// `q`, recombined with Garner's formula.
fn crt_modpow(m: &Ubig, crt: &CrtParams) -> Ubig {
    let m1 = m.modpow(&crt.d_p, &crt.p);
    let m2 = m.modpow(&crt.d_q, &crt.q);
    // h = q_inv · (m1 − m2) mod p, with the subtraction lifted into [0, p).
    let m2_mod_p = m2.rem(&crt.p);
    let diff = if m1 >= m2_mod_p {
        m1.sub(&m2_mod_p)
    } else {
        m1.add(&crt.p).sub(&m2_mod_p)
    };
    let h = diff.modmul(&crt.q_inv, &crt.p);
    m2.add(&crt.q.mul(&h))
}

/// Builds the padded message representative for `digest`, sized to the
/// modulus.
fn pad_digest(digest: &Digest, modulus_len: usize) -> Result<Vec<u8>, CryptoError> {
    let overhead = 3 + DIGEST_TAG.len() + DIGEST_LEN;
    if modulus_len < overhead + 8 {
        return Err(CryptoError::InvalidInput(
            "modulus too small for padded digest".into(),
        ));
    }
    let mut out = Vec::with_capacity(modulus_len);
    out.push(0x00);
    out.push(0x01);
    out.resize(modulus_len - DIGEST_LEN - DIGEST_TAG.len() - 1, 0xFF);
    out.push(0x00);
    out.extend_from_slice(DIGEST_TAG);
    out.extend_from_slice(digest);
    debug_assert_eq!(out.len(), modulus_len);
    Ok(out)
}

/// Signs a digest with the private key, returning a signature of exactly
/// the modulus length.
pub fn sign(key: &PrivateKey, digest: &Digest) -> Result<Vec<u8>, CryptoError> {
    let modulus_len = (key.n.bit_len() as usize).div_ceil(8);
    let padded = pad_digest(digest, modulus_len)?;
    let m = Ubig::from_bytes_be(&padded);
    debug_assert!(m < key.n, "padded representative exceeds modulus");
    let s = match &key.crt {
        Some(crt) => crt_modpow(&m, crt),
        None => m.modpow(&key.d, &key.n),
    };
    s.to_bytes_be_padded(modulus_len)
        .ok_or_else(|| CryptoError::InvalidInput("signature exceeds modulus length".into()))
}

/// Verifies a signature over a digest with the public key.
pub fn verify(key: &PublicKey, digest: &Digest, signature: &[u8]) -> Result<(), CryptoError> {
    let modulus_len = key.modulus_len();
    if signature.len() != modulus_len {
        return Err(CryptoError::BadSignature);
    }
    let s = Ubig::from_bytes_be(signature);
    if s >= key.n {
        return Err(CryptoError::BadSignature);
    }
    let m = s.modpow(&key.e, &key.n);
    let recovered = m
        .to_bytes_be_padded(modulus_len)
        .ok_or(CryptoError::BadSignature)?;
    let expected = pad_digest(digest, modulus_len)?;
    if recovered == expected {
        Ok(())
    } else {
        Err(CryptoError::BadSignature)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::sha256;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, SeedableRng};
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};

    /// Per-seed key cache: 512-bit keygen is the slowest thing a test can
    /// do, so every test asking for the same seed shares one generation.
    fn cached(seed: u64) -> KeyPair {
        static CACHE: OnceLock<Mutex<HashMap<u64, KeyPair>>> = OnceLock::new();
        CACHE
            .get_or_init(|| Mutex::new(HashMap::new()))
            .lock()
            .unwrap()
            .entry(seed)
            .or_insert_with(|| generate(&mut StdRng::seed_from_u64(seed), 512))
            .clone()
    }

    fn keypair() -> KeyPair {
        // 512-bit keys keep debug-mode tests fast; benches use 1024.
        cached(7)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let kp = keypair();
        let digest = sha256(b"trusted component image");
        let sig = sign(&kp.private, &digest).unwrap();
        assert_eq!(sig.len(), kp.public.modulus_len());
        verify(&kp.public, &digest, &sig).unwrap();
    }

    #[test]
    fn tampered_digest_fails() {
        let kp = keypair();
        let sig = sign(&kp.private, &sha256(b"original")).unwrap();
        assert_eq!(
            verify(&kp.public, &sha256(b"tampered"), &sig),
            Err(CryptoError::BadSignature)
        );
    }

    #[test]
    fn tampered_signature_fails() {
        let kp = keypair();
        let digest = sha256(b"component");
        let mut sig = sign(&kp.private, &digest).unwrap();
        sig[10] ^= 0x40;
        assert_eq!(
            verify(&kp.public, &digest, &sig),
            Err(CryptoError::BadSignature)
        );
    }

    #[test]
    fn wrong_key_fails() {
        let kp1 = keypair();
        let kp2 = cached(8);
        let digest = sha256(b"component");
        let sig = sign(&kp1.private, &digest).unwrap();
        assert!(verify(&kp2.public, &digest, &sig).is_err());
    }

    #[test]
    fn wrong_length_signature_fails_fast() {
        let kp = keypair();
        let digest = sha256(b"x");
        assert!(verify(&kp.public, &digest, &[]).is_err());
        assert!(verify(&kp.public, &digest, &[0u8; 63]).is_err());
    }

    #[test]
    fn oversized_signature_value_fails() {
        let kp = keypair();
        let digest = sha256(b"x");
        // A signature numerically >= n must be rejected before exponentiation.
        let too_big = kp
            .public
            .n
            .to_bytes_be_padded(kp.public.modulus_len())
            .unwrap();
        assert_eq!(
            verify(&kp.public, &digest, &too_big),
            Err(CryptoError::BadSignature)
        );
    }

    #[test]
    fn distinct_seeds_distinct_keys() {
        let a = cached(1);
        let b = cached(2);
        assert_ne!(a.public, b.public);
    }

    #[test]
    fn keygen_respects_bit_length() {
        let kp = keypair();
        assert_eq!(kp.public.n.bit_len(), 512);
        assert_eq!(kp.public.modulus_len(), 64);
    }

    #[test]
    #[should_panic(expected = "modulus must be at least")]
    fn tiny_modulus_rejected() {
        let _ = generate(&mut StdRng::seed_from_u64(1), 64);
    }

    #[test]
    fn signature_is_deterministic() {
        let kp = keypair();
        let digest = sha256(b"component");
        assert_eq!(
            sign(&kp.private, &digest).unwrap(),
            sign(&kp.private, &digest).unwrap()
        );
    }

    #[test]
    fn generated_keys_carry_crt_params() {
        let kp = keypair();
        let crt = kp.private.crt.as_ref().expect("generate fills CRT");
        assert_eq!(crt.p.mul(&crt.q), kp.private.n);
        assert_eq!(crt.q.modmul(&crt.q_inv, &crt.p), Ubig::one());
    }

    #[test]
    fn key_without_crt_params_signs_identically() {
        let kp = keypair();
        let stripped = PrivateKey {
            n: kp.private.n.clone(),
            d: kp.private.d.clone(),
            crt: None,
        };
        let digest = sha256(b"component");
        assert_eq!(
            sign(&kp.private, &digest).unwrap(),
            sign(&stripped, &digest).unwrap()
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// CRT signatures must be bit-identical to the plain `m^d mod n`
        /// exponentiation across keys and messages, and verify cleanly.
        #[test]
        fn prop_crt_signature_matches_plain_modpow(
            seed in 1u64..5,
            msg in proptest::collection::vec(any::<u8>(), 0..64),
        ) {
            let kp = cached(seed);
            let digest = sha256(&msg);
            let sig = sign(&kp.private, &digest).unwrap();
            // Oracle: the padded representative raised to the full private
            // exponent, no CRT involved.
            let modulus_len = kp.public.modulus_len();
            let m = Ubig::from_bytes_be(&pad_digest(&digest, modulus_len).unwrap());
            let plain = m.modpow(&kp.private.d, &kp.private.n);
            prop_assert_eq!(&sig, &plain.to_bytes_be_padded(modulus_len).unwrap());
            prop_assert!(verify(&kp.public, &digest, &sig).is_ok());
        }
    }
}
