//! Arbitrary-precision unsigned integers.
//!
//! A minimal big-integer implementation sufficient for RSA: little-endian
//! `u64` limbs, schoolbook multiplication, Knuth Algorithm D division,
//! Montgomery-form modular exponentiation, and the extended Euclidean
//! algorithm for modular inverses.
//!
//! The representation invariant is that `limbs` never has trailing zero
//! limbs (so `Ubig::zero()` has an empty limb vector), which makes
//! comparison by limb count correct.
//!
//! # Montgomery form
//!
//! The modular-exponentiation hot path ([`Ubig::modpow`]) runs in
//! *Montgomery form* whenever the modulus is odd (always true for RSA
//! moduli and prime candidates). With `k` limbs of modulus `n` and
//! `R = 2^(64k)`, a value `a` is represented as `aR mod n`; the CIOS
//! (coarsely integrated operand scanning) product of two such
//! representatives yields `abR mod n` using only single-limb
//! multiply-adds and one shift — no multi-limb division per step. That
//! turns each modular multiplication from a `2k`-by-`k` Knuth division
//! into `2k² + k` limb multiplies, a large constant-factor win.
//!
//! Exponentiation uses a fixed 4-bit window for large exponents: 16
//! precomputed powers, then 4 squarings + at most 1 table multiply per
//! window. For a `b`-bit exponent this costs `b + b/4 + 14` multiplies
//! versus `1.5 b` for square-and-multiply — about 20% fewer at RSA sizes,
//! on top of the Montgomery savings. Exponents of 64 bits or fewer (e.g.
//! the public exponent 65537) skip the table and use plain
//! square-and-multiply, since 14 precomputation multiplies would dominate.
//! The pre-Montgomery path survives as [`Ubig::modpow_schoolbook`]: it
//! handles even moduli and serves as the differential-testing oracle.

use std::cmp::Ordering;

/// An arbitrary-precision unsigned integer.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct Ubig {
    /// Little-endian 64-bit limbs with no trailing zeros.
    limbs: Vec<u64>,
}

impl Ubig {
    /// The value 0.
    pub fn zero() -> Self {
        Ubig { limbs: Vec::new() }
    }

    /// The value 1.
    pub fn one() -> Self {
        Ubig { limbs: vec![1] }
    }

    /// Builds from little-endian limbs, normalising trailing zeros.
    pub fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        Ubig { limbs }
    }

    /// Exposes the little-endian limbs (no trailing zeros).
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Builds from a big-endian byte string (as found in keys and
    /// signatures). Leading zero bytes are permitted.
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        let mut cur: u64 = 0;
        let mut nbits = 0;
        for &b in bytes.iter().rev() {
            cur |= u64::from(b) << nbits;
            nbits += 8;
            if nbits == 64 {
                limbs.push(cur);
                cur = 0;
                nbits = 0;
            }
        }
        if nbits > 0 {
            limbs.push(cur);
        }
        Ubig::from_limbs(limbs)
    }

    /// Serialises to a big-endian byte string with no leading zeros
    /// (empty for zero).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for (i, limb) in self.limbs.iter().enumerate().rev() {
            let bytes = limb.to_be_bytes();
            if i == self.limbs.len() - 1 {
                // Skip leading zeros of the most significant limb.
                let skip = (limb.leading_zeros() / 8) as usize;
                out.extend_from_slice(&bytes[skip.min(7)..]);
            } else {
                out.extend_from_slice(&bytes);
            }
        }
        out
    }

    /// Serialises to exactly `len` big-endian bytes, left-padded with
    /// zeros. Returns `None` if the value does not fit.
    pub fn to_bytes_be_padded(&self, len: usize) -> Option<Vec<u8>> {
        let raw = self.to_bytes_be();
        if raw.len() > len {
            return None;
        }
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        Some(out)
    }

    /// True if the value is 0.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True if the value is 1.
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// True if the value is even (0 is even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Number of significant bits (0 for zero).
    pub fn bit_len(&self) -> u32 {
        match self.limbs.last() {
            None => 0,
            Some(top) => self.limbs.len() as u32 * 64 - top.leading_zeros(),
        }
    }

    /// Returns bit `i` (little-endian bit order).
    pub fn bit(&self, i: u32) -> bool {
        let limb = (i / 64) as usize;
        match self.limbs.get(limb) {
            Some(l) => (l >> (i % 64)) & 1 == 1,
            None => false,
        }
    }

    /// The low 64 bits of the value.
    pub fn low_u64(&self) -> u64 {
        self.limbs.first().copied().unwrap_or(0)
    }

    /// Addition.
    pub fn add(&self, other: &Ubig) -> Ubig {
        let (big, small) = if self.limbs.len() >= other.limbs.len() {
            (self, other)
        } else {
            (other, self)
        };
        let mut out = Vec::with_capacity(big.limbs.len() + 1);
        let mut carry = 0u64;
        for i in 0..big.limbs.len() {
            let b = small.limbs.get(i).copied().unwrap_or(0);
            let (s1, c1) = big.limbs[i].overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = u64::from(c1) + u64::from(c2);
        }
        if carry > 0 {
            out.push(carry);
        }
        Ubig::from_limbs(out)
    }

    /// Adds a small value.
    pub fn add_u64(&self, v: u64) -> Ubig {
        self.add(&Ubig::from(v))
    }

    /// Subtraction; returns `None` on underflow.
    pub fn checked_sub(&self, other: &Ubig) -> Option<Ubig> {
        if self < other {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = u64::from(b1) + u64::from(b2);
        }
        debug_assert_eq!(borrow, 0, "underflow despite ordering check");
        Some(Ubig::from_limbs(out))
    }

    /// Subtraction.
    ///
    /// # Panics
    ///
    /// Panics if `other > self`. Use [`Ubig::checked_sub`] when underflow is
    /// possible.
    pub fn sub(&self, other: &Ubig) -> Ubig {
        self.checked_sub(other).expect("Ubig::sub underflow")
    }

    /// Schoolbook multiplication.
    pub fn mul(&self, other: &Ubig) -> Ubig {
        if self.is_zero() || other.is_zero() {
            return Ubig::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry: u128 = 0;
            for (j, &b) in other.limbs.iter().enumerate() {
                let t = u128::from(a) * u128::from(b) + u128::from(out[i + j]) + carry;
                out[i + j] = t as u64;
                carry = t >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry > 0 {
                let t = u128::from(out[k]) + carry;
                out[k] = t as u64;
                carry = t >> 64;
                k += 1;
            }
        }
        Ubig::from_limbs(out)
    }

    /// Left shift by `s` bits.
    pub fn shl_bits(&self, s: u32) -> Ubig {
        if self.is_zero() || s == 0 {
            let mut v = self.clone();
            if s > 0 {
                v = Ubig::zero();
                // Unreachable: is_zero() handled above; kept for clarity.
            }
            return v;
        }
        let limb_shift = (s / 64) as usize;
        let bit_shift = s % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry > 0 {
                out.push(carry);
            }
        }
        Ubig::from_limbs(out)
    }

    /// Right shift by `s` bits.
    pub fn shr_bits(&self, s: u32) -> Ubig {
        let limb_shift = (s / 64) as usize;
        if limb_shift >= self.limbs.len() {
            return Ubig::zero();
        }
        let bit_shift = s % 64;
        let src = &self.limbs[limb_shift..];
        if bit_shift == 0 {
            return Ubig::from_limbs(src.to_vec());
        }
        let mut out = Vec::with_capacity(src.len());
        for i in 0..src.len() {
            let lo = src[i] >> bit_shift;
            let hi = src.get(i + 1).map_or(0, |n| n << (64 - bit_shift));
            out.push(lo | hi);
        }
        Ubig::from_limbs(out)
    }

    /// Division with remainder: returns `(quotient, remainder)`.
    ///
    /// Implements Knuth's Algorithm D with `u64` limbs.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn divrem(&self, divisor: &Ubig) -> (Ubig, Ubig) {
        assert!(!divisor.is_zero(), "division by zero");
        if self < divisor {
            return (Ubig::zero(), self.clone());
        }
        if divisor.limbs.len() == 1 {
            let d = divisor.limbs[0];
            let mut q = vec![0u64; self.limbs.len()];
            let mut rem: u128 = 0;
            for i in (0..self.limbs.len()).rev() {
                let cur = (rem << 64) | u128::from(self.limbs[i]);
                q[i] = (cur / u128::from(d)) as u64;
                rem = cur % u128::from(d);
            }
            return (Ubig::from_limbs(q), Ubig::from(rem as u64));
        }

        // Normalise so the divisor's top limb has its high bit set.
        let s = divisor.limbs.last().expect("nonzero").leading_zeros();
        let v = divisor.shl_bits(s);
        let mut u = self.shl_bits(s).limbs;
        let n = v.limbs.len();
        let m = u.len() - n;
        u.push(0); // Extra high limb u[m+n].

        const B: u128 = 1 << 64;
        let vn1 = u128::from(v.limbs[n - 1]);
        let vn2 = u128::from(v.limbs[n - 2]);
        let mut q = vec![0u64; m + 1];

        for j in (0..=m).rev() {
            let top = (u128::from(u[j + n]) << 64) | u128::from(u[j + n - 1]);
            let mut qhat = top / vn1;
            let mut rhat = top % vn1;
            // Correct qhat down to at most one off.
            while qhat >= B || qhat * vn2 > ((rhat << 64) | u128::from(u[j + n - 2])) {
                qhat -= 1;
                rhat += vn1;
                if rhat >= B {
                    break;
                }
            }
            // Multiply-and-subtract u[j..=j+n] -= qhat * v.
            let mut borrow: i128 = 0;
            let mut carry: u128 = 0;
            for i in 0..n {
                let p = qhat * u128::from(v.limbs[i]) + carry;
                carry = p >> 64;
                let d = i128::from(u[j + i]) - i128::from(p as u64) - borrow;
                u[j + i] = d as u64;
                borrow = i128::from(d < 0);
            }
            let d = i128::from(u[j + n]) - (carry as i128) - borrow;
            u[j + n] = d as u64;

            let mut qj = qhat as u64;
            if d < 0 {
                // qhat was one too large: add the divisor back.
                qj -= 1;
                let mut carry2: u128 = 0;
                for i in 0..n {
                    let t = u128::from(u[j + i]) + u128::from(v.limbs[i]) + carry2;
                    u[j + i] = t as u64;
                    carry2 = t >> 64;
                }
                u[j + n] = u[j + n].wrapping_add(carry2 as u64);
            }
            q[j] = qj;
        }

        let r = Ubig::from_limbs(u[..n].to_vec()).shr_bits(s);
        (Ubig::from_limbs(q), r)
    }

    /// Remainder of division.
    pub fn rem(&self, modulus: &Ubig) -> Ubig {
        self.divrem(modulus).1
    }

    /// Remainder of division by a single limb (no allocation).
    ///
    /// # Panics
    ///
    /// Panics if `d` is zero.
    pub fn rem_u64(&self, d: u64) -> u64 {
        assert!(d != 0, "division by zero");
        let mut rem: u128 = 0;
        for &limb in self.limbs.iter().rev() {
            rem = ((rem << 64) | u128::from(limb)) % u128::from(d);
        }
        rem as u64
    }

    /// Extracts `width` (≤ 64) bits starting at bit `i` (little-endian).
    fn bits_at(&self, i: u32, width: u32) -> u64 {
        debug_assert!((1..=64).contains(&width));
        let li = (i / 64) as usize;
        let off = i % 64;
        let lo = self.limbs.get(li).copied().unwrap_or(0) >> off;
        let hi = if off + width > 64 {
            self.limbs.get(li + 1).copied().unwrap_or(0) << (64 - off)
        } else {
            0
        };
        let v = lo | hi;
        if width == 64 {
            v
        } else {
            v & ((1u64 << width) - 1)
        }
    }

    /// Modular multiplication `self * other mod m`.
    pub fn modmul(&self, other: &Ubig, m: &Ubig) -> Ubig {
        self.mul(other).rem(m)
    }

    /// Modular exponentiation `self^exp mod m`.
    ///
    /// Odd moduli (the only kind RSA and Miller–Rabin ever present) take
    /// the Montgomery-form windowed path; even moduli fall back to
    /// [`Ubig::modpow_schoolbook`]. See the module docs for the cost model.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn modpow(&self, exp: &Ubig, m: &Ubig) -> Ubig {
        assert!(!m.is_zero(), "modpow with zero modulus");
        if m.is_one() {
            return Ubig::zero();
        }
        match Montgomery::new(m) {
            Some(mont) => mont.pow(self, exp),
            None => self.modpow_schoolbook(exp, m),
        }
    }

    /// Modular exponentiation by plain square-and-multiply with a full
    /// division per step. Handles even moduli (which Montgomery form
    /// cannot) and serves as the differential-testing oracle for the fast
    /// path.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn modpow_schoolbook(&self, exp: &Ubig, m: &Ubig) -> Ubig {
        assert!(!m.is_zero(), "modpow with zero modulus");
        if m.is_one() {
            return Ubig::zero();
        }
        let mut base = self.rem(m);
        let mut result = Ubig::one();
        for i in 0..exp.bit_len() {
            if exp.bit(i) {
                result = result.modmul(&base, m);
            }
            if i + 1 < exp.bit_len() {
                base = base.modmul(&base, m);
            }
        }
        result
    }

    /// Greatest common divisor (Euclid).
    pub fn gcd(&self, other: &Ubig) -> Ubig {
        let (mut a, mut b) = (self.clone(), other.clone());
        while !b.is_zero() {
            let r = a.rem(&b);
            a = b;
            b = r;
        }
        a
    }

    /// Modular inverse: the `x` with `self * x ≡ 1 (mod m)`, if it exists.
    pub fn modinv(&self, m: &Ubig) -> Option<Ubig> {
        if m.is_zero() || m.is_one() {
            return None;
        }
        // Extended Euclid with signed Bezout coefficients for `self`.
        let (mut old_r, mut r) = (self.rem(m), m.clone());
        let (mut old_t, mut t) = (Signed::pos(Ubig::one()), Signed::pos(Ubig::zero()));
        while !r.is_zero() {
            let (q, rem) = old_r.divrem(&r);
            old_r = std::mem::replace(&mut r, rem);
            let qt = t.mul_ubig(&q);
            let new_t = old_t.sub(&qt);
            old_t = std::mem::replace(&mut t, new_t);
        }
        if !old_r.is_one() {
            return None;
        }
        Some(old_t.rem_positive(m))
    }
}

/// Reusable Montgomery-form context for an odd modulus `n > 1`.
///
/// Construction pays one `R mod n` / `R² mod n` setup division; every
/// subsequent multiplication is a division-free CIOS reduction. Callers
/// that perform many multiplications under one modulus (modular
/// exponentiation, Miller–Rabin witnesses) should build the context once
/// and reuse it.
pub struct Montgomery {
    /// Modulus limbs (little-endian, exactly `k` limbs, top limb nonzero).
    n: Vec<u64>,
    /// `-n⁻¹ mod 2⁶⁴`, the per-limb reduction factor.
    n0_inv: u64,
    /// `R² mod n` (`R = 2^(64k)`), for converting into Montgomery form.
    r2: Vec<u64>,
    /// `R mod n`, the Montgomery representative of 1.
    one: Vec<u64>,
    /// Limb count of the modulus.
    k: usize,
}

/// A residue in Montgomery form, produced by and only meaningful with the
/// [`Montgomery`] context that created it. The representation is canonical
/// (reduced below the modulus, fixed limb count), so `==` compares residues.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MontElem {
    limbs: Vec<u64>,
}

impl Montgomery {
    /// Builds a context for modulus `m`. Returns `None` if `m` is even or
    /// less than 2 (Montgomery reduction requires `gcd(m, 2⁶⁴) = 1`).
    pub fn new(m: &Ubig) -> Option<Montgomery> {
        if m.is_even() || m.is_one() {
            return None;
        }
        let n = m.limbs.clone();
        let k = n.len();
        // Newton–Hensel iteration: doubles correct low bits each step, so
        // five steps lift the (trivially correct) 1-bit inverse to 64 bits.
        let mut inv = n[0];
        for _ in 0..5 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n[0].wrapping_mul(inv)));
        }
        debug_assert_eq!(n[0].wrapping_mul(inv), 1);
        let n0_inv = inv.wrapping_neg();
        // One-time setup divisions for R mod n and R² mod n.
        let r = Ubig::one().shl_bits(64 * k as u32).rem(m);
        let r2 = r.mul(&r).rem(m);
        Some(Montgomery {
            one: pad_limbs(&r, k),
            r2: pad_limbs(&r2, k),
            n,
            n0_inv,
            k,
        })
    }

    /// The Montgomery representative of 1 (`R mod n`).
    pub fn one(&self) -> MontElem {
        MontElem {
            limbs: self.one.clone(),
        }
    }

    /// Converts `a` into Montgomery form (reducing mod `n` first if needed).
    pub fn to_mont(&self, a: &Ubig) -> MontElem {
        let oversized =
            a.limbs.len() > self.k || (a.limbs.len() == self.k && !limbs_lt(&a.limbs, &self.n));
        let reduced;
        let a = if oversized {
            reduced = a.rem(&Ubig::from_limbs(self.n.clone()));
            &reduced
        } else {
            a
        };
        MontElem {
            limbs: self.mul_limbs(&pad_limbs(a, self.k), &self.r2),
        }
    }

    /// Converts back out of Montgomery form.
    pub fn from_mont(&self, a: &MontElem) -> Ubig {
        let mut one = vec![0u64; self.k];
        one[0] = 1;
        Ubig::from_limbs(self.mul_limbs(&a.limbs, &one))
    }

    /// Montgomery product of two residues.
    pub fn mul(&self, a: &MontElem, b: &MontElem) -> MontElem {
        MontElem {
            limbs: self.mul_limbs(&a.limbs, &b.limbs),
        }
    }

    /// `base^exp mod n`, staying in Montgomery form throughout.
    pub fn pow(&self, base: &Ubig, exp: &Ubig) -> Ubig {
        if exp.is_zero() {
            return Ubig::one();
        }
        self.from_mont(&self.pow_elem(&self.to_mont(base), exp))
    }

    /// `base^exp` on a residue already in Montgomery form.
    ///
    /// Exponents longer than 64 bits use a fixed 4-bit window (16-entry
    /// table, 4 squarings + at most one table multiply per window); shorter
    /// exponents use plain square-and-multiply, for which the table
    /// precomputation would not pay for itself.
    pub fn pow_elem(&self, base: &MontElem, exp: &Ubig) -> MontElem {
        let bits = exp.bit_len();
        // Two reusable buffers (result + CIOS scratch) serve the whole
        // exponentiation: hundreds of multiplies, zero per-step allocation.
        let mut out = vec![0u64; self.k];
        let mut scratch = vec![0u64; self.k + 2];
        if bits <= 64 {
            let mut acc = self.one.clone();
            for i in (0..bits).rev() {
                self.mul_into(&acc, None, &mut scratch, &mut out);
                std::mem::swap(&mut acc, &mut out);
                if exp.bit(i) {
                    self.mul_into(&acc, Some(&base.limbs), &mut scratch, &mut out);
                    std::mem::swap(&mut acc, &mut out);
                }
            }
            return MontElem { limbs: acc };
        }
        const WINDOW: u32 = 4;
        let mut table = Vec::with_capacity(1 << WINDOW);
        table.push(self.one.clone());
        for i in 1..1usize << WINDOW {
            table.push(self.mul_limbs(&table[i - 1], &base.limbs));
        }
        let nwin = bits.div_ceil(WINDOW);
        let top = exp.bits_at((nwin - 1) * WINDOW, WINDOW) as usize;
        let mut acc = table[top].clone();
        for w in (0..nwin - 1).rev() {
            for _ in 0..WINDOW {
                self.mul_into(&acc, None, &mut scratch, &mut out);
                std::mem::swap(&mut acc, &mut out);
            }
            let d = exp.bits_at(w * WINDOW, WINDOW) as usize;
            if d != 0 {
                self.mul_into(&acc, Some(&table[d]), &mut scratch, &mut out);
                std::mem::swap(&mut acc, &mut out);
            }
        }
        MontElem { limbs: acc }
    }

    /// Allocating convenience wrapper around [`Montgomery::mul_into`].
    fn mul_limbs(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let mut out = vec![0u64; self.k];
        let mut scratch = vec![0u64; self.k + 2];
        self.mul_into(a, Some(b), &mut scratch, &mut out);
        out
    }

    /// CIOS (coarsely integrated operand scanning) Montgomery product:
    /// writes `a · b · R⁻¹ mod n` into `out` for `k`-limb operands below
    /// `n`, using `t` (length `k + 2`) as scratch. `b = None` squares `a`
    /// (callers cannot alias `a` with `out` under the borrow rules, so the
    /// common squaring step is spelled this way).
    fn mul_into(&self, a: &[u64], b: Option<&[u64]>, t: &mut [u64], out: &mut [u64]) {
        let k = self.k;
        let b = b.unwrap_or(a);
        debug_assert_eq!(a.len(), k);
        debug_assert_eq!(b.len(), k);
        debug_assert_eq!(t.len(), k + 2);
        debug_assert_eq!(out.len(), k);
        t.fill(0);
        for &ai in a {
            // t += a[i] · b
            let ai = u128::from(ai);
            let mut carry: u128 = 0;
            for j in 0..k {
                let v = ai * u128::from(b[j]) + u128::from(t[j]) + carry;
                t[j] = v as u64;
                carry = v >> 64;
            }
            let v = u128::from(t[k]) + carry;
            t[k] = v as u64;
            t[k + 1] = (v >> 64) as u64;
            // t += m · n with m chosen so t becomes divisible by 2⁶⁴,
            // then shift one limb right (fused into the same pass).
            let m = u128::from(t[0].wrapping_mul(self.n0_inv));
            let v = m * u128::from(self.n[0]) + u128::from(t[0]);
            let mut carry = v >> 64;
            for j in 1..k {
                let v = m * u128::from(self.n[j]) + u128::from(t[j]) + carry;
                t[j - 1] = v as u64;
                carry = v >> 64;
            }
            let v = u128::from(t[k]) + carry;
            t[k - 1] = v as u64;
            t[k] = t[k + 1] + (v >> 64) as u64;
            t[k + 1] = 0;
        }
        // Inputs below n keep the CIOS result below 2n, so one conditional
        // subtraction canonicalises it.
        let needs_sub = t[k] != 0 || !limbs_lt(&t[..k], &self.n);
        if needs_sub {
            let mut borrow = 0u64;
            for (tj, &nj) in t.iter_mut().zip(&self.n) {
                let (d1, b1) = tj.overflowing_sub(nj);
                let (d2, b2) = d1.overflowing_sub(borrow);
                *tj = d2;
                borrow = u64::from(b1) | u64::from(b2);
            }
            debug_assert_eq!(borrow, t[k], "Montgomery result not below 2n");
        }
        out.copy_from_slice(&t[..k]);
    }
}

/// Clones `v`'s limbs zero-extended to exactly `k` limbs.
fn pad_limbs(v: &Ubig, k: usize) -> Vec<u64> {
    debug_assert!(v.limbs.len() <= k);
    let mut out = v.limbs.clone();
    out.resize(k, 0);
    out
}

/// `a < b` for equal-length little-endian limb slices.
fn limbs_lt(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    for i in (0..a.len()).rev() {
        match a[i].cmp(&b[i]) {
            Ordering::Less => return true,
            Ordering::Greater => return false,
            Ordering::Equal => {}
        }
    }
    false
}

/// A signed big integer used internally by the extended Euclidean
/// algorithm.
#[derive(Clone, Debug)]
struct Signed {
    neg: bool,
    mag: Ubig,
}

impl Signed {
    fn pos(mag: Ubig) -> Self {
        Signed { neg: false, mag }
    }

    fn mul_ubig(&self, v: &Ubig) -> Signed {
        Signed {
            neg: self.neg && !v.is_zero(),
            mag: self.mag.mul(v),
        }
    }

    fn sub(&self, other: &Signed) -> Signed {
        match (self.neg, other.neg) {
            // a - (-b) = a + b ; (-a) - b = -(a + b)
            (false, true) => Signed {
                neg: false,
                mag: self.mag.add(&other.mag),
            },
            (true, false) => Signed {
                neg: true,
                mag: self.mag.add(&other.mag),
            },
            // Same sign: compare magnitudes.
            (sn, _) => {
                if self.mag >= other.mag {
                    Signed {
                        neg: sn,
                        mag: self.mag.sub(&other.mag),
                    }
                } else {
                    Signed {
                        neg: !sn,
                        mag: other.mag.sub(&self.mag),
                    }
                }
            }
        }
    }

    /// Reduces into `[0, m)`.
    fn rem_positive(&self, m: &Ubig) -> Ubig {
        let r = self.mag.rem(m);
        if self.neg && !r.is_zero() {
            m.sub(&r)
        } else {
            r
        }
    }
}

impl From<u64> for Ubig {
    fn from(v: u64) -> Self {
        if v == 0 {
            Ubig::zero()
        } else {
            Ubig { limbs: vec![v] }
        }
    }
}

impl From<u128> for Ubig {
    fn from(v: u128) -> Self {
        Ubig::from_limbs(vec![v as u64, (v >> 64) as u64])
    }
}

impl PartialOrd for Ubig {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ubig {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => self.limbs.iter().rev().cmp(other.limbs.iter().rev()),
            ord => ord,
        }
    }
}

impl std::fmt::Display for Ubig {
    /// Formats as lowercase hex (the natural base for fingerprints).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_zero() {
            return f.write_str("0x0");
        }
        write!(f, "0x{:x}", self.limbs.last().expect("nonzero"))?;
        for l in self.limbs.iter().rev().skip(1) {
            write!(f, "{l:016x}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn big(v: u128) -> Ubig {
        Ubig::from(v)
    }

    #[test]
    fn construction_normalises() {
        assert_eq!(Ubig::from_limbs(vec![0, 0, 0]), Ubig::zero());
        assert_eq!(Ubig::from_limbs(vec![5, 0]), Ubig::from(5u64));
        assert!(Ubig::zero().is_zero());
        assert!(Ubig::one().is_one());
    }

    #[test]
    fn byte_roundtrip() {
        for v in [0u128, 1, 255, 256, u128::from(u64::MAX), u128::MAX] {
            let b = big(v);
            assert_eq!(Ubig::from_bytes_be(&b.to_bytes_be()), b);
        }
        // Leading zeros are accepted on input and never produced on output.
        assert_eq!(Ubig::from_bytes_be(&[0, 0, 1, 2]), big(0x0102));
        assert_eq!(big(0x0102).to_bytes_be(), vec![1, 2]);
        assert_eq!(Ubig::zero().to_bytes_be(), Vec::<u8>::new());
    }

    #[test]
    fn padded_bytes() {
        assert_eq!(big(0x0102).to_bytes_be_padded(4), Some(vec![0, 0, 1, 2]));
        assert_eq!(big(0x010203).to_bytes_be_padded(2), None);
        assert_eq!(Ubig::zero().to_bytes_be_padded(2), Some(vec![0, 0]));
    }

    #[test]
    fn bit_accessors() {
        let v = big(0b1011);
        assert_eq!(v.bit_len(), 4);
        assert!(v.bit(0) && v.bit(1) && !v.bit(2) && v.bit(3) && !v.bit(64));
        assert_eq!(Ubig::zero().bit_len(), 0);
        assert_eq!(big(1u128 << 100).bit_len(), 101);
    }

    #[test]
    fn add_sub_small() {
        assert_eq!(big(3).add(&big(4)), big(7));
        let max = Ubig::from(u64::MAX);
        assert_eq!(max.add(&Ubig::one()), big(1u128 << 64));
        assert_eq!(big(1u128 << 64).sub(&Ubig::one()), Ubig::from(u64::MAX));
        assert_eq!(big(5).checked_sub(&big(9)), None);
    }

    #[test]
    fn mul_small() {
        assert_eq!(big(0).mul(&big(100)), big(0));
        assert_eq!(big(7).mul(&big(6)), big(42));
        let a = Ubig::from(u64::MAX);
        assert_eq!(
            a.mul(&a),
            big((u128::from(u64::MAX)) * u128::from(u64::MAX))
        );
    }

    #[test]
    fn shifts() {
        assert_eq!(big(1).shl_bits(64), big(1u128 << 64));
        assert_eq!(big(1u128 << 64).shr_bits(64), big(1));
        assert_eq!(big(0b1010).shl_bits(3), big(0b1010000));
        assert_eq!(big(0b1010000).shr_bits(3), big(0b1010));
        assert_eq!(big(5).shr_bits(200), Ubig::zero());
    }

    #[test]
    fn divrem_small_divisor() {
        let (q, r) = big(1000).divrem(&big(7));
        assert_eq!((q, r), (big(142), big(6)));
        let (q, r) = big(5).divrem(&big(9));
        assert_eq!((q, r), (Ubig::zero(), big(5)));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = big(1).divrem(&Ubig::zero());
    }

    #[test]
    fn modpow_small() {
        // 4^13 mod 497 = 445 (classic example).
        assert_eq!(big(4).modpow(&big(13), &big(497)), big(445));
        assert_eq!(big(7).modpow(&Ubig::zero(), &big(13)), Ubig::one());
        assert_eq!(big(7).modpow(&big(5), &Ubig::one()), Ubig::zero());
    }

    #[test]
    fn modinv_small() {
        // 3 * 4 = 12 ≡ 1 (mod 11).
        assert_eq!(big(3).modinv(&big(11)), Some(big(4)));
        // gcd(4, 8) != 1 → no inverse.
        assert_eq!(big(4).modinv(&big(8)), None);
        assert_eq!(big(3).modinv(&Ubig::one()), None);
        // 65537 mod small phi.
        let e = big(65537);
        let phi = big(3120);
        if let Some(d) = e.modinv(&phi) {
            assert_eq!(e.mul(&d).rem(&phi), Ubig::one());
        }
    }

    #[test]
    fn display_hex() {
        assert_eq!(Ubig::zero().to_string(), "0x0");
        assert_eq!(big(0xdeadbeef).to_string(), "0xdeadbeef");
        assert_eq!(big((1u128 << 64) + 2).to_string(), "0x10000000000000002");
    }

    proptest! {
        #[test]
        fn prop_add_matches_u128(a in any::<u64>(), b in any::<u64>()) {
            let sum = big(u128::from(a) + u128::from(b));
            prop_assert_eq!(Ubig::from(a).add(&Ubig::from(b)), sum);
        }

        #[test]
        fn prop_mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
            let prod = big(u128::from(a) * u128::from(b));
            prop_assert_eq!(Ubig::from(a).mul(&Ubig::from(b)), prod);
        }

        #[test]
        fn prop_divrem_matches_u128(a in any::<u128>(), b in 1u128..) {
            let (q, r) = big(a).divrem(&big(b));
            prop_assert_eq!(q, big(a / b));
            prop_assert_eq!(r, big(a % b));
        }

        #[test]
        fn prop_divrem_identity(
            a in proptest::collection::vec(any::<u64>(), 1..8),
            b in proptest::collection::vec(any::<u64>(), 1..5),
        ) {
            let a = Ubig::from_limbs(a);
            let b = Ubig::from_limbs(b);
            prop_assume!(!b.is_zero());
            let (q, r) = a.divrem(&b);
            // a = q*b + r and r < b.
            prop_assert!(r < b);
            prop_assert_eq!(q.mul(&b).add(&r), a);
        }

        #[test]
        fn prop_add_sub_roundtrip(
            a in proptest::collection::vec(any::<u64>(), 0..6),
            b in proptest::collection::vec(any::<u64>(), 0..6),
        ) {
            let a = Ubig::from_limbs(a);
            let b = Ubig::from_limbs(b);
            prop_assert_eq!(a.add(&b).sub(&b), a);
        }

        #[test]
        fn prop_shift_roundtrip(
            a in proptest::collection::vec(any::<u64>(), 0..5),
            s in 0u32..200,
        ) {
            let a = Ubig::from_limbs(a);
            prop_assert_eq!(a.shl_bits(s).shr_bits(s), a);
        }

        #[test]
        fn prop_byte_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
            let v = Ubig::from_bytes_be(&bytes);
            prop_assert_eq!(Ubig::from_bytes_be(&v.to_bytes_be()), v);
        }

        #[test]
        fn prop_modpow_matches_naive(
            base in any::<u64>(), exp in 0u32..40, m in 2u64..,
        ) {
            let m_big = Ubig::from(m);
            let got = Ubig::from(base).modpow(&Ubig::from(u64::from(exp)), &m_big);
            // Naive iterated modmul oracle.
            let mut want = Ubig::one().rem(&m_big);
            for _ in 0..exp {
                want = want.modmul(&Ubig::from(base), &m_big);
            }
            prop_assert_eq!(got, want);
        }

        #[test]
        fn prop_modinv_is_inverse(a in 1u64.., m in 2u64..) {
            let (a, m) = (Ubig::from(a), Ubig::from(m));
            if let Some(inv) = a.modinv(&m) {
                prop_assert!(inv < m);
                prop_assert_eq!(a.modmul(&inv, &m), Ubig::one());
            } else {
                prop_assert!(!a.gcd(&m).is_one());
            }
        }

        #[test]
        fn prop_gcd_divides(a in 1u64.., b in 1u64..) {
            let g = Ubig::from(a).gcd(&Ubig::from(b));
            prop_assert!(!g.is_zero());
            prop_assert!(Ubig::from(a).rem(&g).is_zero());
            prop_assert!(Ubig::from(b).rem(&g).is_zero());
        }

        #[test]
        fn prop_cmp_matches_u128(a in any::<u128>(), b in any::<u128>()) {
            prop_assert_eq!(big(a).cmp(&big(b)), a.cmp(&b));
        }

        #[test]
        fn prop_rem_u64_matches_divrem(
            a in proptest::collection::vec(any::<u64>(), 0..6),
            d in 1u64..,
        ) {
            let a = Ubig::from_limbs(a);
            prop_assert_eq!(a.rem_u64(d), a.rem(&Ubig::from(d)).low_u64());
        }

        /// The Montgomery windowed fast path must agree with the schoolbook
        /// oracle for any modulus (odd moduli exercise Montgomery, even
        /// ones the fallback) and any exponent length (both the ≤64-bit
        /// square-and-multiply path and the windowed path).
        #[test]
        fn prop_modpow_matches_schoolbook(
            base in proptest::collection::vec(any::<u64>(), 1..8),
            exp in proptest::collection::vec(any::<u64>(), 1..4),
            m in proptest::collection::vec(any::<u64>(), 1..6),
        ) {
            let base = Ubig::from_limbs(base);
            let exp = Ubig::from_limbs(exp);
            let m = Ubig::from_limbs(m);
            prop_assume!(!m.is_zero() && !m.is_one());
            prop_assert_eq!(
                base.modpow(&exp, &m),
                base.modpow_schoolbook(&exp, &m)
            );
        }

        /// Montgomery round-trip and multiplication against plain modmul.
        #[test]
        fn prop_montgomery_mul_matches_modmul(
            a in proptest::collection::vec(any::<u64>(), 1..6),
            b in proptest::collection::vec(any::<u64>(), 1..6),
            m in proptest::collection::vec(any::<u64>(), 1..6),
        ) {
            let a = Ubig::from_limbs(a);
            let b = Ubig::from_limbs(b);
            // Force the modulus odd so a context exists.
            let mut m = m;
            m[0] |= 1;
            let m = Ubig::from_limbs(m);
            prop_assume!(!m.is_one());
            let mont = Montgomery::new(&m).expect("odd modulus > 1");
            let (am, bm) = (mont.to_mont(&a), mont.to_mont(&b));
            prop_assert_eq!(mont.from_mont(&am), a.rem(&m));
            prop_assert_eq!(
                mont.from_mont(&mont.mul(&am, &bm)),
                a.modmul(&b, &m)
            );
        }
    }

    #[test]
    fn montgomery_rejects_even_or_trivial_moduli() {
        assert!(Montgomery::new(&Ubig::from(10u64)).is_none());
        assert!(Montgomery::new(&Ubig::zero()).is_none());
        assert!(Montgomery::new(&Ubig::one()).is_none());
        assert!(Montgomery::new(&Ubig::from(9u64)).is_some());
    }

    #[test]
    fn montgomery_one_is_multiplicative_identity() {
        let m = Ubig::from(1_000_003u64);
        let mont = Montgomery::new(&m).unwrap();
        let x = mont.to_mont(&Ubig::from(123_456u64));
        assert_eq!(mont.mul(&x, &mont.one()), x);
        assert_eq!(mont.from_mont(&mont.one()), Ubig::one());
    }

    #[test]
    fn windowed_pow_crosses_the_64_bit_exponent_boundary() {
        // Exponents straddling the window-path threshold agree with the
        // schoolbook oracle (fixed values, no proptest machinery).
        let base = big(0xDEAD_BEEF_CAFE);
        let m = big((1u128 << 89) - 1);
        for shift in [63u32, 64, 65, 120] {
            let exp = Ubig::one().shl_bits(shift).add_u64(0x1234);
            assert_eq!(
                base.modpow(&exp, &m),
                base.modpow_schoolbook(&exp, &m),
                "exponent 2^{shift}+0x1234"
            );
        }
    }
}
