//! Hex encoding for digests and fingerprints.

use crate::CryptoError;

/// Encodes bytes as lowercase hex.
pub fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        use std::fmt::Write as _;
        write!(s, "{b:02x}").expect("writing to a String cannot fail");
    }
    s
}

/// Decodes lowercase or uppercase hex.
pub fn from_hex(s: &str) -> Result<Vec<u8>, CryptoError> {
    if !s.len().is_multiple_of(2) {
        return Err(CryptoError::InvalidInput("odd-length hex string".into()));
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(s.len() / 2);
    let nibble = |c: u8| -> Result<u8, CryptoError> {
        match c {
            b'0'..=b'9' => Ok(c - b'0'),
            b'a'..=b'f' => Ok(c - b'a' + 10),
            b'A'..=b'F' => Ok(c - b'A' + 10),
            _ => Err(CryptoError::InvalidInput(format!(
                "invalid hex character {:?}",
                c as char
            ))),
        }
    };
    for pair in bytes.chunks_exact(2) {
        out.push((nibble(pair[0])? << 4) | nibble(pair[1])?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_values() {
        assert_eq!(to_hex(&[]), "");
        assert_eq!(to_hex(&[0x00, 0xff, 0x1a]), "00ff1a");
        assert_eq!(from_hex("00ff1a").unwrap(), vec![0x00, 0xff, 0x1a]);
        assert_eq!(from_hex("00FF1A").unwrap(), vec![0x00, 0xff, 0x1a]);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(from_hex("a").is_err());
        assert!(from_hex("zz").is_err());
    }

    proptest! {
        #[test]
        fn prop_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
            prop_assert_eq!(from_hex(&to_hex(&bytes)).unwrap(), bytes);
        }
    }
}
