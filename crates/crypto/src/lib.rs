//! Cryptographic substrate for the Paramecium certification service.
//!
//! The paper's certification service "uses a message digest function, public
//! key cryptography, and a trusted certification agent to validate
//! credentials" (section 3). None of the sanctioned offline dependencies
//! provide cryptography, so this crate implements the required primitives
//! from scratch:
//!
//! - [`sha256`](mod@sha256) — the SHA-256 message digest (FIPS 180-4),
//! - [`bignum`] — arbitrary-precision unsigned integers,
//! - [`prime`] — Miller–Rabin primality testing and prime generation,
//! - [`rsa`] — RSA key generation, signing and verification,
//! - [`keys`] — serialisable key material,
//! - [`encode`] — hex encoding helpers for fingerprints.
//!
//! **Scope note:** this is *architecturally* faithful, well-tested
//! cryptography, but it makes no constant-time or side-channel guarantees.
//! The reproduction's threat model is the paper's certification
//! architecture (who signed what), not hardware side channels.

pub mod bignum;
pub mod encode;
pub mod keys;
pub mod prime;
pub mod rsa;
pub mod sha256;

pub use bignum::{MontElem, Montgomery, Ubig};
pub use keys::{CrtParams, KeyPair, PrivateKey, PublicKey};
pub use sha256::{sha256, Sha256};

/// Errors produced by cryptographic operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CryptoError {
    /// A signature failed to verify.
    BadSignature,
    /// Key material could not be decoded.
    MalformedKey(String),
    /// An input was structurally invalid (wrong length, value too large…).
    InvalidInput(String),
}

impl std::fmt::Display for CryptoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CryptoError::BadSignature => write!(f, "signature verification failed"),
            CryptoError::MalformedKey(m) => write!(f, "malformed key: {m}"),
            CryptoError::InvalidInput(m) => write!(f, "invalid input: {m}"),
        }
    }
}

impl std::error::Error for CryptoError {}
