//! Primality testing and prime generation.
//!
//! Miller–Rabin with random bases, preceded by trial division against a
//! small-prime sieve so that most composite candidates are rejected cheaply
//! during key generation.
//!
//! Trial division uses single-limb remainders ([`Ubig::rem_u64`], no
//! allocation) and the Miller–Rabin loop builds one [`Montgomery`] context
//! per candidate: every witness exponentiation and every squaring in the
//! `x² ≡ ±1` chain then runs division-free in Montgomery form, which is
//! where key generation spends nearly all of its time.

use rand::Rng;

use crate::bignum::{Montgomery, Ubig};

/// Number of Miller–Rabin rounds. 2⁻⁶⁴ error probability is ample for a
/// simulation's certification keys.
const MR_ROUNDS: usize = 32;

/// Small primes used for trial division.
const SMALL_PRIMES: [u64; 54] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211, 223, 227, 229, 233, 239, 241, 251,
];

/// Draws a uniformly random value with exactly `bits` significant bits
/// (top bit set).
pub fn random_bits<R: Rng + ?Sized>(rng: &mut R, bits: u32) -> Ubig {
    assert!(bits > 0, "cannot draw a 0-bit number");
    let nlimbs = bits.div_ceil(64) as usize;
    let mut limbs: Vec<u64> = (0..nlimbs).map(|_| rng.gen()).collect();
    let top_bits = ((bits - 1) % 64) + 1;
    let top = &mut limbs[nlimbs - 1];
    if top_bits < 64 {
        *top &= (1u64 << top_bits) - 1;
    }
    *top |= 1u64 << (top_bits - 1);
    Ubig::from_limbs(limbs)
}

/// Draws a uniformly random value in `[low, high)` by rejection sampling.
pub fn random_below<R: Rng + ?Sized>(rng: &mut R, low: &Ubig, high: &Ubig) -> Ubig {
    assert!(low < high, "empty range");
    let span = high.sub(low);
    let bits = span.bit_len().max(1);
    loop {
        // Draw `bits` random bits without forcing the top bit.
        let nlimbs = bits.div_ceil(64) as usize;
        let mut limbs: Vec<u64> = (0..nlimbs).map(|_| rng.gen()).collect();
        let top_bits = ((bits - 1) % 64) + 1;
        if top_bits < 64 {
            limbs[nlimbs - 1] &= (1u64 << top_bits) - 1;
        }
        let v = Ubig::from_limbs(limbs);
        if v < span {
            return low.add(&v);
        }
    }
}

/// Miller–Rabin probable-prime test with `MR_ROUNDS` random bases.
pub fn is_probable_prime<R: Rng + ?Sized>(n: &Ubig, rng: &mut R) -> bool {
    if n < &Ubig::from(2u64) {
        return false;
    }
    for &p in &SMALL_PRIMES {
        if n.low_u64() == p && n.bit_len() <= 8 {
            return true;
        }
        if n.rem_u64(p) == 0 {
            return false;
        }
    }
    // Write n-1 = d · 2^r with d odd.
    let n_minus_1 = n.sub(&Ubig::one());
    let mut d = n_minus_1.clone();
    let mut r = 0u32;
    while d.is_even() {
        d = d.shr_bits(1);
        r += 1;
    }

    // Trial division leaves n odd and above every small prime, so a
    // Montgomery context always exists; share it across all rounds.
    let mont = Montgomery::new(n).expect("candidate is odd and > 1");
    let one_m = mont.one();
    let minus1_m = mont.to_mont(&n_minus_1);
    let two = Ubig::from(2u64);
    'witness: for _ in 0..MR_ROUNDS {
        let a = random_below(rng, &two, &n_minus_1);
        let mut x = mont.pow_elem(&mont.to_mont(&a), &d);
        if x == one_m || x == minus1_m {
            continue 'witness;
        }
        for _ in 0..r.saturating_sub(1) {
            x = mont.mul(&x, &x);
            if x == minus1_m {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generates a random probable prime with exactly `bits` bits.
pub fn gen_prime<R: Rng + ?Sized>(rng: &mut R, bits: u32) -> Ubig {
    assert!(bits >= 2, "primes need at least 2 bits");
    loop {
        let mut cand = random_bits(rng, bits);
        // Force odd.
        if cand.is_even() {
            cand = cand.add_u64(1);
            if cand.bit_len() != bits {
                continue;
            }
        }
        if is_probable_prime(&cand, rng) {
            return cand;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x5eed)
    }

    #[test]
    fn small_primes_are_prime() {
        let mut r = rng();
        for p in [2u64, 3, 5, 7, 97, 251, 257, 65537, 2147483647] {
            assert!(is_probable_prime(&Ubig::from(p), &mut r), "{p} is prime");
        }
    }

    #[test]
    fn small_composites_are_composite() {
        let mut r = rng();
        for c in [0u64, 1, 4, 6, 9, 15, 91, 561, 6601, 65536, 4294967295] {
            assert!(
                !is_probable_prime(&Ubig::from(c), &mut r),
                "{c} is composite"
            );
        }
    }

    #[test]
    fn carmichael_numbers_are_rejected() {
        // Fermat pseudoprimes that fool a^(n-1) tests but not Miller–Rabin.
        let mut r = rng();
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 41041, 825265] {
            assert!(!is_probable_prime(&Ubig::from(c), &mut r), "{c}");
        }
    }

    #[test]
    fn random_bits_has_exact_length() {
        let mut r = rng();
        for bits in [1u32, 2, 8, 63, 64, 65, 128, 200] {
            for _ in 0..10 {
                assert_eq!(random_bits(&mut r, bits).bit_len(), bits);
            }
        }
    }

    #[test]
    fn random_below_stays_in_range() {
        let mut r = rng();
        let low = Ubig::from(100u64);
        let high = Ubig::from(117u64);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let v = random_below(&mut r, &low, &high);
            assert!(v >= low && v < high);
            seen.insert(v.low_u64());
        }
        // With 200 draws over 17 values we should see good coverage.
        assert!(seen.len() >= 10, "poor coverage: {seen:?}");
    }

    #[test]
    fn gen_prime_produces_primes_of_requested_size() {
        let mut r = rng();
        for bits in [8u32, 16, 32, 64, 96] {
            let p = gen_prime(&mut r, bits);
            assert_eq!(p.bit_len(), bits);
            assert!(is_probable_prime(&p, &mut r));
        }
    }

    #[test]
    fn mersenne_prime_127() {
        // 2^127 - 1 is prime.
        let p = Ubig::one().shl_bits(127).sub(&Ubig::one());
        assert!(is_probable_prime(&p, &mut rng()));
        // 2^128 - 1 is not.
        let c = Ubig::one().shl_bits(128).sub(&Ubig::one());
        assert!(!is_probable_prime(&c, &mut rng()));
    }
}
