//! Serialisable RSA key material.
//!
//! Keys use a simple length-prefixed binary encoding (this system predates
//! and does not need ASN.1): magic byte, then each integer as a `u32`
//! length followed by big-endian bytes.

use crate::{bignum::Ubig, encode::to_hex, sha256::sha256, CryptoError};

/// Magic byte tagging an encoded public key.
const PUB_MAGIC: u8 = 0xA1;
/// Magic byte tagging an encoded private key.
const PRIV_MAGIC: u8 = 0xA2;

/// An RSA public key `(n, e)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PublicKey {
    /// Modulus.
    pub n: Ubig,
    /// Public exponent.
    pub e: Ubig,
}

/// Chinese-remainder-theorem precomputation for fast RSA signing.
///
/// Splitting `m^d mod n` into two half-size exponentiations mod `p` and
/// `q` and recombining (`Garner's formula`) costs roughly a quarter of the
/// full-width exponentiation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CrtParams {
    /// First prime factor of the modulus.
    pub p: Ubig,
    /// Second prime factor of the modulus.
    pub q: Ubig,
    /// `d mod (p-1)`.
    pub d_p: Ubig,
    /// `d mod (q-1)`.
    pub d_q: Ubig,
    /// `q⁻¹ mod p`.
    pub q_inv: Ubig,
}

/// An RSA private key `(n, d)` with optional CRT acceleration parameters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PrivateKey {
    /// Modulus.
    pub n: Ubig,
    /// Private exponent.
    pub d: Ubig,
    /// CRT precomputation (`None` for keys imported without factors; such
    /// keys sign via the plain full-width exponentiation).
    pub crt: Option<CrtParams>,
}

/// A public/private key pair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KeyPair {
    /// The public half, freely distributable.
    pub public: PublicKey,
    /// The private half.
    pub private: PrivateKey,
}

fn put_int(out: &mut Vec<u8>, v: &Ubig) {
    let bytes = v.to_bytes_be();
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(&bytes);
}

fn get_int(buf: &[u8], pos: &mut usize) -> Result<Ubig, CryptoError> {
    let err = || CryptoError::MalformedKey("truncated key encoding".into());
    let len_bytes = buf.get(*pos..*pos + 4).ok_or_else(err)?;
    *pos += 4;
    let len = u32::from_le_bytes(len_bytes.try_into().expect("4 bytes")) as usize;
    let bytes = buf.get(*pos..*pos + len).ok_or_else(err)?;
    *pos += len;
    Ok(Ubig::from_bytes_be(bytes))
}

impl PublicKey {
    /// Serialises to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = vec![PUB_MAGIC];
        put_int(&mut out, &self.n);
        put_int(&mut out, &self.e);
        out
    }

    /// Deserialises from bytes produced by [`PublicKey::to_bytes`].
    pub fn from_bytes(buf: &[u8]) -> Result<Self, CryptoError> {
        if buf.first() != Some(&PUB_MAGIC) {
            return Err(CryptoError::MalformedKey("bad public key magic".into()));
        }
        let mut pos = 1;
        let n = get_int(buf, &mut pos)?;
        let e = get_int(buf, &mut pos)?;
        if pos != buf.len() {
            return Err(CryptoError::MalformedKey("trailing bytes".into()));
        }
        if n.is_zero() || e.is_zero() {
            return Err(CryptoError::MalformedKey("zero modulus or exponent".into()));
        }
        Ok(PublicKey { n, e })
    }

    /// A short, stable fingerprint of the key (hex SHA-256 prefix), used to
    /// identify principals in certificates and audit logs.
    pub fn fingerprint(&self) -> String {
        to_hex(&sha256(&self.to_bytes())[..8])
    }

    /// Modulus size in whole bytes (the signature length).
    pub fn modulus_len(&self) -> usize {
        (self.n.bit_len() as usize).div_ceil(8)
    }
}

impl PrivateKey {
    /// Serialises to bytes. CRT parameters, when present, follow `n` and
    /// `d` behind a presence flag byte.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = vec![PRIV_MAGIC];
        put_int(&mut out, &self.n);
        put_int(&mut out, &self.d);
        match &self.crt {
            None => out.push(0),
            Some(crt) => {
                out.push(1);
                put_int(&mut out, &crt.p);
                put_int(&mut out, &crt.q);
                put_int(&mut out, &crt.d_p);
                put_int(&mut out, &crt.d_q);
                put_int(&mut out, &crt.q_inv);
            }
        }
        out
    }

    /// Deserialises from bytes produced by [`PrivateKey::to_bytes`]. Older
    /// encodings that end right after `d` (no CRT flag byte) are accepted
    /// and yield a key without CRT parameters.
    pub fn from_bytes(buf: &[u8]) -> Result<Self, CryptoError> {
        if buf.first() != Some(&PRIV_MAGIC) {
            return Err(CryptoError::MalformedKey("bad private key magic".into()));
        }
        let mut pos = 1;
        let n = get_int(buf, &mut pos)?;
        let d = get_int(buf, &mut pos)?;
        let crt = match buf.get(pos) {
            None => None,
            Some(0) => {
                pos += 1;
                None
            }
            Some(1) => {
                pos += 1;
                Some(CrtParams {
                    p: get_int(buf, &mut pos)?,
                    q: get_int(buf, &mut pos)?,
                    d_p: get_int(buf, &mut pos)?,
                    d_q: get_int(buf, &mut pos)?,
                    q_inv: get_int(buf, &mut pos)?,
                })
            }
            Some(_) => {
                return Err(CryptoError::MalformedKey("bad CRT flag byte".into()));
            }
        };
        if pos != buf.len() {
            return Err(CryptoError::MalformedKey("trailing bytes".into()));
        }
        Ok(PrivateKey { n, d, crt })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> PublicKey {
        PublicKey {
            n: Ubig::from(0xdeadbeefu64),
            e: Ubig::from(65537u64),
        }
    }

    #[test]
    fn public_key_roundtrip() {
        let k = key();
        assert_eq!(PublicKey::from_bytes(&k.to_bytes()).unwrap(), k);
    }

    #[test]
    fn private_key_roundtrip() {
        let k = PrivateKey {
            n: Ubig::from(12345u64),
            d: Ubig::from(678u64),
            crt: None,
        };
        assert_eq!(PrivateKey::from_bytes(&k.to_bytes()).unwrap(), k);
    }

    #[test]
    fn private_key_roundtrip_preserves_crt_params() {
        let k = PrivateKey {
            n: Ubig::from(3233u64),
            d: Ubig::from(413u64),
            crt: Some(CrtParams {
                p: Ubig::from(61u64),
                q: Ubig::from(53u64),
                d_p: Ubig::from(53u64),
                d_q: Ubig::from(49u64),
                q_inv: Ubig::from(38u64),
            }),
        };
        assert_eq!(PrivateKey::from_bytes(&k.to_bytes()).unwrap(), k);
    }

    #[test]
    fn pre_crt_private_key_encoding_still_decodes() {
        // An encoding that stops after d (the format before CRT params
        // existed) must decode to a key without CRT acceleration.
        let mut legacy = vec![PRIV_MAGIC];
        put_int(&mut legacy, &Ubig::from(12345u64));
        put_int(&mut legacy, &Ubig::from(678u64));
        let k = PrivateKey::from_bytes(&legacy).unwrap();
        assert_eq!(k.n, Ubig::from(12345u64));
        assert_eq!(k.crt, None);
    }

    #[test]
    fn bad_crt_flag_rejected() {
        let k = PrivateKey {
            n: Ubig::from(5u64),
            d: Ubig::from(3u64),
            crt: None,
        };
        let mut b = k.to_bytes();
        *b.last_mut().unwrap() = 7;
        assert!(PrivateKey::from_bytes(&b).is_err());
    }

    #[test]
    fn wrong_magic_rejected() {
        let k = key();
        let mut b = k.to_bytes();
        b[0] = PRIV_MAGIC;
        assert!(PublicKey::from_bytes(&b).is_err());
        assert!(PublicKey::from_bytes(&[]).is_err());
    }

    #[test]
    fn truncation_rejected() {
        let b = key().to_bytes();
        for cut in 0..b.len() {
            assert!(PublicKey::from_bytes(&b[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut b = key().to_bytes();
        b.push(0);
        assert!(PublicKey::from_bytes(&b).is_err());
    }

    #[test]
    fn fingerprints_differ_per_key() {
        let a = key();
        let b = PublicKey {
            n: Ubig::from(0xdeadbeeeu64),
            e: Ubig::from(65537u64),
        };
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint().len(), 16);
    }

    #[test]
    fn modulus_len_rounds_up() {
        assert_eq!(key().modulus_len(), 4);
        let k = PublicKey {
            n: Ubig::from(0x1ffu64),
            e: Ubig::from(3u64),
        };
        assert_eq!(k.modulus_len(), 2);
    }
}
