//! Serialisable RSA key material.
//!
//! Keys use a simple length-prefixed binary encoding (this system predates
//! and does not need ASN.1): magic byte, then each integer as a `u32`
//! length followed by big-endian bytes.

use crate::{bignum::Ubig, encode::to_hex, sha256::sha256, CryptoError};

/// Magic byte tagging an encoded public key.
const PUB_MAGIC: u8 = 0xA1;
/// Magic byte tagging an encoded private key.
const PRIV_MAGIC: u8 = 0xA2;

/// An RSA public key `(n, e)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PublicKey {
    /// Modulus.
    pub n: Ubig,
    /// Public exponent.
    pub e: Ubig,
}

/// An RSA private key `(n, d)` (CRT parameters omitted for simplicity).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PrivateKey {
    /// Modulus.
    pub n: Ubig,
    /// Private exponent.
    pub d: Ubig,
}

/// A public/private key pair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KeyPair {
    /// The public half, freely distributable.
    pub public: PublicKey,
    /// The private half.
    pub private: PrivateKey,
}

fn put_int(out: &mut Vec<u8>, v: &Ubig) {
    let bytes = v.to_bytes_be();
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(&bytes);
}

fn get_int(buf: &[u8], pos: &mut usize) -> Result<Ubig, CryptoError> {
    let err = || CryptoError::MalformedKey("truncated key encoding".into());
    let len_bytes = buf.get(*pos..*pos + 4).ok_or_else(err)?;
    *pos += 4;
    let len = u32::from_le_bytes(len_bytes.try_into().expect("4 bytes")) as usize;
    let bytes = buf.get(*pos..*pos + len).ok_or_else(err)?;
    *pos += len;
    Ok(Ubig::from_bytes_be(bytes))
}

impl PublicKey {
    /// Serialises to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = vec![PUB_MAGIC];
        put_int(&mut out, &self.n);
        put_int(&mut out, &self.e);
        out
    }

    /// Deserialises from bytes produced by [`PublicKey::to_bytes`].
    pub fn from_bytes(buf: &[u8]) -> Result<Self, CryptoError> {
        if buf.first() != Some(&PUB_MAGIC) {
            return Err(CryptoError::MalformedKey("bad public key magic".into()));
        }
        let mut pos = 1;
        let n = get_int(buf, &mut pos)?;
        let e = get_int(buf, &mut pos)?;
        if pos != buf.len() {
            return Err(CryptoError::MalformedKey("trailing bytes".into()));
        }
        if n.is_zero() || e.is_zero() {
            return Err(CryptoError::MalformedKey("zero modulus or exponent".into()));
        }
        Ok(PublicKey { n, e })
    }

    /// A short, stable fingerprint of the key (hex SHA-256 prefix), used to
    /// identify principals in certificates and audit logs.
    pub fn fingerprint(&self) -> String {
        to_hex(&sha256(&self.to_bytes())[..8])
    }

    /// Modulus size in whole bytes (the signature length).
    pub fn modulus_len(&self) -> usize {
        (self.n.bit_len() as usize).div_ceil(8)
    }
}

impl PrivateKey {
    /// Serialises to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = vec![PRIV_MAGIC];
        put_int(&mut out, &self.n);
        put_int(&mut out, &self.d);
        out
    }

    /// Deserialises from bytes produced by [`PrivateKey::to_bytes`].
    pub fn from_bytes(buf: &[u8]) -> Result<Self, CryptoError> {
        if buf.first() != Some(&PRIV_MAGIC) {
            return Err(CryptoError::MalformedKey("bad private key magic".into()));
        }
        let mut pos = 1;
        let n = get_int(buf, &mut pos)?;
        let d = get_int(buf, &mut pos)?;
        if pos != buf.len() {
            return Err(CryptoError::MalformedKey("trailing bytes".into()));
        }
        Ok(PrivateKey { n, d })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> PublicKey {
        PublicKey {
            n: Ubig::from(0xdeadbeefu64),
            e: Ubig::from(65537u64),
        }
    }

    #[test]
    fn public_key_roundtrip() {
        let k = key();
        assert_eq!(PublicKey::from_bytes(&k.to_bytes()).unwrap(), k);
    }

    #[test]
    fn private_key_roundtrip() {
        let k = PrivateKey {
            n: Ubig::from(12345u64),
            d: Ubig::from(678u64),
        };
        assert_eq!(PrivateKey::from_bytes(&k.to_bytes()).unwrap(), k);
    }

    #[test]
    fn wrong_magic_rejected() {
        let k = key();
        let mut b = k.to_bytes();
        b[0] = PRIV_MAGIC;
        assert!(PublicKey::from_bytes(&b).is_err());
        assert!(PublicKey::from_bytes(&[]).is_err());
    }

    #[test]
    fn truncation_rejected() {
        let b = key().to_bytes();
        for cut in 0..b.len() {
            assert!(PublicKey::from_bytes(&b[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut b = key().to_bytes();
        b.push(0);
        assert!(PublicKey::from_bytes(&b).is_err());
    }

    #[test]
    fn fingerprints_differ_per_key() {
        let a = key();
        let b = PublicKey {
            n: Ubig::from(0xdeadbeeeu64),
            e: Ubig::from(65537u64),
        };
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint().len(), 16);
    }

    #[test]
    fn modulus_len_rounds_up() {
        assert_eq!(key().modulus_len(), 4);
        let k = PublicKey {
            n: Ubig::from(0x1ffu64),
            e: Ubig::from(3u64),
        };
        assert_eq!(k.modulus_len(), 2);
    }
}
