//! Deterministic chaos engine: planned faults, applied on the virtual
//! clock, with an audit trail that replays bit-identically.
//!
//! The simulation's determinism contract — every run is a pure function
//! of its seeds — extends here to *failure*: a drill is a
//! [`ChaosPlan`], a seeded schedule of typed [`Fault`]s at virtual
//! times, and a [`ChaosController`] that applies each fault to live
//! objects through their ordinary interfaces when the machine clock
//! reaches it. Nothing about injection is probabilistic at application
//! time; all randomness is spent up front when the plan is built, so
//! the same `(seed, plan)` always produces the same fault sequence, the
//! same audit log and the same [`ChaosController::audit_digest`].
//!
//! # Plan format
//!
//! A plan is an ordered list of `(virtual time, fault)` pairs. Build
//! one explicitly with [`ChaosPlan::at`], or spread a fault list over a
//! window with seeded jitter via [`ChaosPlan::jittered`]. Faults name
//! their targets by the small integer handles returned from
//! [`ChaosController::register_link`] / [`register_router`], or by
//! machine device name ([`Fault::NicDown`], [`Fault::DiskLatency`]…).
//!
//! # Determinism contract
//!
//! - Plans are applied in `(time, insertion order)`; ties never
//!   reorder.
//! - [`ChaosController::poll`] applies every fault whose time has
//!   arrived. Drills call it from the same place they pump the network,
//!   so fault application interleaves identically across runs.
//! - The audit log records `(planned time, applied time, description)`
//!   per event and folds into an FNV-1a digest; two runs of the same
//!   drill must produce equal digests, and a different plan seed must
//!   not (see `tests/chaos_drills.rs`).
//! - An **unarmed** controller's `poll` is a handful of instructions
//!   and takes no locks — leaving chaos hooks wired into production
//!   pump loops is free (measured by the `b15_chaos` bench).
//!
//! # Writing a drill
//!
//! 1. Build the topology (links, routers, TCP endpoints, store stack).
//! 2. Register the chaos targets with a controller.
//! 3. Build a plan from the drill seed; [`ChaosController::arm`] it.
//! 4. Run the workload, calling `poll` every pump round.
//! 5. After the storm: heal, let recovery mechanisms converge, then
//!    assert — acked data intact, connections completed or failed with
//!    a clean [`error`](crate::netstack::tcp) reason, the recovered
//!    store equal to the oracle's committed prefix — and re-run the
//!    whole drill to compare digests.
//!
//! The recovery half lives next door: [`crate::store::retry`] absorbs
//! transient disk faults, dead-gateway detection in
//! [`crate::netstack::route`] steers around black holes, TCP user
//! timeouts abort partitioned connections cleanly, and [`Supervisor`]
//! turns a power failure into reboot + journal remount + stack rebuild.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::core::{domain::DomainId, memsvc::MemService, CoreResult};
use crate::machine::dev::disk::Disk;
use crate::machine::dev::nic::Nic;
use crate::machine::Machine;
use crate::obj::{ObjError, ObjRef, Value};
use crate::store::{JournalConfig, RetryConfig, StackBuilder, StoreStack};

/// One typed fault. Link and router targets are the handles returned
/// by the controller's `register_*` calls; devices are named.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Drop everything in both directions of a link (saves the link's
    /// pristine knobs for a later [`Fault::Heal`]).
    Partition { link: usize },
    /// Restore a link's saved pristine knobs.
    Heal { link: usize },
    /// Degrade one direction of a link (0 = first endpoint's transmit
    /// direction, 1 = the other), leaving delays untouched. Saves the
    /// pristine knobs like `Partition`.
    Impair {
        link: usize,
        dir: usize,
        drop_permille: i64,
        dup_permille: i64,
        reorder_permille: i64,
        corrupt_permille: i64,
    },
    /// Withdraw a route from a router's table at runtime.
    RouteDel {
        router: usize,
        prefix: u32,
        len: i64,
    },
    /// (Re-)install a route.
    RouteAdd {
        router: usize,
        prefix: u32,
        len: i64,
        ifindex: i64,
    },
    /// Take a machine NIC's link down: transmit blackholes, receive
    /// drops.
    NicDown { nic: String },
    /// Bring a NIC's link back up.
    NicUp { nic: String },
    /// Arm the next `count` disk sector operations to fail with a
    /// transient I/O error.
    DiskTransientErrors { disk: String, count: u64 },
    /// Charge `extra` additional cycles on each of the next `ops` disk
    /// sector operations (a latency spike window).
    DiskLatency { disk: String, extra: u64, ops: u64 },
    /// Arm a power failure `after_charges` charge events out. The
    /// machine refuses all charged work once it fires; pair with a
    /// [`Supervisor`] to reboot and recover.
    PowerCrash { after_charges: u64 },
}

impl Fault {
    /// Short audit-log rendering.
    fn describe(&self) -> String {
        match self {
            Fault::Partition { link } => format!("partition link{link}"),
            Fault::Heal { link } => format!("heal link{link}"),
            Fault::Impair {
                link,
                dir,
                drop_permille,
                dup_permille,
                reorder_permille,
                corrupt_permille,
            } => format!(
                "impair link{link} dir{dir} drop={drop_permille} dup={dup_permille} \
                 reorder={reorder_permille} corrupt={corrupt_permille}"
            ),
            Fault::RouteDel {
                router,
                prefix,
                len,
            } => format!("route-del router{router} {prefix:#010x}/{len}"),
            Fault::RouteAdd {
                router,
                prefix,
                len,
                ifindex,
            } => format!("route-add router{router} {prefix:#010x}/{len} if{ifindex}"),
            Fault::NicDown { nic } => format!("nic-down {nic}"),
            Fault::NicUp { nic } => format!("nic-up {nic}"),
            Fault::DiskTransientErrors { disk, count } => {
                format!("disk-transient {disk} count={count}")
            }
            Fault::DiskLatency { disk, extra, ops } => {
                format!("disk-latency {disk} extra={extra} ops={ops}")
            }
            Fault::PowerCrash { after_charges } => {
                format!("power-crash after={after_charges}")
            }
        }
    }
}

/// One scheduled fault.
#[derive(Clone, Debug)]
pub struct ChaosEvent {
    /// Virtual time (machine cycles) at which the fault applies.
    pub at: u64,
    /// What happens.
    pub fault: Fault,
}

/// A fault schedule. Events fire in `(time, insertion order)`.
#[derive(Clone, Debug, Default)]
pub struct ChaosPlan {
    events: Vec<ChaosEvent>,
}

impl ChaosPlan {
    /// An empty plan.
    pub fn new() -> ChaosPlan {
        ChaosPlan::default()
    }

    /// Schedules `fault` at virtual time `at`.
    pub fn at(mut self, at: u64, fault: Fault) -> ChaosPlan {
        self.events.push(ChaosEvent { at, fault });
        self
    }

    /// Spreads `faults` over `[start, start + window)` in order, with
    /// seeded jitter: fault `i` lands at `start + i * window / n` plus
    /// a random offset within its slot. All randomness is spent here —
    /// the resulting plan is a plain deterministic schedule.
    pub fn jittered(seed: u64, start: u64, window: u64, faults: Vec<Fault>) -> ChaosPlan {
        let n = faults.len().max(1) as u64;
        let slot = (window / n).max(1);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plan = ChaosPlan::new();
        for (i, fault) in faults.into_iter().enumerate() {
            let jitter = rng.gen_range(0..slot);
            plan = plan.at(start + i as u64 * slot + jitter, fault);
        }
        plan
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// FNV-1a over `bytes`, continuing from `h` (0 starts a fresh digest).
fn fnv(mut h: u64, bytes: &[u8]) -> u64 {
    if h == 0 {
        h = 0xcbf2_9ce4_8422_2325;
    }
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Applies an armed [`ChaosPlan`] to registered targets as the virtual
/// clock advances. See the [module docs](self) for the contract.
pub struct ChaosController {
    machine: Arc<Mutex<Machine>>,
    links: Vec<(ObjRef, ObjRef)>,
    routers: Vec<ObjRef>,
    /// Pristine knobs per partitioned/impaired link, for `Heal`.
    saved: HashMap<usize, (Vec<Value>, Vec<Value>)>,
    plan: Vec<ChaosEvent>,
    next: usize,
    audit: Vec<String>,
    digest: u64,
}

impl ChaosController {
    /// A controller bound to `machine`'s clock with no targets and no
    /// plan.
    pub fn new(machine: Arc<Mutex<Machine>>) -> ChaosController {
        ChaosController {
            machine,
            links: Vec::new(),
            routers: Vec::new(),
            saved: HashMap::new(),
            plan: Vec::new(),
            next: 0,
            audit: Vec::new(),
            digest: 0,
        }
    }

    /// Registers a simlink's two endpoints; returns the handle to name
    /// it in [`Fault`]s.
    pub fn register_link(&mut self, a: ObjRef, b: ObjRef) -> usize {
        self.links.push((a, b));
        self.links.len() - 1
    }

    /// Registers a router object; returns its handle.
    pub fn register_router(&mut self, r: ObjRef) -> usize {
        self.routers.push(r);
        self.routers.len() - 1
    }

    /// Arms `plan`, replacing any previous one (applied events keep
    /// their audit entries). Events are stably ordered by time.
    pub fn arm(&mut self, plan: ChaosPlan) {
        let mut events = plan.events;
        events.sort_by_key(|e| e.at);
        self.plan = events;
        self.next = 0;
    }

    /// Events armed but not yet applied.
    pub fn pending(&self) -> usize {
        self.plan.len() - self.next
    }

    /// Applies every armed fault whose time has arrived; returns how
    /// many fired. The unarmed/drained fast path takes no locks — this
    /// is the cost of leaving the hook in a pump loop.
    pub fn poll(&mut self) -> Result<usize, ObjError> {
        if self.next >= self.plan.len() {
            return Ok(0);
        }
        let now = self.machine.lock().now();
        let mut fired = 0;
        while self.next < self.plan.len() && self.plan[self.next].at <= now {
            let ev = self.plan[self.next].clone();
            self.next += 1;
            let desc = self.apply(&ev.fault)?;
            let entry = format!("t={now} plan={at} {desc}", at = ev.at);
            self.digest = fnv(self.digest, entry.as_bytes());
            self.audit.push(entry);
            fired += 1;
        }
        Ok(fired)
    }

    /// The audit log: one line per applied fault, in application order.
    pub fn audit(&self) -> &[String] {
        &self.audit
    }

    /// FNV-1a digest of the audit log — the drill's replay fingerprint.
    pub fn audit_digest(&self) -> u64 {
        self.digest
    }

    fn link(&self, idx: usize) -> Result<&(ObjRef, ObjRef), ObjError> {
        self.links
            .get(idx)
            .ok_or_else(|| ObjError::failed(format!("no registered link {idx}")))
    }

    fn router(&self, idx: usize) -> Result<&ObjRef, ObjError> {
        self.routers
            .get(idx)
            .ok_or_else(|| ObjError::failed(format!("no registered router {idx}")))
    }

    /// Saves a link's pristine knobs the first time a fault touches it.
    fn save_link(&mut self, idx: usize) -> Result<(), ObjError> {
        if self.saved.contains_key(&idx) {
            return Ok(());
        }
        let (a, b) = self.link(idx)?.clone();
        let ka = knobs(&a)?;
        let kb = knobs(&b)?;
        self.saved.insert(idx, (ka, kb));
        Ok(())
    }

    fn apply(&mut self, fault: &Fault) -> Result<String, ObjError> {
        match fault {
            Fault::Partition { link } => {
                self.save_link(*link)?;
                let (a, b) = self.link(*link)?.clone();
                for end in [&a, &b] {
                    let mut k = knobs(end)?;
                    k[0] = Value::Int(1000);
                    k[1] = Value::Int(0);
                    k[2] = Value::Int(0);
                    k[3] = Value::Int(0);
                    set_knobs(end, k)?;
                }
            }
            Fault::Heal { link } => {
                let Some((ka, kb)) = self.saved.remove(link) else {
                    return Ok(format!("heal link{link} (nothing saved)"));
                };
                let (a, b) = self.link(*link)?.clone();
                set_knobs(&a, ka)?;
                set_knobs(&b, kb)?;
            }
            Fault::Impair {
                link,
                dir,
                drop_permille,
                dup_permille,
                reorder_permille,
                corrupt_permille,
            } => {
                self.save_link(*link)?;
                let (a, b) = self.link(*link)?.clone();
                let end = match dir {
                    0 => &a,
                    1 => &b,
                    _ => return Err(ObjError::failed("link direction must be 0 or 1")),
                };
                let mut k = knobs(end)?;
                k[0] = Value::Int(*drop_permille);
                k[1] = Value::Int(*dup_permille);
                k[2] = Value::Int(*reorder_permille);
                k[3] = Value::Int(*corrupt_permille);
                set_knobs(end, k)?;
            }
            Fault::RouteDel {
                router,
                prefix,
                len,
            } => {
                self.router(*router)?.invoke(
                    "route",
                    "del_route",
                    &[Value::Int(i64::from(*prefix)), Value::Int(*len)],
                )?;
            }
            Fault::RouteAdd {
                router,
                prefix,
                len,
                ifindex,
            } => {
                self.router(*router)?.invoke(
                    "route",
                    "add_route",
                    &[
                        Value::Int(i64::from(*prefix)),
                        Value::Int(*len),
                        Value::Int(*ifindex),
                    ],
                )?;
            }
            Fault::NicDown { nic } => self.set_nic(nic, false)?,
            Fault::NicUp { nic } => self.set_nic(nic, true)?,
            Fault::DiskTransientErrors { disk, count } => {
                let mut m = self.machine.lock();
                let d = m
                    .device_mut::<Disk>(disk)
                    .ok_or_else(|| ObjError::failed(format!("no disk device {disk:?}")))?;
                d.inject_transient_errors(*count);
            }
            Fault::DiskLatency { disk, extra, ops } => {
                let mut m = self.machine.lock();
                let d = m
                    .device_mut::<Disk>(disk)
                    .ok_or_else(|| ObjError::failed(format!("no disk device {disk:?}")))?;
                d.inject_latency(*extra, *ops);
            }
            Fault::PowerCrash { after_charges } => {
                self.machine.lock().arm_crash_after(*after_charges);
            }
        }
        Ok(fault.describe())
    }

    fn set_nic(&self, name: &str, up: bool) -> Result<(), ObjError> {
        let mut m = self.machine.lock();
        let nic = m
            .device_mut::<Nic>(name)
            .ok_or_else(|| ObjError::failed(format!("no nic device {name:?}")))?;
        nic.set_link_up(up);
        Ok(())
    }
}

fn knobs(end: &ObjRef) -> Result<Vec<Value>, ObjError> {
    Ok(end.invoke("link", "config", &[])?.as_list()?.to_vec())
}

fn set_knobs(end: &ObjRef, knobs: Vec<Value>) -> Result<(), ObjError> {
    end.invoke("link", "set_config", &[Value::List(knobs)])?;
    Ok(())
}

/// Reboot-and-recover policy for the store half of a drill: when the
/// machine has crashed, clear the disk's injected fault windows (the
/// power cycle resets the controller), reboot the machine, and rebuild
/// the store stack — the journal remount replays every committed
/// transaction, so the recovered store exposes exactly the committed
/// prefix.
pub struct Supervisor {
    mem: Arc<MemService>,
    domain: DomainId,
    retry: RetryConfig,
    journal: JournalConfig,
    cache: Option<(usize, usize)>,
    reboots: u64,
}

impl Supervisor {
    /// A supervisor that rebuilds `driver → retry → journal` stacks for
    /// `domain` on the machine behind `mem`.
    pub fn new(
        mem: &Arc<MemService>,
        domain: DomainId,
        retry: RetryConfig,
        journal: JournalConfig,
    ) -> Supervisor {
        Supervisor {
            mem: mem.clone(),
            domain,
            retry,
            journal,
            cache: None,
            reboots: 0,
        }
    }

    /// Also rebuild a sharded cache on top after recovery.
    pub fn with_cache(mut self, capacity: usize, shards: usize) -> Supervisor {
        self.cache = Some((capacity, shards));
        self
    }

    /// If the machine is down, bring it back: clear disk fault windows,
    /// clear the crash, rebuild (and journal-recover) the store stack.
    /// Returns the fresh stack, or `None` when the machine was healthy.
    pub fn ensure_up(&mut self) -> CoreResult<Option<StoreStack>> {
        let machine = self.mem.machine().clone();
        {
            let mut m = machine.lock();
            if !m.crashed() {
                return Ok(None);
            }
            if let Some(d) = m.device_mut::<Disk>("disk") {
                d.clear_faults();
            }
            m.reboot();
        }
        let mut builder = StackBuilder::disk(&self.mem, self.domain)
            .retry(self.retry)
            .journal(self.journal);
        if let Some((capacity, shards)) = self.cache {
            builder = builder.sharded_cache(capacity, shards);
        }
        let stack = builder.build()?;
        self.reboots += 1;
        Ok(Some(stack))
    }

    /// How many times `ensure_up` actually rebooted.
    pub fn reboots(&self) -> u64 {
        self.reboots
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::domain::KERNEL_DOMAIN;
    use crate::netstack::simlink::{make_simlink, LinkConfig};
    use bytes::Bytes;

    fn machine() -> Arc<Mutex<Machine>> {
        Arc::new(Mutex::new(Machine::new()))
    }

    fn send(end: &ObjRef, payload: &[u8]) {
        end.invoke(
            "netdev",
            "send",
            &[Value::Bytes(Bytes::copy_from_slice(payload))],
        )
        .unwrap();
    }

    fn recv_all(end: &ObjRef) -> usize {
        let mut n = 0;
        loop {
            let f = end.invoke("netdev", "recv", &[]).unwrap();
            if f.as_bytes().unwrap().is_empty() {
                return n;
            }
            n += 1;
        }
    }

    #[test]
    fn events_fire_at_their_virtual_times_in_order() {
        let m = machine();
        let (a, b) = make_simlink(m.clone(), LinkConfig::perfect(1));
        let mut ctl = ChaosController::new(m.clone());
        let link = ctl.register_link(a.clone(), b.clone());
        ctl.arm(
            ChaosPlan::new()
                .at(500, Fault::Heal { link })
                .at(100, Fault::Partition { link }),
        );
        assert_eq!(ctl.poll().unwrap(), 0, "nothing due at t=0");
        m.lock().tick(100);
        assert_eq!(ctl.poll().unwrap(), 1, "partition fires at t=100");
        send(&a, b"during-partition");
        m.lock().tick(100);
        assert_eq!(recv_all(&b), 0, "partitioned link drops");
        m.lock().tick(300);
        assert_eq!(ctl.poll().unwrap(), 1, "heal fires at t=500");
        send(&a, b"after-heal");
        m.lock().tick(100);
        assert_eq!(recv_all(&b), 1, "healed link delivers");
        assert_eq!(ctl.pending(), 0);
        assert_eq!(ctl.audit().len(), 2);
        assert!(ctl.audit()[0].contains("partition link0"));
    }

    #[test]
    fn unarmed_poll_is_a_noop_and_audit_replays_identically() {
        let run = || {
            let m = machine();
            let (a, b) = make_simlink(m.clone(), LinkConfig::perfect(1));
            let mut ctl = ChaosController::new(m.clone());
            let link = ctl.register_link(a, b);
            assert_eq!(ctl.poll().unwrap(), 0);
            ctl.arm(ChaosPlan::jittered(
                42,
                1_000,
                10_000,
                vec![
                    Fault::Partition { link },
                    Fault::Heal { link },
                    Fault::PowerCrash { after_charges: 100 },
                ],
            ));
            for _ in 0..12 {
                m.lock().tick(1_000);
                ctl.poll().unwrap();
            }
            (ctl.audit().to_vec(), ctl.audit_digest())
        };
        let (audit1, d1) = run();
        let (audit2, d2) = run();
        assert_eq!(audit1, audit2, "same plan, same application trace");
        assert_eq!(d1, d2);
        assert_eq!(audit1.len(), 3, "every event applied");
    }

    #[test]
    fn nic_blackout_applier_flips_the_device() {
        let m = machine();
        let mut ctl = ChaosController::new(m.clone());
        ctl.arm(
            ChaosPlan::new()
                .at(10, Fault::NicDown { nic: "nic".into() })
                .at(20, Fault::NicUp { nic: "nic".into() }),
        );
        m.lock().tick(10);
        ctl.poll().unwrap();
        assert!(!m.lock().device_mut::<Nic>("nic").unwrap().link_up());
        m.lock().tick(10);
        ctl.poll().unwrap();
        assert!(m.lock().device_mut::<Nic>("nic").unwrap().link_up());
    }

    #[test]
    fn disk_fault_windows_arm_through_the_controller() {
        let m = machine();
        let mut ctl = ChaosController::new(m.clone());
        ctl.arm(ChaosPlan::new().at(
            1,
            Fault::DiskTransientErrors {
                disk: "disk".into(),
                count: 2,
            },
        ));
        m.lock().tick(1);
        ctl.poll().unwrap();
        let mut mm = m.lock();
        let d = mm.device_mut::<Disk>("disk").unwrap();
        assert!(d.read_sector(0).is_err(), "first op fails transiently");
        assert!(d.read_sector(0).is_err(), "second op fails transiently");
        assert!(d.read_sector(0).is_ok(), "window exhausted");
    }

    #[test]
    fn supervisor_reboots_and_remounts_after_power_loss() {
        let mem = Arc::new(MemService::new(machine()));
        let machine = mem.machine().clone();
        let stack = StackBuilder::disk(&mem, KERNEL_DOMAIN)
            .retry(RetryConfig::default())
            .journal(JournalConfig::default())
            .build()
            .unwrap();
        let data = Value::Bytes(Bytes::from(vec![0xEE; 512]));
        stack
            .top
            .invoke("blockdev", "write", &[Value::Int(3), data])
            .unwrap();
        // Power fails mid-flight; the machine is down and subsequent
        // charged work errors out.
        machine.lock().arm_crash_after(1);
        let _ = stack.driver.invoke("blockdev", "read", &[Value::Int(0)]);
        assert!(machine.lock().crashed());
        assert!(stack.top.invoke("blockdev", "flush", &[]).is_err());
        let mut sup = Supervisor::new(
            &mem,
            KERNEL_DOMAIN,
            RetryConfig::default(),
            JournalConfig::default(),
        );
        let recovered = sup.ensure_up().unwrap().expect("machine was down");
        assert_eq!(sup.reboots(), 1);
        // The journaled write survived the crash and the remount.
        let v = recovered
            .top
            .invoke("blockdev", "read", &[Value::Int(3)])
            .unwrap();
        assert_eq!(v.as_bytes().unwrap()[0], 0xEE);
        // Healthy machine: ensure_up is a no-op.
        assert!(sup.ensure_up().unwrap().is_none());
        assert_eq!(sup.reboots(), 1);
    }
}
