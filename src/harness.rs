//! A ready-made world for examples, tests and benchmarks.
//!
//! Booting Paramecium for an experiment always needs the same cast: a
//! machine, a nucleus trusting some root key, and a certification policy
//! with the standard subordinates (compiler → prover → administrator).
//! [`World`] assembles them with deterministic keys.

use std::sync::Arc;

use rand::{rngs::StdRng, SeedableRng};

use crate::cert::{
    AdminCertifier, Authority, CertificationPolicy, CompilerCertifier, ProverCertifier, Right,
};
use crate::core::{CoreError, CoreResult, Nucleus};
use crate::machine::{CostModel, Machine};

/// RSA modulus size used by harness keys. 512 bits keeps debug-mode test
/// runs fast; the crypto benches measure 1024 separately.
pub const HARNESS_KEY_BITS: u32 = 512;

/// A booted Paramecium world.
pub struct World {
    /// The nucleus (owns the machine).
    pub nucleus: Arc<Nucleus>,
    /// The root certification authority (kernel trusts its public key).
    pub root: Authority,
    /// The standard ordered subordinate policy.
    pub policy: CertificationPolicy,
}

impl World {
    /// Boots with the default cost model.
    pub fn boot() -> World {
        Self::boot_with_cost(CostModel::default())
    }

    /// Boots with an explicit cost model (ablations).
    pub fn boot_with_cost(cost: CostModel) -> World {
        let machine = Arc::new(parking_lot::Mutex::new(Machine::with_config(
            cost,
            paramecium_machine::machine::DEFAULT_FRAMES,
            paramecium_machine::machine::DEFAULT_TLB_ENTRIES,
        )));
        let mut rng = StdRng::seed_from_u64(0x50AE_C1A0);
        let root = Authority::new("root-ca", &mut rng, HARNESS_KEY_BITS);
        let nucleus =
            Nucleus::boot_on(machine, root.public().clone()).expect("nucleus boot cannot fail");
        let policy = CertificationPolicy::standard(
            &root,
            CompilerCertifier::new(Authority::new("m3-compiler", &mut rng, HARNESS_KEY_BITS)),
            ProverCertifier::new(
                Authority::new("object-prover", &mut rng, HARNESS_KEY_BITS),
                50_000,
            ),
            AdminCertifier::new(
                Authority::new("sysadmin", &mut rng, HARNESS_KEY_BITS),
                &[],
            ),
            vec![
                Right::RunUser,
                Right::RunKernel,
                Right::DeviceAccess,
                Right::InterposeShared,
            ],
        )
        .expect("standard policy construction cannot fail");
        World {
            nucleus,
            root,
            policy,
        }
    }

    /// Runs the certification policy (with escape hatch) on a repository
    /// component and installs the resulting certificate in the nucleus.
    /// Returns the index of the subordinate that signed.
    pub fn certify(&self, component: &str, rights: &[Right]) -> CoreResult<usize> {
        let image = self.nucleus.repository.image_of(component)?;
        let outcome = self
            .policy
            .certify(component, &image, rights)
            .map_err(CoreError::Cert)?;
        let signer = outcome.signer_index;
        self.nucleus.certsvc.install(outcome.certificate, outcome.chain);
        Ok(signer)
    }

    /// Root-signs a component directly (bypassing the subordinates) — the
    /// "the authority itself hand-checked this" path used to certify the
    /// trusted native toolbox.
    pub fn certify_by_root(&self, component: &str, rights: &[Right]) -> CoreResult<()> {
        let image = self.nucleus.repository.image_of(component)?;
        let cert = self
            .root
            .certify(
                component,
                &image,
                rights.to_vec(),
                crate::cert::CertifyMethod::Administrator,
            )
            .map_err(CoreError::Cert)?;
        self.nucleus.certsvc.install(cert, vec![]);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::LoadOptions;
    use crate::sfi::workloads;

    #[test]
    fn world_boots_and_certifies() {
        let world = World::boot();
        world
            .nucleus
            .repository
            .add_bytecode("good", &workloads::checksum_loop_verified(64, 1));
        // The compiler (index 0) signs verifiable code.
        assert_eq!(world.certify("good", &[Right::RunKernel]).unwrap(), 0);
        let report = world
            .nucleus
            .load("good", &LoadOptions::kernel("/kernel/good"))
            .unwrap();
        assert_eq!(report.protection, crate::core::Protection::CertifiedNative);
    }

    #[test]
    fn root_certification_covers_native_components() {
        let world = World::boot();
        world.nucleus.repository.add_native(
            "svc",
            "1.0",
            Arc::new(|| Ok(crate::obj::ObjectBuilder::new("svc").build())),
        );
        world.certify_by_root("svc", &[Right::RunKernel]).unwrap();
        let report = world
            .nucleus
            .load("svc", &LoadOptions::kernel("/kernel/svc"))
            .unwrap();
        assert_eq!(report.protection, crate::core::Protection::CertifiedNative);
    }

    #[test]
    fn uncertifiable_component_exhausts_policy() {
        let world = World::boot();
        world
            .nucleus
            .repository
            .add_bytecode("wild", &workloads::wild_writer());
        assert!(world.certify("wild", &[Right::RunKernel]).is_err());
    }
}
