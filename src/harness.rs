//! A ready-made world for examples, tests and benchmarks.
//!
//! Booting Paramecium for an experiment always needs the same cast: a
//! machine, a nucleus trusting some root key, and a certification policy
//! with the standard subordinates (compiler → prover → administrator).
//! [`World`] assembles them with deterministic keys.
//!
//! The four 512-bit RSA authorities are generated **once per process**
//! (they are deterministic, so every boot would produce the same keys
//! anyway) and shared by all [`World::boot`] calls; key generation used to
//! dominate every test binary's wall clock. Tests that need key material
//! distinct from the shared set boot via
//! [`World::boot_with_fresh_keys`].

use std::sync::{Arc, OnceLock};

use rand::{rngs::StdRng, SeedableRng};

use crate::cert::{
    AdminCertifier, Authority, CertificationPolicy, CompilerCertifier, ProverCertifier, Right,
};
use crate::core::{CoreError, CoreResult, Nucleus};
use crate::machine::{CostModel, Machine};

/// RSA modulus size used by harness keys. 512 bits keeps debug-mode test
/// runs fast; the crypto benches measure 1024 separately.
pub const HARNESS_KEY_BITS: u32 = 512;

/// A booted Paramecium world.
pub struct World {
    /// The nucleus (owns the machine).
    pub nucleus: Arc<Nucleus>,
    /// The root certification authority (kernel trusts its public key).
    pub root: Authority,
    /// The standard ordered subordinate policy.
    pub policy: CertificationPolicy,
}

/// The standard authority cast: root plus the three subordinates.
struct HarnessAuthorities {
    root: Authority,
    compiler: Authority,
    prover: Authority,
    admin: Authority,
}

impl HarnessAuthorities {
    /// Generates the four authorities from a seed (deterministic: the same
    /// seed always yields the same keys, matching the pre-sharing
    /// behaviour of `World::boot`).
    fn generate(seed: u64) -> HarnessAuthorities {
        let mut rng = StdRng::seed_from_u64(seed);
        HarnessAuthorities {
            root: Authority::new("root-ca", &mut rng, HARNESS_KEY_BITS),
            compiler: Authority::new("m3-compiler", &mut rng, HARNESS_KEY_BITS),
            prover: Authority::new("object-prover", &mut rng, HARNESS_KEY_BITS),
            admin: Authority::new("sysadmin", &mut rng, HARNESS_KEY_BITS),
        }
    }

    /// The process-wide shared set every plain `boot` uses.
    fn shared() -> &'static HarnessAuthorities {
        static SHARED: OnceLock<HarnessAuthorities> = OnceLock::new();
        SHARED.get_or_init(|| HarnessAuthorities::generate(HARNESS_KEY_SEED))
    }
}

/// Seed of the shared harness authority keys.
const HARNESS_KEY_SEED: u64 = 0x50AE_C1A0;

impl World {
    /// Boots with the default cost model.
    pub fn boot() -> World {
        Self::boot_with_cost(CostModel::default())
    }

    /// Boots with an explicit cost model (ablations).
    pub fn boot_with_cost(cost: CostModel) -> World {
        Self::assemble(cost, HarnessAuthorities::shared())
    }

    /// Boots with authority keys generated from `seed` instead of the
    /// shared process-wide set — the escape hatch for tests that need key
    /// material isolated from (or distinct from) every other boot. Any
    /// seed other than `0x50AE_C1A0` yields keys distinct from the shared
    /// set.
    pub fn boot_with_fresh_keys(seed: u64) -> World {
        Self::assemble(CostModel::default(), &HarnessAuthorities::generate(seed))
    }

    fn assemble(cost: CostModel, auth: &HarnessAuthorities) -> World {
        let machine = Arc::new(parking_lot::Mutex::new(Machine::with_config(
            cost,
            paramecium_machine::machine::DEFAULT_FRAMES,
            paramecium_machine::machine::DEFAULT_TLB_ENTRIES,
        )));
        let root = auth.root.clone();
        let nucleus =
            Nucleus::boot_on(machine, root.public().clone()).expect("nucleus boot cannot fail");
        let policy = CertificationPolicy::standard(
            &root,
            CompilerCertifier::new(auth.compiler.clone()),
            ProverCertifier::new(auth.prover.clone(), 50_000),
            AdminCertifier::new(auth.admin.clone(), &[]),
            vec![
                Right::RunUser,
                Right::RunKernel,
                Right::DeviceAccess,
                Right::InterposeShared,
            ],
        )
        .expect("standard policy construction cannot fail");
        World {
            nucleus,
            root,
            policy,
        }
    }

    /// Runs the certification policy (with escape hatch) on a repository
    /// component and installs the resulting certificate in the nucleus.
    /// Returns the index of the subordinate that signed.
    pub fn certify(&self, component: &str, rights: &[Right]) -> CoreResult<usize> {
        let image = self.nucleus.repository.image_of(component)?;
        let outcome = self
            .policy
            .certify(component, &image, rights)
            .map_err(CoreError::Cert)?;
        let signer = outcome.signer_index;
        self.nucleus
            .certsvc
            .install(outcome.certificate, outcome.chain);
        Ok(signer)
    }

    /// Root-signs a component directly (bypassing the subordinates) — the
    /// "the authority itself hand-checked this" path used to certify the
    /// trusted native toolbox.
    pub fn certify_by_root(&self, component: &str, rights: &[Right]) -> CoreResult<()> {
        let image = self.nucleus.repository.image_of(component)?;
        let cert = self
            .root
            .certify(
                component,
                &image,
                rights.to_vec(),
                crate::cert::CertifyMethod::Administrator,
            )
            .map_err(CoreError::Cert)?;
        self.nucleus.certsvc.install(cert, vec![]);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::LoadOptions;
    use crate::sfi::workloads;

    /// The world pool ships entire booted worlds to worker OS threads
    /// every round. Pin the `Send` bounds here (compile-time) and prove
    /// the dynamic story too: a world booted on one thread keeps working
    /// on another.
    #[test]
    fn worlds_move_between_os_threads() {
        fn assert_send<T: Send>() {}
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send::<World>();
        assert_send_sync::<Nucleus>();
        assert_send_sync::<CertificationPolicy>();

        let world = World::boot();
        let cycles = std::thread::spawn(move || {
            world.nucleus.poll(25);
            world.nucleus.machine().lock().now()
        })
        .join()
        .expect("world works after crossing a thread boundary");
        assert!(cycles >= 25);
    }

    #[test]
    fn world_boots_and_certifies() {
        let world = World::boot();
        world
            .nucleus
            .repository
            .add_bytecode("good", &workloads::checksum_loop_verified(64, 1));
        // The compiler (index 0) signs verifiable code.
        assert_eq!(world.certify("good", &[Right::RunKernel]).unwrap(), 0);
        let report = world
            .nucleus
            .load("good", &LoadOptions::kernel("/kernel/good"))
            .unwrap();
        assert_eq!(report.protection, crate::core::Protection::CertifiedNative);
    }

    #[test]
    fn root_certification_covers_native_components() {
        let world = World::boot();
        world.nucleus.repository.add_native(
            "svc",
            "1.0",
            Arc::new(|| Ok(crate::obj::ObjectBuilder::new("svc").build())),
        );
        world.certify_by_root("svc", &[Right::RunKernel]).unwrap();
        let report = world
            .nucleus
            .load("svc", &LoadOptions::kernel("/kernel/svc"))
            .unwrap();
        assert_eq!(report.protection, crate::core::Protection::CertifiedNative);
    }

    #[test]
    fn shared_keys_are_reused_across_boots_and_fresh_keys_differ() {
        let a = World::boot();
        let b = World::boot();
        // Same shared authority set: byte-identical public keys.
        assert_eq!(a.root.public(), b.root.public());
        // The escape hatch mints a distinct key universe per seed…
        let fresh = World::boot_with_fresh_keys(42);
        assert_ne!(fresh.root.public(), a.root.public());
        // …whose certificates the shared-key nucleus must reject.
        let bytecode = workloads::checksum_loop_verified(64, 1);
        fresh.nucleus.repository.add_bytecode("good", &bytecode);
        a.nucleus.repository.add_bytecode("good", &bytecode);
        fresh.certify("good", &[Right::RunKernel]).unwrap();
        let image = fresh.nucleus.repository.image_of("good").unwrap();
        let outcome = fresh
            .policy
            .certify("good", &image, &[Right::RunKernel])
            .unwrap();
        a.nucleus
            .certsvc
            .install(outcome.certificate, outcome.chain);
        // The foreign-rooted certificate must not unlock the zero-check
        // native path; the loader demotes the component to a sandboxed run.
        let report = a
            .nucleus
            .load("good", &LoadOptions::kernel("/kernel/good"))
            .unwrap();
        assert_ne!(report.protection, crate::core::Protection::CertifiedNative);
    }

    #[test]
    fn uncertifiable_component_exhausts_policy() {
        let world = World::boot();
        world
            .nucleus
            .repository
            .add_bytecode("wild", &workloads::wild_writer());
        assert!(world.certify("wild", &[Right::RunKernel]).is_err());
    }
}
