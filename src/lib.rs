//! # Paramecium
//!
//! A reproduction of **"Paramecium: an extensible object-based kernel"**
//! (van Doorn, Homburg, Tanenbaum — HotOS-V, 1995) as a deterministic
//! user-mode simulation in Rust.
//!
//! Paramecium is a kernel whose contents are *negotiable*: a minimal
//! nucleus provides processor events, memory management, an object name
//! space, and certificate validation; everything else — thread packages,
//! drivers, protocol stacks, application components — lives in a toolbox
//! and is placed in the kernel or a user protection domain *by the user*,
//! with a certification authority (and its delegated subordinates)
//! deciding what is trustworthy enough for the kernel domain.
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | [`obj`] | Object model: named interfaces, delegation, composition, interposers |
//! | [`machine`] | Simulated SPARC-like hardware: MMU contexts, TLB, traps, IRQs, devices, cycle costs |
//! | [`crypto`] | From-scratch SHA-256, bignum, Miller–Rabin, RSA |
//! | [`sfi`] | Component bytecode + the software-protection baselines (SFI, load-time verifier) |
//! | [`cert`] | Certificates, authority, delegation chains, certifier subordinates, escape hatch |
//! | [`core`] | **The nucleus**: domains, the four services, proxies, repository, loader |
//! | [`threads`] | Thread package with pop-up threads and the proto-thread fast path |
//! | [`netstack`] | NIC driver object, UDP/IP stack, packet filters, interposing monitor |
//!
//! ## Quick start
//!
//! ```
//! use paramecium::harness::World;
//! use paramecium::core::{domain::KERNEL_DOMAIN, LoadOptions};
//! use paramecium::cert::Right;
//! use paramecium::obj::Value;
//!
//! // Boot a world: machine + nucleus + certification authority.
//! let world = World::boot();
//!
//! // Put a downloadable component in the repository and certify it.
//! let program = paramecium::sfi::workloads::checksum_loop_verified(64, 1);
//! world.nucleus.repository.add_bytecode("csum", &program);
//! world.certify("csum", &[Right::RunKernel]).unwrap();
//!
//! // The user asks for kernel placement; certification permits it.
//! let report = world
//!     .nucleus
//!     .load("csum", &LoadOptions::kernel("/kernel/csum"))
//!     .unwrap();
//! assert_eq!(report.protection, paramecium::core::Protection::CertifiedNative);
//!
//! // Bind and invoke it like any object.
//! let obj = world.nucleus.bind(KERNEL_DOMAIN, "/kernel/csum").unwrap();
//! let sum = obj
//!     .invoke("component", "run",
//!             &[Value::Bytes(bytes::Bytes::from(vec![1u8; 64])), Value::Int(0)])
//!     .unwrap();
//! assert_eq!(sum, Value::Int(64));
//! ```

pub use paramecium_cert as cert;
pub use paramecium_core as core;
pub use paramecium_crypto as crypto;
pub use paramecium_machine as machine;
pub use paramecium_netstack as netstack;
pub use paramecium_obj as obj;
pub use paramecium_sfi as sfi;
pub use paramecium_store as store;
pub use paramecium_threads as threads;

pub mod chaos;
pub mod harness;
pub mod pool;

/// Commonly used items, for `use paramecium::prelude::*`.
pub mod prelude {
    pub use crate::cert::{Certifier, CertifyOutcome, Right};
    pub use crate::chaos::{ChaosController, ChaosPlan, Fault, Supervisor};
    pub use crate::core::{
        domain::{DomainId, KERNEL_DOMAIN},
        LoadOptions, Nucleus, Placement, Protection,
    };
    pub use crate::harness::World;
    pub use crate::machine::{CostModel, Machine};
    pub use crate::obj::{
        CompositionBuilder, InterfaceBuilder, InterposerBuilder, ObjRef, ObjectBuilder, TypeTag,
        Value,
    };
    pub use crate::pool::{PoolRunReport, PoolWorld, WorldPool};
    pub use crate::threads::{PopupEngine, PopupMode, Scheduler, Step};
}
