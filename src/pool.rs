//! The world pool: many independent worlds on real OS threads.
//!
//! The simulation inside one [`World`] is deliberately single-threaded
//! and deterministic. The pool scales *out* instead of up: it boots M
//! independent worlds — each with its own machine (virtual clock), its
//! own seeded RNG, and its own pop-up engine — and multiplexes them over
//! P OS threads in bulk-synchronous rounds. Cross-world communication is
//! active messages only, over the lock-free mailbox bus in
//! [`threads::pool`](paramecium_threads::pool).
//!
//! # Determinism
//!
//! A world's final state is a pure function of `(seed, world id, the
//! per-round step function, messages received)`. The pool guarantees the
//! message part is independent of P and of OS scheduling:
//!
//! - a message posted during round *r* is delivered at the start of
//!   round *r + 1*, never earlier (round tags + a barrier between
//!   rounds),
//! - each delivery batch is sorted by `(round, sender, per-sender
//!   sequence)` before it touches the receiving world,
//! - worlds are partitioned over threads statically (`id mod P`), and a
//!   world only ever runs on its owning thread within a round.
//!
//! So `pool.run_rounds(1, …)`, `run_rounds(2, …)` and `run_rounds(8, …)`
//! produce bit-identical per-world states — pinned by the
//! `worldpool_determinism` integration suite.

use std::sync::{
    atomic::{AtomicU64, Ordering},
    Arc,
};

use rand::{rngs::StdRng, SeedableRng};

use paramecium_core::domain::KERNEL_DOMAIN;
use paramecium_threads::{
    am::AmEndpoint,
    pool::{CrossBus, CrossEndpoint, RoundBarrier},
    popup::{PopupEngine, PopupMode},
    sched::Scheduler,
};

use crate::harness::World;

/// IRQ line the pool wires each world's cross-world AM endpoint to.
pub const CROSS_AM_IRQ: u32 = 9;

/// Default per-world AM queue capacity.
pub const DEFAULT_AM_CAPACITY: usize = 1024;

/// Scheduler slice budget for one pump.
const PUMP_SLICES: u64 = 4096;

/// Settle-phase cap: the pool stops chasing message chains after this
/// many delivery-only rounds (a handler that always re-posts would
/// otherwise never quiesce).
const MAX_SETTLE_ROUNDS: u64 = 256;

/// One world plus its pool-side harness: scheduler, pop-up engine, AM
/// endpoint, cross-world endpoint, and a private deterministic RNG.
pub struct PoolWorld {
    /// World id (index into the pool, stable across runs).
    pub id: usize,
    /// The booted world.
    pub world: World,
    /// Per-world deterministic RNG (seeded from the pool seed and `id`).
    pub rng: StdRng,
    /// The world's simulated-thread scheduler.
    pub scheduler: Scheduler,
    /// The world's pop-up engine (proto-thread mode).
    pub engine: Arc<PopupEngine>,
    /// The world's active-message endpoint (cross-world arrivals land
    /// here).
    pub am: Arc<AmEndpoint>,
    /// The world's connection to the cross-world bus.
    pub cross: Arc<CrossEndpoint>,
}

impl PoolWorld {
    fn boot(id: usize, seed: u64, bus: &Arc<CrossBus>, am_capacity: usize) -> PoolWorld {
        let world = World::boot();
        let machine = world.nucleus.machine().clone();
        let scheduler = Scheduler::new(machine.clone());
        let engine = PopupEngine::new(scheduler.clone(), PopupMode::Proto);
        let am = AmEndpoint::install(
            &world.nucleus.events,
            &engine,
            machine,
            CROSS_AM_IRQ,
            KERNEL_DOMAIN,
            am_capacity,
        )
        .expect("pool AM endpoint install cannot fail on a fresh world");
        let cross = CrossEndpoint::new(id, bus.clone(), am.clone());
        // Split the pool seed per world with a SplitMix64-style mix so
        // world RNG streams are decorrelated but fully determined.
        let world_seed = mix64(seed ^ (id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        PoolWorld {
            id,
            world,
            rng: StdRng::seed_from_u64(world_seed),
            scheduler,
            engine,
            am,
            cross,
        }
    }

    /// Delivers pending interrupts and runs simulated threads to idle —
    /// the per-round heartbeat that turns posted messages into handler
    /// invocations.
    pub fn pump(&self) {
        self.world
            .nucleus
            .events
            .drain_interrupts(self.world.nucleus.machine());
        self.scheduler.run_until_idle(PUMP_SLICES);
    }

    /// Posts an active message to another world (see
    /// [`CrossEndpoint::post`]).
    pub fn post(
        &self,
        to: usize,
        handler: impl Into<String>,
        interface: impl Into<String>,
        method: impl Into<String>,
        args: Vec<paramecium_obj::Value>,
    ) -> bool {
        self.cross.post(to, handler, interface, method, args)
    }
}

/// SplitMix64 finalizer: a cheap, well-mixed 64-bit permutation.
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// What a pool run did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolRunReport {
    /// User step rounds executed.
    pub rounds: u64,
    /// Extra delivery-only rounds run to drain in-flight messages.
    pub settle_rounds: u64,
    /// Cross-world messages delivered over the whole run.
    pub delivered: u64,
}

/// A pool of M independent worlds, runnable on any number of OS threads.
pub struct WorldPool {
    worlds: Vec<PoolWorld>,
    bus: Arc<CrossBus>,
    next_round: u64,
}

impl WorldPool {
    /// Boots `worlds` worlds from `seed` with the default AM capacity.
    pub fn boot(worlds: usize, seed: u64) -> WorldPool {
        Self::boot_with_capacity(worlds, seed, DEFAULT_AM_CAPACITY)
    }

    /// Boots with an explicit per-world AM queue capacity.
    pub fn boot_with_capacity(worlds: usize, seed: u64, am_capacity: usize) -> WorldPool {
        assert!(worlds > 0, "a pool needs at least one world");
        let bus = CrossBus::new(worlds);
        let worlds = (0..worlds)
            .map(|id| PoolWorld::boot(id, seed, &bus, am_capacity))
            .collect();
        WorldPool {
            worlds,
            bus,
            next_round: 1, // Round 0 is "before the first run".
        }
    }

    /// Number of worlds.
    pub fn len(&self) -> usize {
        self.worlds.len()
    }

    /// True if the pool has no worlds (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.worlds.is_empty()
    }

    /// The worlds, in id order.
    pub fn worlds(&self) -> &[PoolWorld] {
        &self.worlds
    }

    /// Mutable access to one world (between runs).
    pub fn world_mut(&mut self, id: usize) -> &mut PoolWorld {
        &mut self.worlds[id]
    }

    /// The shared bus.
    pub fn bus(&self) -> &Arc<CrossBus> {
        &self.bus
    }

    /// Consumes the pool, yielding the worlds.
    pub fn into_worlds(self) -> Vec<PoolWorld> {
        self.worlds
    }

    /// Runs `rounds` bulk-synchronous rounds of `step` over all worlds
    /// on `threads` OS threads, then keeps running delivery-only rounds
    /// until every in-flight message chain has drained (or the settle
    /// cap is hit).
    ///
    /// Each round, on the world's owning thread (`id mod threads`):
    /// cross-world messages due this round are delivered and pumped,
    /// then `step(world, round)` runs, then the world pumps again. A
    /// barrier separates rounds.
    pub fn run_rounds<F>(&mut self, threads: usize, rounds: u64, step: F) -> PoolRunReport
    where
        F: Fn(&mut PoolWorld, u64) + Send + Sync,
    {
        let p = threads.clamp(1, self.worlds.len());
        let first = self.next_round;
        let barrier = RoundBarrier::new(p);
        let round_delivered = [AtomicU64::new(0), AtomicU64::new(0)];
        let total_delivered = AtomicU64::new(0);
        let settle_rounds = AtomicU64::new(0);

        // Static partition: thread t owns worlds with id % p == t. The
        // worlds move into their owning thread for the whole run and
        // come back out through the scope result.
        let mut parts: Vec<Vec<PoolWorld>> = (0..p).map(|_| Vec::new()).collect();
        for world in self.worlds.drain(..) {
            parts[world.id % p].push(world);
        }

        let mut returned: Vec<Vec<PoolWorld>> = std::thread::scope(|scope| {
            let handles: Vec<_> = parts
                .into_iter()
                .map(|mut own| {
                    let step = &step;
                    let barrier = &barrier;
                    let round_delivered = &round_delivered;
                    let total_delivered = &total_delivered;
                    let settle_rounds = &settle_rounds;
                    scope.spawn(move || {
                        // User rounds.
                        for r in first..first + rounds {
                            for world in &mut own {
                                world.cross.begin_round(r);
                                let d = world.cross.deliver_pending() as u64;
                                total_delivered.fetch_add(d, Ordering::Relaxed);
                                world.pump();
                                step(world, r - first);
                                world.pump();
                            }
                            barrier.wait();
                        }
                        // Settle: delivery-only rounds until a round
                        // moves no messages anywhere.
                        for (i, r) in (first + rounds..).enumerate() {
                            if i as u64 >= MAX_SETTLE_ROUNDS {
                                break;
                            }
                            let slot = &round_delivered[(r % 2) as usize];
                            let mut moved = 0u64;
                            for world in &mut own {
                                world.cross.begin_round(r);
                                let d = world.cross.deliver_pending() as u64;
                                total_delivered.fetch_add(d, Ordering::Relaxed);
                                moved += d;
                                world.pump();
                                // A handler may have re-posted, or a
                                // message may be parked for the next
                                // round; either keeps the loop alive
                                // (without counting as a delivery).
                                if !world.cross.is_idle() {
                                    moved += 1;
                                }
                            }
                            slot.fetch_add(moved, Ordering::Relaxed);
                            let next = &round_delivered[((r + 1) % 2) as usize];
                            barrier.wait_then(|| {
                                settle_rounds.fetch_add(1, Ordering::Relaxed);
                                // Reset the *next* round's slot before
                                // anyone is released; this round's slot
                                // stays readable for the stop decision.
                                next.store(0, Ordering::Relaxed);
                            });
                            if slot.load(Ordering::Relaxed) == 0 {
                                break;
                            }
                        }
                        own
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("pool worker panicked"))
                .collect()
        });

        // Reassemble in id order.
        for part in &mut returned {
            self.worlds.append(part);
        }
        self.worlds.sort_by_key(|w| w.id);

        let settled = settle_rounds.load(Ordering::Relaxed);
        self.next_round = first + rounds + settled;
        PoolRunReport {
            rounds,
            settle_rounds: settled,
            delivered: total_delivered.load(Ordering::Relaxed),
        }
    }
}
