//! Interposing agents: transparent network monitoring.
//!
//! Reproduces the paper's worked example (section 2): build an interposing
//! object for the network device `/shared/network` and replace the handle
//! in the name space — "all further lookups for /shared/network will
//! result in a reference to the interposing agent".
//!
//! ```text
//! cargo run --example interposing_monitor
//! ```

use paramecium::netstack::{install_driver, make_network_monitor, make_udp_stack, wire};
use paramecium::prelude::*;

fn main() {
    let world = World::boot();
    let nucleus = &world.nucleus;

    // The toolbox driver claims the NIC and registers /shared/network.
    install_driver(nucleus, KERNEL_DOMAIN).unwrap();
    println!("driver registered at /shared/network");

    // An application binds the device *before* the monitor exists…
    let early_client = nucleus.bind(KERNEL_DOMAIN, "/shared/network").unwrap();
    println!("early client bound: {}", early_client.class());

    // Build the interposing agent around the current object and swap the
    // name-space binding. One call; no client changes.
    let target = nucleus.bind(KERNEL_DOMAIN, "/shared/network").unwrap();
    let (agent, stats) = make_network_monitor(target);
    let old = nucleus
        .interpose(KERNEL_DOMAIN, "/shared/network", agent)
        .unwrap();
    println!("interposed monitor over {}", old.class());

    // A UDP stack built *after* interposition sees the agent without
    // knowing it.
    let dev = nucleus.bind(KERNEL_DOMAIN, "/shared/network").unwrap();
    println!("late client bound: {}", dev.class());
    let stack = make_udp_stack(dev, 0x0A00_0001, [2, 0, 0, 0, 0, 1]);
    stack.invoke("udp", "bind", &[Value::Int(53)]).unwrap();

    // Traffic: inject frames at the simulated wire, pump the stack.
    for (i, size) in [64usize, 200, 700, 1400, 64, 300].iter().enumerate() {
        let payload = vec![i as u8; size - 47]; // Headers are 42+5 bytes.
        let frame = wire::build_udp_frame(
            [9; 6],
            [2, 0, 0, 0, 0, 1],
            0x0A00_0002,
            0x0A00_0001,
            4000 + i as u16,
            53,
            &payload,
        );
        let machine = nucleus.machine().clone();
        let mut m = machine.lock();
        m.device_mut::<paramecium::machine::dev::Nic>("nic")
            .unwrap()
            .inject_rx(frame);
        m.tick(10);
    }
    let pumped = stack.invoke("udp", "pump", &[]).unwrap();
    println!("\npumped {pumped:?} frames through the monitored device");

    // Echo one datagram back out (monitored on the TX side too).
    let dgram = stack.invoke("udp", "recv_from", &[Value::Int(53)]).unwrap();
    if let Ok(items) = dgram.as_list() {
        if items.len() == 3 {
            stack
                .invoke(
                    "udp",
                    "send_to",
                    &[
                        items[0].clone(),
                        items[1].clone(),
                        Value::Int(53),
                        items[2].clone(),
                    ],
                )
                .unwrap();
        }
    }

    // The monitoring tool reads its superset interface.
    use std::sync::atomic::Ordering;
    println!("\nmonitor statistics:");
    println!(
        "  rx: {} frames, {} bytes",
        stats.rx_frames.load(Ordering::Relaxed),
        stats.rx_bytes.load(Ordering::Relaxed)
    );
    println!(
        "  tx: {} frames, {} bytes",
        stats.tx_frames.load(Ordering::Relaxed),
        stats.tx_bytes.load(Ordering::Relaxed)
    );
    let buckets: Vec<u64> = stats
        .size_buckets
        .iter()
        .map(|b| b.load(Ordering::Relaxed))
        .collect();
    println!("  size histogram (<128, <512, <1024, >=1024): {buckets:?}");

    // The monitor object is also reachable by name, of course.
    let by_name = nucleus.bind(KERNEL_DOMAIN, "/shared/network").unwrap();
    let v = by_name.invoke("netmon", "stats", &[]).unwrap();
    println!("\nvia /shared/network netmon::stats -> {v:?}");
}
