//! The paper's headline scenario: an application inserts a protocol-
//! processing component into the shared network driver path — legal only
//! because certification can vouch for it.
//!
//! Shows all four outcomes:
//! 1. a *verifiable* filter → the type-safe-compiler subordinate signs it,
//!    it runs native in the kernel domain;
//! 2. an *unverifiable but honest* filter → compiler declines, prover
//!    gives up, the administrator (who hand-checked it) signs — the
//!    escape hatch;
//! 3. a *malicious snooping* filter → everyone declines; without a
//!    certificate it can still run, but only SFI-sandboxed (Exokernel
//!    mode) or in a user domain behind hardware protection;
//! 4. a *tampered* certified image → the load-time digest check refuses it.
//!
//! ```text
//! cargo run --example extensible_driver
//! ```

use paramecium::cert::{
    AdminCertifier, Authority, CertificationPolicy, CompilerCertifier, ProverCertifier,
};
use paramecium::netstack::filter::{checksumming_filter_program, udp_port_filter_program};
use paramecium::prelude::*;
use paramecium::sfi::workloads;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let world = World::boot();
    let nucleus = &world.nucleus;
    let mut rng = StdRng::seed_from_u64(42);

    // --- 1. The verifiable filter -------------------------------------
    let verifiable = udp_port_filter_program(53);
    nucleus.repository.add_bytecode("dns-filter", &verifiable);
    let signer = world.certify("dns-filter", &[Right::RunKernel]).unwrap();
    let report = nucleus
        .load("dns-filter", &LoadOptions::kernel("/kernel/dns-filter"))
        .unwrap();
    println!("1. verifiable filter:");
    println!("   signed by subordinate #{signer} (the compiler)");
    println!("   placed in kernel as {:?}\n", report.protection);

    // --- 2. The honest-but-unverifiable filter ------------------------
    // Raw pointer arithmetic: the compiler can't prove it, the prover's
    // budget is too small — the escape hatch walks down to the admin.
    let honest = checksumming_filter_program(53);
    let image = honest.encode();
    // Build a policy whose admin has hand-checked exactly this image.
    let admin_authority = Authority::new("sysadmin", &mut rng, 512);
    let policy = CertificationPolicy::standard(
        &world.root,
        CompilerCertifier::new(Authority::new("m3c", &mut rng, 512)),
        ProverCertifier::new(Authority::new("prover", &mut rng, 512), 500),
        AdminCertifier::new(admin_authority, &[&image]),
        vec![Right::RunUser, Right::RunKernel],
    )
    .unwrap();
    nucleus.repository.add_bytecode("csum-filter", &honest);
    let outcome = policy
        .certify("csum-filter", &image, &[Right::RunKernel])
        .unwrap();
    println!("2. honest-but-unverifiable filter (escape hatch):");
    for line in &outcome.attempts {
        println!("   - {line}");
    }
    nucleus.certsvc.install(outcome.certificate, outcome.chain);
    let report = nucleus
        .load("csum-filter", &LoadOptions::kernel("/kernel/csum-filter"))
        .unwrap();
    println!("   placed in kernel as {:?}\n", report.protection);

    // --- 3. The malicious snooping filter -----------------------------
    let snooper = workloads::wild_writer();
    nucleus.repository.add_bytecode("snooper", &snooper);
    match world.certify("snooper", &[Right::RunKernel]) {
        Err(e) => println!("3. malicious filter: certification refused\n   ({e})"),
        Ok(_) => unreachable!("nobody may sign the snooper"),
    }
    // Strict mode: cannot enter the kernel at all.
    let strict = nucleus.load("snooper", &LoadOptions::kernel("/kernel/snooper").strict());
    println!(
        "   strict kernel load: {:?}",
        strict.err().map(|e| e.to_string())
    );
    // Permissive mode: it gets in, but wearing an SFI straightjacket.
    let report = nucleus
        .load("snooper", &LoadOptions::kernel("/kernel/snooper"))
        .unwrap();
    println!(
        "   permissive kernel load: {:?} (run-time checks on every access)",
        report.protection
    );
    // Or a user domain: hardware protection, no checks needed.
    let app = nucleus
        .create_domain("untrusted-app", KERNEL_DOMAIN, [])
        .unwrap();
    let report = nucleus
        .load("snooper", &LoadOptions::user(app.id, "/app/snooper"))
        .unwrap();
    println!("   user-domain load: {:?}\n", report.protection);

    // The sandboxed snooper is *contained*: it runs, its wild write lands
    // inside its own segment, the kernel survives.
    let sandboxed = nucleus.bind(KERNEL_DOMAIN, "/kernel/snooper").unwrap();
    let r = sandboxed.invoke(
        "component",
        "run",
        &[Value::Bytes(bytes::Bytes::new()), Value::Int(0)],
    );
    println!("   sandboxed snooper ran: {r:?} (contained, kernel intact)\n");

    // --- 4. The tampered image -----------------------------------------
    // Certify one image, then swap the repository contents: the digest in
    // the certificate no longer matches what would be loaded.
    let genuine = udp_port_filter_program(99);
    nucleus.repository.add_bytecode("patched", &genuine);
    world.certify("patched", &[Right::RunKernel]).unwrap();
    let mut evil = udp_port_filter_program(99);
    evil.data_len += 4096; // "Just a small patch after review…"
    nucleus.repository.add_bytecode("patched", &evil);
    let strict = nucleus.load("patched", &LoadOptions::kernel("/kernel/patched").strict());
    println!("4. tampered-after-certification image:");
    println!("   strict load: {:?}", strict.err().map(|e| e.to_string()));
    println!("   (\"certificates include a message digest of the component so that it is");
    println!("    impossible to modify the component after it has been certified\")");
}
