//! Parallel programming support: the application area Paramecium was
//! built for.
//!
//! "…we are building a prototype kernel, called Paramecium, which is
//! intended to provide support for parallel programming. … an associated
//! group, involved in parallel programming research, needs better and
//! finer grained control over the machine's hardware." (paper, section 1).
//!
//! The scenario: a parallel dot-product over pages *shared* between worker
//! protection domains, with completion signalled through semaphores, and
//! incoming "work request" interrupts turned into pop-up threads via the
//! proto-thread fast path.
//!
//! ```text
//! cargo run --example parallel_compute
//! ```

use std::sync::{
    atomic::{AtomicI64, Ordering},
    Arc,
};

use paramecium::machine::mmu::Perms;
use paramecium::machine::trap::{Trap, TrapKind};
use paramecium::prelude::*;
use paramecium::threads::popup::PopupFactory;
use paramecium::threads::Semaphore;

const VECTOR_LEN: usize = 2048; // i64 elements per vector.
const WORKERS: usize = 4;

fn main() {
    let world = World::boot();
    let nucleus = &world.nucleus;
    let machine = nucleus.machine().clone();

    // Shared input vectors, allocated in the kernel domain and mapped
    // read-only into each worker domain — "pages can be allocated
    // exclusively or shared among different protection domains".
    let pages = (VECTOR_LEN * 8 * 2).div_ceil(paramecium::machine::PAGE_SIZE);
    let base = nucleus.mem.alloc(KERNEL_DOMAIN, pages, Perms::RW).unwrap();
    let (a, b): (Vec<i64>, Vec<i64>) = (0..VECTOR_LEN as i64)
        .map(|i| (i % 97, (i * 7) % 89))
        .unzip();
    let mut image = Vec::with_capacity(VECTOR_LEN * 16);
    for v in a.iter().chain(b.iter()) {
        image.extend_from_slice(&v.to_le_bytes());
    }
    nucleus.mem.write(KERNEL_DOMAIN, base, &image).unwrap();
    println!("shared {} pages of input at {base:#x}", pages);

    // Worker domains, each seeing the pages read-only at its own address.
    let scheduler = Scheduler::new(machine.clone());
    let done = Semaphore::new(scheduler.core().clone(), 0);
    let total = Arc::new(AtomicI64::new(0));

    for w in 0..WORKERS {
        let domain = nucleus
            .create_domain(format!("worker{w}"), KERNEL_DOMAIN, [])
            .unwrap();
        let wbase = nucleus
            .mem
            .share(KERNEL_DOMAIN, base, pages, domain.id, Perms::R)
            .unwrap();
        let mem = nucleus.mem.clone();
        let (done_c, total_c) = (done.clone(), total.clone());
        let id = domain.id;
        scheduler.spawn(
            format!("dot{w}"),
            Box::new(move |ctx| {
                // Each worker reads its slice out of the shared pages.
                let chunk = VECTOR_LEN / WORKERS;
                let (lo, hi) = (w * chunk, (w + 1) * chunk);
                let mut sum = 0i64;
                let mut buf = [0u8; 8];
                for i in lo..hi {
                    mem.read(id, wbase + (i * 8) as u64, &mut buf).unwrap();
                    let ai = i64::from_le_bytes(buf);
                    mem.read(id, wbase + ((VECTOR_LEN + i) * 8) as u64, &mut buf)
                        .unwrap();
                    let bi = i64::from_le_bytes(buf);
                    sum += ai * bi;
                }
                ctx.work(2 * (hi - lo) as u64); // The multiply-adds.
                total_c.fetch_add(sum, Ordering::Relaxed);
                done_c.release();
                Step::Done
            }),
        );
    }

    // Also demonstrate the interrupt path: "work arrived" breakpoint traps
    // become pop-up threads; the fast path never creates a thread.
    let popup = PopupEngine::new(scheduler.clone(), PopupMode::Proto);
    let ticks = Arc::new(AtomicI64::new(0));
    let t = ticks.clone();
    let factory: PopupFactory = Arc::new(move |_trap| {
        let t = t.clone();
        Box::new(move |_ctx| {
            t.fetch_add(1, Ordering::Relaxed);
            Step::Done
        })
    });
    popup
        .attach(
            &nucleus.events,
            TrapKind::Breakpoint.vector(),
            KERNEL_DOMAIN,
            factory,
        )
        .unwrap();
    for _ in 0..50 {
        nucleus
            .events
            .deliver(&machine, &Trap::exception(TrapKind::Breakpoint));
    }

    // Run the workers to completion.
    let t0 = nucleus.now();
    scheduler.run_until_idle(10_000);
    for _ in 0..WORKERS {
        assert!(done.try_acquire(), "a worker did not finish");
    }
    let expected: i64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
    let got = total.load(Ordering::Relaxed);
    assert_eq!(got, expected, "parallel result must match serial");

    println!("\ndot product over {VECTOR_LEN} elements with {WORKERS} worker domains");
    println!("  result      : {got} (serial check: {expected})");
    println!("  cycles      : {}", nucleus.now() - t0);
    println!("  sched stats : {:?}", scheduler.stats());
    println!(
        "  popup stats : {:?} ({} interrupts handled on the fast path, 0 threads created)",
        popup.stats(),
        ticks.load(Ordering::Relaxed)
    );
    println!("  mem stats   : {:?}", nucleus.mem.stats());
}
