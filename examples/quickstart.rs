//! Quickstart: boot Paramecium, certify a component, place it in the
//! kernel, and invoke it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use paramecium::prelude::*;
use paramecium::sfi::workloads;

fn main() {
    // Boot a world: simulated machine, nucleus, certification authority
    // with the standard subordinates (compiler → prover → administrator).
    let world = World::boot();
    let nucleus = &world.nucleus;
    println!("booted nucleus at cycle {}", nucleus.now());

    // The name space after boot: the kernel is an object composition.
    println!("\nname space:");
    for path in nucleus.root_namespace().list("/") {
        println!("  {path}");
    }

    // Drop a downloadable component (bytecode image) into the repository.
    let program = workloads::checksum_loop_verified(256, 4);
    nucleus.repository.add_bytecode("checksum", &program);

    // Certify it: the type-safe-compiler subordinate verifies and signs.
    let signer = world.certify("checksum", &[Right::RunKernel]).unwrap();
    println!("\ncertified `checksum` (signed by subordinate #{signer})");

    // The *user* decides placement; certification makes kernel placement
    // legal. The component runs native — zero run-time checks.
    let report = nucleus
        .load("checksum", &LoadOptions::kernel("/kernel/checksum"))
        .unwrap();
    println!(
        "loaded at {} in domain {} under {:?} (load cost: {} cycles)",
        report.path, report.domain.0, report.protection, report.load_cycles
    );

    // Bind and invoke — late binding through the name space.
    let csum = nucleus.bind(KERNEL_DOMAIN, "/kernel/checksum").unwrap();
    let data = bytes::Bytes::from((0u8..=255).collect::<Vec<_>>());
    let result = csum
        .invoke("component", "run", &[Value::Bytes(data), Value::Int(0)])
        .unwrap();
    println!("\nchecksum result: {result:?}");

    // The same component, invoked from a *user* domain, goes through a
    // cross-domain proxy: a page fault, a trap, two context switches.
    let app = nucleus.create_domain("app", KERNEL_DOMAIN, []).unwrap();
    let before = nucleus.now();
    let via_proxy = nucleus.bind(app.id, "/kernel/checksum").unwrap();
    let data = bytes::Bytes::from(vec![1u8; 256]);
    via_proxy
        .invoke("component", "run", &[Value::Bytes(data), Value::Int(0)])
        .unwrap();
    println!(
        "\ncross-domain invocation from `{}` cost {} cycles ({} crossing so far)",
        app.name,
        nucleus.now() - before,
        nucleus.proxy_stats().crossings()
    );
}
