//! Regenerates every experiment table in EXPERIMENTS.md.
//!
//! The paper (a HotOS position paper) has no tables or figures, so the
//! experiment set is derived from its quantitative *claims* — see
//! DESIGN.md section 3 for the claim-to-experiment mapping. Simulated
//! costs are deterministic (same numbers every run); wall-clock rows
//! (marked `ns`/`µs`) vary with the host and are indicative only.
//!
//! ```text
//! cargo run --release --example experiments
//! ```

use std::sync::Arc;
use std::time::Instant;

use paramecium::cert::{
    AdminCertifier, Authority, CertificationPolicy, CertifyMethod, CompilerCertifier,
    ProverCertifier,
};
use paramecium::machine::dev::Nic;
use paramecium::machine::trap::{Trap, TrapKind};
use paramecium::netstack::{
    filter::{adapt_bytecode_filter, udp_port_filter_program},
    install_driver, make_network_monitor, make_udp_stack, wire,
};
use paramecium::prelude::*;
use paramecium::sfi::{interp::Interp, sandbox::sandbox_rewrite, verifier, workloads};
use paramecium::threads::popup::PopupFactory;
use paramecium::threads::Semaphore;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    println!("# Paramecium experiment tables\n");
    println!("(regenerate with `cargo run --release --example experiments`)\n");
    e1_invocation();
    e2_namespace();
    e3_crossdomain();
    e4_certification_vs_software();
    e5_popup();
    e6_interpose();
    e7_placement();
    e8_delegation();
    e9_crypto();
}

/// Iterations used for wall-clock micro-measurements.
const WALL_ITERS: u32 = if cfg!(debug_assertions) {
    20_000
} else {
    400_000
};

fn wall_ns(mut f: impl FnMut()) -> f64 {
    // Warm up, then measure.
    for _ in 0..WALL_ITERS / 10 {
        f();
    }
    let t0 = Instant::now();
    for _ in 0..WALL_ITERS {
        f();
    }
    t0.elapsed().as_nanos() as f64 / f64::from(WALL_ITERS)
}

fn counter_obj() -> ObjRef {
    ObjectBuilder::new("counter")
        .state(0i64)
        .interface("ctr", |i| {
            i.method("incr", &[TypeTag::Int], TypeTag::Int, |this, args| {
                let by = args[0].as_int()?;
                this.with_state(|n: &mut i64| {
                    *n += by;
                    Ok(Value::Int(*n))
                })
            })
        })
        .build()
}

// ---------------------------------------------------------------- E1 ---

fn e1_invocation() {
    println!("## E1 — method invocation overhead (paper §2)\n");
    println!("Real dispatch cost of the object model (host wall-clock):\n");
    println!("| call path | ns/call |");
    println!("|---|---|");

    // Baseline: a direct Rust call doing the same state update.
    let state = std::cell::Cell::new(0i64);
    let direct = wall_ns(|| {
        state.set(state.get() + 1);
    });
    println!("| direct Rust statement | {direct:.1} |");

    let obj = counter_obj();
    let args = [Value::Int(1)];
    let iface = wall_ns(|| {
        obj.invoke("ctr", "incr", &args).unwrap();
    });
    println!("| interface method (`invoke`) | {iface:.1} |");

    // The paper's "run time inline techniques": pre-resolved dispatch.
    let bound = obj
        .interface("ctr")
        .unwrap()
        .bind_method(&obj, "incr")
        .unwrap();
    let bound_ns = wall_ns(|| {
        bound.call(&args).unwrap();
    });
    println!("| bound method (inline fast path) | {bound_ns:.1} |");
    let unchecked_ns = wall_ns(|| {
        bound.call_unchecked_types(&args).unwrap();
    });
    println!("| bound method, unchecked types | {unchecked_ns:.1} |");

    let delegated = {
        let base = counter_obj();
        let iface = paramecium::obj::InterfaceBuilder::new("ctr").finish();
        ObjectBuilder::new("child")
            .raw_interface(paramecium::obj::delegate_interface(iface, base))
            .build()
    };
    let dele = wall_ns(|| {
        delegated.invoke("ctr", "incr", &args).unwrap();
    });
    println!("| delegated method (1 hop) | {dele:.1} |");

    for hops in [1usize, 2, 4, 8] {
        let mut wrapped = counter_obj();
        for _ in 0..hops {
            wrapped = InterposerBuilder::new(wrapped).build();
        }
        let ns = wall_ns(|| {
            wrapped.invoke("ctr", "incr", &args).unwrap();
        });
        println!("| {hops} stacked interposer(s) | {ns:.1} |");
    }

    println!("\nModelled overhead vs component grain size (simulated cycles;");
    println!(
        "dispatch = indirect call, {} cycles):\n",
        CostModel::default().indirect_call
    );
    println!("| work per call (cycles) | overhead |");
    println!("|---|---|");
    let model = CostModel::default();
    for work in [10u64, 100, 1_000, 10_000, 100_000] {
        let overhead =
            100.0 * (model.indirect_call - model.call) as f64 / (model.call + work) as f64;
        println!("| {work} | {overhead:.2}% |");
    }
    println!();
}

// ---------------------------------------------------------------- E2 ---

fn e2_namespace() {
    use paramecium::core::directory::{NameSpace, NsEntry};
    use paramecium::core::domain::KERNEL_DOMAIN;

    println!("## E2 — name-space operations (paper §2, §3)\n");
    println!(
        "| namespace size | lookup (local) ns | lookup after 8-deep inherit ns | override hit ns |"
    );
    println!("|---|---|---|---|");
    for size in [10usize, 100, 1_000, 10_000] {
        let root = NameSpace::root();
        for i in 0..size {
            root.register(
                &format!("/svc/dir{}/obj{i}", i % 16),
                NsEntry {
                    obj: ObjectBuilder::new("x").build(),
                    home: KERNEL_DOMAIN,
                },
            )
            .unwrap();
        }
        let probe = format!("/svc/dir{}/obj{}", (size / 2) % 16, size / 2);
        let local = wall_ns(|| {
            root.lookup(&probe).unwrap();
        });

        let mut deep = root.clone();
        for _ in 0..8 {
            deep = NameSpace::child_of(&deep, []);
        }
        let inherited = wall_ns(|| {
            deep.lookup(&probe).unwrap();
        });

        let over = NameSpace::child_of(
            &root,
            [(
                probe.clone(),
                NsEntry {
                    obj: ObjectBuilder::new("o").build(),
                    home: KERNEL_DOMAIN,
                },
            )],
        );
        let override_hit = wall_ns(|| {
            over.lookup(&probe).unwrap();
        });
        println!("| {size} | {local:.1} | {inherited:.1} | {override_hit:.1} |");
    }
    println!();
}

// ---------------------------------------------------------------- E3 ---

fn e3_crossdomain() {
    println!("## E3 — cross-domain invocation via proxies (paper §1, §3)\n");
    println!("Simulated cycles per call (deterministic):\n");
    println!("| configuration | arg bytes | cycles/call |");
    println!("|---|---|---|");

    let world = World::boot();
    let n = &world.nucleus;
    let echo = ObjectBuilder::new("echo")
        .interface("echo", |i| {
            i.method("echo", &[TypeTag::Bytes], TypeTag::Bytes, |_, args| {
                Ok(args[0].clone())
            })
        })
        .build();
    n.register(KERNEL_DOMAIN, "/svc/echo", echo).unwrap();
    let app = n.create_domain("app", KERNEL_DOMAIN, []).unwrap();

    let run = |obj: &ObjRef, size: usize, label: &str| {
        let payload = Value::Bytes(bytes::Bytes::from(vec![0u8; size]));
        let calls = 100u64;
        let t0 = n.now();
        for _ in 0..calls {
            obj.invoke("echo", "echo", std::slice::from_ref(&payload))
                .unwrap();
        }
        let per = (n.now() - t0) / calls;
        println!("| {label} | {size} | {per} |");
    };

    let same = n.bind(KERNEL_DOMAIN, "/svc/echo").unwrap();
    run(&same, 0, "same-domain (direct)");
    run(&same, 4096, "same-domain (direct)");

    let cross = n.bind(app.id, "/svc/echo").unwrap();
    for size in [0usize, 64, 1024, 4096] {
        run(&cross, size, "cross-domain (proxy)");
    }

    // TLB ablation on the shared-memory path: 4 KiB reads out of a page
    // shared between the domains, TLB on vs off.
    {
        let kbase = n
            .mem
            .alloc(KERNEL_DOMAIN, 4, paramecium::machine::Perms::RW)
            .unwrap();
        let ubase = n
            .mem
            .share(
                KERNEL_DOMAIN,
                kbase,
                4,
                app.id,
                paramecium::machine::Perms::R,
            )
            .unwrap();
        let mut buf = vec![0u8; 4096];
        for (label, enabled) in [
            ("shared-page read 4 KiB, TLB on", true),
            ("shared-page read 4 KiB, TLB off", false),
        ] {
            n.machine().lock().mmu.tlb.set_enabled(enabled);
            // Warm (or not) the TLB, then measure.
            n.mem.read(app.id, ubase, &mut buf).unwrap();
            let t0 = n.now();
            for _ in 0..100 {
                n.mem.read(app.id, ubase, &mut buf).unwrap();
            }
            println!("| {label} | 4096 | {} |", (n.now() - t0) / 100);
        }
        n.machine().lock().mmu.tlb.set_enabled(true);
    }

    // Argument transport ablation: copy vs page-mapping for large args
    // (the paper's fault handler "maps in arguments").
    for size in [4096usize, 65536] {
        use std::sync::atomic::Ordering;
        let payload = Value::Bytes(bytes::Bytes::from(vec![0u8; size]));
        n.proxy_stats().map_threshold.store(0, Ordering::Relaxed);
        let t0 = n.now();
        for _ in 0..50 {
            cross
                .invoke("echo", "echo", std::slice::from_ref(&payload))
                .unwrap();
        }
        let copy = (n.now() - t0) / 50;
        n.proxy_stats().map_threshold.store(4096, Ordering::Relaxed);
        let t0 = n.now();
        for _ in 0..50 {
            cross
                .invoke("echo", "echo", std::slice::from_ref(&payload))
                .unwrap();
        }
        let mapped = (n.now() - t0) / 50;
        n.proxy_stats().map_threshold.store(0, Ordering::Relaxed);
        println!("| cross-domain, args copied | {size} | {copy} |");
        println!("| cross-domain, args page-mapped | {size} | {mapped} |");
    }

    println!(
        "\ntotal crossings {} · bytes marshalled {}\n",
        n.proxy_stats().crossings(),
        n.proxy_stats().bytes()
    );
}

// ---------------------------------------------------------------- E4 ---

fn e4_certification_vs_software() {
    println!("## E4 — load-time certification vs run-time software protection (paper §4, §5)\n");
    println!("One component (byte checksum over 1 KiB), same job under each regime.");
    println!("Load cost is paid once; run cost scales with work. Simulated cycles.\n");
    println!("| iterations | SFI total | Verified total | Certified total | winner |");
    println!("|---|---|---|---|---|");

    let sig_cost = paramecium::core::certsvc::DEFAULT_SIG_CHECK_COST;
    let digest_cost = |image_len: usize| (image_len as u64) * 3;

    for iters in [1u32, 10, 100, 1_000, 10_000] {
        // SFI: rewrite once, guards on every access.
        let raw = workloads::checksum_loop(1024, iters);
        let (sandboxed, stats) = sandbox_rewrite(&raw);
        let sfi_load = (stats.original_len + stats.rewritten_len) as u64 * 2;
        let sfi_run = Interp::new(&sandboxed).run(u64::MAX).unwrap().steps;
        let sfi_total = sfi_load + sfi_run;

        // Verified: verify once, compiler-emitted guards only.
        let verified = workloads::checksum_loop_verified(1024, iters);
        let vreport = verifier::verify(&verified).unwrap();
        let ver_load = vreport.evaluations * 4;
        let ver_run = Interp::new(&verified).run(u64::MAX).unwrap().steps;
        let ver_total = ver_load + ver_run;

        // Certified: one RSA verification + digest, then native.
        let cert_load = sig_cost + digest_cost(raw.encode().len());
        let cert_run = Interp::new(&raw).run(u64::MAX).unwrap().steps;
        let cert_total = cert_load + cert_run;

        let winner = [
            ("SFI", sfi_total),
            ("Verified", ver_total),
            ("Certified", cert_total),
        ]
        .iter()
        .min_by_key(|(_, v)| *v)
        .unwrap()
        .0;
        println!("| {iters} | {sfi_total} | {ver_total} | {cert_total} | {winner} |");
    }

    println!("\nSteady-state run cost only (load amortised away), 100 iterations:\n");
    println!("| regime | VM steps | overhead vs native |");
    println!("|---|---|---|");
    let native = Interp::new(&workloads::checksum_loop(1024, 100))
        .run(u64::MAX)
        .unwrap()
        .steps;
    let (sb, _) = sandbox_rewrite(&workloads::checksum_loop(1024, 100));
    let sfi = Interp::new(&sb).run(u64::MAX).unwrap().steps;
    let ver = Interp::new(&workloads::checksum_loop_verified(1024, 100))
        .run(u64::MAX)
        .unwrap()
        .steps;
    println!("| Certified native | {native} | 1.00x |");
    println!(
        "| Verified (compiler guards) | {ver} | {:.2}x |",
        ver as f64 / native as f64
    );
    println!(
        "| SFI sandboxed | {sfi} | {:.2}x |",
        sfi as f64 / native as f64
    );

    // Certification cache ablation.
    println!("\nValidation-cache ablation (loading the same certified component 10×):\n");
    println!("| cache | signature checks | total load cycles |");
    println!("|---|---|---|");
    for cache in [true, false] {
        let world = World::boot();
        let image = world
            .nucleus
            .repository
            .add_bytecode("c", &workloads::checksum_loop_verified(1024, 1));
        let cert = world
            .root
            .certify(
                "c",
                &image,
                vec![Right::RunKernel],
                CertifyMethod::Administrator,
            )
            .unwrap();
        world.nucleus.certsvc.install(cert, vec![]);
        world.nucleus.certsvc.set_cache_enabled(cache);
        let t0 = world.nucleus.now();
        for i in 0..10 {
            world
                .nucleus
                .load("c", &LoadOptions::kernel(format!("/kernel/c{i}")).strict())
                .unwrap();
        }
        let cycles = world.nucleus.now() - t0;
        let checks = world.nucleus.certsvc.stats().signature_checks;
        println!(
            "| {} | {checks} | {cycles} |",
            if cache { "on" } else { "off" }
        );
    }
    println!();
}

// ---------------------------------------------------------------- E5 ---

fn e5_popup() {
    println!("## E5 — proto-thread fast path for interrupts (paper §3)\n");
    println!("1000 interrupts, handler does 50 cycles of work. Simulated cycles/interrupt.\n");
    println!("| strategy | cycles/interrupt | threads created |");
    println!("|---|---|---|");

    let run = |mode: Option<PopupMode>, block_every: u64| -> (u64, u64) {
        let machine = Arc::new(parking_lot::Mutex::new(Machine::new()));
        let events = Arc::new(paramecium::core::events::EventService::new());
        let scheduler = Scheduler::new(machine.clone());
        let trap = Trap::exception(TrapKind::Breakpoint);
        let n_irqs = 1000u64;

        match mode {
            None => {
                // Raw call-back: no thread semantics at all.
                events
                    .register(
                        trap.vector,
                        KERNEL_DOMAIN,
                        Arc::new({
                            let machine = machine.clone();
                            move |_| machine.lock().charge(50)
                        }),
                    )
                    .unwrap();
                let t0 = machine.lock().now();
                for _ in 0..n_irqs {
                    events.deliver(&machine, &trap);
                }
                ((machine.lock().now() - t0) / n_irqs, 0)
            }
            Some(m) => {
                let engine = PopupEngine::new(scheduler.clone(), m);
                let sem = Semaphore::new(scheduler.core().clone(), 0);
                let counter = Arc::new(std::sync::atomic::AtomicU64::new(0));
                let factory: PopupFactory = Arc::new({
                    let (sem, counter) = (sem.clone(), counter.clone());
                    move |_| {
                        let n = counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let sem = sem.clone();
                        let mut waited = false;
                        Box::new(move |ctx| {
                            ctx.work(50);
                            if block_every > 0 && n % block_every == 0 && !waited {
                                // Consume the permit (possibly after being
                                // woken) so later blockers really block.
                                if sem.try_acquire() {
                                    waited = true;
                                } else {
                                    return Step::Block(sem.waitable());
                                }
                            }
                            Step::Done
                        })
                    }
                });
                engine
                    .attach(&events, trap.vector, KERNEL_DOMAIN, factory)
                    .unwrap();
                let t0 = machine.lock().now();
                for i in 0..n_irqs {
                    events.deliver(&machine, &trap);
                    scheduler.run_until_idle(16);
                    // Signal only the interrupts that actually blocked, so
                    // permits do not accumulate and turn later blockers
                    // into fast-path completions.
                    if block_every > 0 && i % block_every == 0 {
                        sem.release();
                        scheduler.run_until_idle(16);
                    }
                }
                let stats = engine.stats();
                let created = stats.promotions + stats.eager_creations;
                ((machine.lock().now() - t0) / n_irqs, created)
            }
        }
    };

    let (c, t) = run(None, 0);
    println!("| raw call-back (no thread semantics) | {c} | {t} |");
    let (c, t) = run(Some(PopupMode::Proto), 0);
    println!("| proto-thread, never blocks | {c} | {t} |");
    let (c, t) = run(Some(PopupMode::Proto), 10);
    println!("| proto-thread, 10% block (promoted) | {c} | {t} |");
    let (c, t) = run(Some(PopupMode::Proto), 1);
    println!("| proto-thread, 100% block | {c} | {t} |");
    let (c, t) = run(Some(PopupMode::Eager), 0);
    println!("| eager pop-up thread (baseline) | {c} | {t} |");
    println!();
}

// ---------------------------------------------------------------- E6 ---

fn e6_interpose() {
    println!("## E6 — interposing monitor overhead (paper §2)\n");
    println!("Receive path through /shared/network with stacked monitors.");
    println!("1000 × 512-byte frames. Simulated cycles/frame (+ host ns/frame).\n");
    println!("| monitors | cycles/frame | ns/frame |");
    println!("|---|---|---|");

    for monitors in 0..=4usize {
        let world = World::boot();
        let n = &world.nucleus;
        install_driver(n, KERNEL_DOMAIN).unwrap();
        for _ in 0..monitors {
            let target = n.bind(KERNEL_DOMAIN, "/shared/network").unwrap();
            let (agent, _) = make_network_monitor(target);
            n.interpose(KERNEL_DOMAIN, "/shared/network", agent)
                .unwrap();
        }
        let dev = n.bind(KERNEL_DOMAIN, "/shared/network").unwrap();
        let frames = 1000u64;
        let machine = n.machine().clone();
        {
            let mut m = machine.lock();
            let nic = m.device_mut::<Nic>("nic").unwrap();
            // Keep the ring from overflowing by batching below.
            let _ = nic;
        }
        let t0 = n.now();
        let wall0 = Instant::now();
        let mut received = 0u64;
        while received < frames {
            {
                let mut m = machine.lock();
                let nic = m.device_mut::<Nic>("nic").unwrap();
                for _ in 0..32 {
                    nic.inject_rx(vec![0u8; 512]);
                }
            }
            for _ in 0..32 {
                let f = dev.invoke("netdev", "recv", &[]).unwrap();
                if !f.as_bytes().unwrap().is_empty() {
                    received += 1;
                }
            }
        }
        let cyc = (n.now() - t0) / frames;
        let ns = wall0.elapsed().as_nanos() as f64 / frames as f64;
        println!("| {monitors} | {cyc} | {ns:.0} |");
    }
    println!();
}

// ---------------------------------------------------------------- E7 ---

fn e7_placement() {
    println!("## E7 — filter placement: kernel vs user domain (paper §1)\n");
    println!("UDP pump with a port filter, 500 frames. Simulated cycles/frame.\n");
    println!("| filter placement / protection | 64 B frames | 1400 B frames |");
    println!("|---|---|---|");

    let run = |which: &str, payload: usize| -> u64 {
        let world = World::boot();
        let n = &world.nucleus;
        install_driver(n, KERNEL_DOMAIN).unwrap();
        let dev = n.bind(KERNEL_DOMAIN, "/shared/network").unwrap();
        let stack = make_udp_stack(dev, 0x0A00_0001, [2, 0, 0, 0, 0, 1]);
        n.register(KERNEL_DOMAIN, "/shared/udp", stack.clone())
            .unwrap();
        stack.invoke("udp", "bind", &[Value::Int(53)]).unwrap();

        let filter: ObjRef = match which {
            "native-kernel" => {
                let f = paramecium::netstack::make_native_port_filter(53);
                n.register(KERNEL_DOMAIN, "/kernel/filter", f).unwrap();
                n.bind(KERNEL_DOMAIN, "/kernel/filter").unwrap()
            }
            "native-user" => {
                let app = n.create_domain("app", KERNEL_DOMAIN, []).unwrap();
                let f = paramecium::netstack::make_native_port_filter(53);
                n.register_shared(app.id, "/app/filter", f).unwrap();
                // The *kernel-side* stack imports the user-domain filter:
                // one crossing per packet.
                n.bind(KERNEL_DOMAIN, "/app/filter").unwrap()
            }
            "bytecode-certified" | "bytecode-verified" | "bytecode-sandboxed" => {
                // The *same* filter program under three protection regimes.
                let prog = udp_port_filter_program(53);
                let image = n.repository.add_bytecode("f", &prog);
                let report = match which {
                    "bytecode-certified" => {
                        let cert = world
                            .root
                            .certify(
                                "f",
                                &image,
                                vec![Right::RunKernel],
                                CertifyMethod::Administrator,
                            )
                            .unwrap();
                        n.certsvc.install(cert, vec![]);
                        n.load("f", &LoadOptions::kernel("/kernel/f").strict())
                            .unwrap()
                    }
                    "bytecode-verified" => n.load("f", &LoadOptions::kernel("/kernel/f")).unwrap(),
                    _ => n
                        .load("f", &LoadOptions::kernel("/kernel/f").sandboxed())
                        .unwrap(),
                };
                let want = match which {
                    "bytecode-certified" => Protection::CertifiedNative,
                    "bytecode-verified" => Protection::Verified,
                    _ => Protection::Sandboxed,
                };
                assert_eq!(report.protection, want);
                let comp = n.bind(KERNEL_DOMAIN, "/kernel/f").unwrap();
                adapt_bytecode_filter(comp)
            }
            _ => unreachable!(),
        };
        stack
            .invoke("udp", "set_filter", &[Value::Handle(filter)])
            .unwrap();

        let frames = 500u64;
        let machine = n.machine().clone();
        let frame = wire::build_udp_frame(
            [9; 6],
            [2, 0, 0, 0, 0, 1],
            0x0A00_0002,
            0x0A00_0001,
            4444,
            53,
            &vec![0xABu8; payload],
        );
        let t0 = n.now();
        let mut done = 0u64;
        while done < frames {
            {
                let mut m = machine.lock();
                let nic = m.device_mut::<Nic>("nic").unwrap();
                for _ in 0..32 {
                    nic.inject_rx(frame.clone());
                }
            }
            let v = stack.invoke("udp", "pump", &[]).unwrap();
            done += v.as_int().unwrap() as u64;
        }
        (n.now() - t0) / done
    };

    for which in [
        "native-kernel",
        "native-user",
        "bytecode-certified",
        "bytecode-verified",
        "bytecode-sandboxed",
    ] {
        let small = run(which, 22);
        let large = run(which, 1350);
        let label = match which {
            "native-kernel" => "native filter, kernel domain (direct)",
            "native-user" => "native filter, user domain (proxy/packet)",
            "bytecode-certified" => "bytecode filter, certified native in kernel",
            "bytecode-verified" => "bytecode filter, load-time verified in kernel",
            "bytecode-sandboxed" => "bytecode filter, SFI-sandboxed in kernel",
            _ => unreachable!(),
        };
        println!("| {label} | {small} | {large} |");
    }
    println!();
}

// ---------------------------------------------------------------- E8 ---

fn e8_delegation() {
    println!("## E8 — delegation chains and the escape hatch (paper §4)\n");
    println!("Certificate validation cost vs chain depth (simulated cycles):\n");
    println!("| chain depth | signature checks | validation cycles |");
    println!("|---|---|---|");

    let mut rng = StdRng::seed_from_u64(7);
    for depth in [0usize, 1, 2, 4, 8] {
        let world = World::boot();
        let n = &world.nucleus;
        // Build a delegation chain of the requested depth.
        let mut chain = Vec::new();
        let mut prev = world.root.clone();
        for i in 0..depth {
            let next = Authority::new(format!("level{i}"), &mut rng, 512);
            chain.push(
                prev.delegate(format!("level{i}"), next.public(), vec![Right::RunKernel])
                    .unwrap(),
            );
            prev = next;
        }
        let image = n
            .repository
            .add_bytecode("c", &workloads::checksum_loop_verified(64, 1));
        let cert = prev
            .certify(
                "c",
                &image,
                vec![Right::RunKernel],
                CertifyMethod::Administrator,
            )
            .unwrap();
        n.certsvc.install(cert, chain);
        n.certsvc.set_cache_enabled(false);
        let t0 = n.now();
        n.load("c", &LoadOptions::kernel("/kernel/c").strict())
            .unwrap();
        let cycles = n.now() - t0;
        let checks = n.certsvc.stats().signature_checks;
        println!("| {depth} | {checks} | {cycles} |");
    }

    println!("\nEscape-hatch walk: which subordinate signs, and the off-line effort spent:\n");
    println!("| component | subordinates tried | signer | total certify effort |");
    println!("|---|---|---|---|");
    let mut rng = StdRng::seed_from_u64(9);
    let root = Authority::new("root", &mut rng, 512);
    let verifiable = workloads::checksum_loop_verified(64, 1).encode();
    let honest_raw = workloads::checksum_loop(64, 8).encode();
    let policy = CertificationPolicy::standard(
        &root,
        CompilerCertifier::new(Authority::new("compiler", &mut rng, 512)),
        ProverCertifier::new(Authority::new("prover", &mut rng, 512), 2_000),
        AdminCertifier::new(Authority::new("admin", &mut rng, 512), &[&honest_raw]),
        vec![Right::RunKernel, Right::RunUser],
    )
    .unwrap();
    for (name, image) in [("verifiable", &verifiable), ("honest-raw", &honest_raw)] {
        let out = policy.certify(name, image, &[Right::RunKernel]).unwrap();
        println!(
            "| {name} | {} | #{} | {} |",
            out.attempts.len(),
            out.signer_index,
            out.total_effort
        );
    }
    match policy.certify(
        "malicious",
        &workloads::wild_writer().encode(),
        &[Right::RunKernel],
    ) {
        Err(e) => println!("| malicious | 3 | refused | — ({e}) |"),
        Ok(_) => unreachable!(),
    }
    println!();
}

// ---------------------------------------------------------------- E9 ---

fn e9_crypto() {
    println!("## E9 — crypto substrate (supports E4/E8 absolute costs)\n");
    println!("| primitive | host performance |");
    println!("|---|---|");

    let data = vec![0xA5u8; 1 << 20];
    let t0 = Instant::now();
    let reps = if cfg!(debug_assertions) { 4 } else { 64 };
    for _ in 0..reps {
        std::hint::black_box(paramecium::crypto::sha256(&data));
    }
    let mbps = (reps as f64) / t0.elapsed().as_secs_f64();
    println!("| SHA-256 | {mbps:.0} MiB/s |");

    for bits in [512u32, 1024] {
        let kp = paramecium::crypto::rsa::generate(&mut StdRng::seed_from_u64(3), bits);
        let digest = paramecium::crypto::sha256(b"component");
        let reps = if cfg!(debug_assertions) { 5 } else { 50 };
        let t0 = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(paramecium::crypto::rsa::sign(&kp.private, &digest).unwrap());
        }
        let sign_ms = t0.elapsed().as_secs_f64() * 1000.0 / reps as f64;
        let sig = paramecium::crypto::rsa::sign(&kp.private, &digest).unwrap();
        let reps_v = reps * 20;
        let t0 = Instant::now();
        for _ in 0..reps_v {
            paramecium::crypto::rsa::verify(&kp.public, &digest, &sig).unwrap();
            std::hint::black_box(());
        }
        let verify_us = t0.elapsed().as_secs_f64() * 1e6 / reps_v as f64;
        println!("| RSA-{bits} sign | {sign_ms:.2} ms/op |");
        println!("| RSA-{bits} verify (e=65537) | {verify_us:.0} µs/op |");
    }
    println!();
}
